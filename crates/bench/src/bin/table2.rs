//! **Table II**: the design space of RABBIT modifications — SpMV run time
//! (normalized to ideal) for {RABBIT, RABBIT+HUBSORT, RABBIT+HUBGROUP} ×
//! {without, with} insular-node grouping, split by insularity.

use commorder::prelude::*;
use commorder::reorder::quality;
use commorder_bench::Harness;

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let cases = harness.load();
    let pipeline = Pipeline::new(harness.gpu);

    // Per-matrix insularity (bucket key), computed once.
    let mut insularities = Vec::with_capacity(cases.len());
    for case in &cases {
        eprintln!("[table2] insularity {}", case.entry.name);
        let r = Rabbit::new()
            .run(&case.matrix)
            .expect("square corpus matrix");
        insularities.push(quality::insularity(&case.matrix, &r.assignment).expect("validated"));
    }

    let mut table = Table::new(
        "Table II: SpMV run time normalized to ideal, RABBIT modification design space",
        vec![
            "configuration".into(),
            "ALL-MATS".into(),
            "INS < 0.95".into(),
            "INS >= 0.95".into(),
        ],
    );
    for config in RabbitPlusPlusConfig::design_space() {
        let technique = RabbitPlusPlus::with_config(config);
        eprintln!("[table2] {}", config.label());
        let mut pairs = Vec::with_capacity(cases.len());
        for (case, &ins) in cases.iter().zip(&insularities) {
            let eval = pipeline
                .evaluate(&case.matrix, &technique)
                .expect("square corpus matrix");
            pairs.push((ins, eval.run.time_ratio));
        }
        let split = InsularitySplit::from_pairs(&pairs);
        table.add_row(vec![
            config.label(),
            Table::ratio(split.all),
            Table::ratio(split.low),
            Table::ratio(split.high),
        ]);
    }
    println!("{table}");
    println!(
        "Paper reference (ALL / <0.95 / >=0.95):\n\
         RABBIT 1.54/1.81/1.25, +HUBSORT 1.63/1.89/1.35, +HUBGROUP 1.48/1.65/1.29 (no insular grouping)\n\
         RABBIT 1.49/1.70/1.25, +HUBSORT 1.57/1.86/1.26, +HUBGROUP 1.46/1.65/1.25 (insular grouped)\n\
         Shape to reproduce: insular grouping helps; HUBGROUP > plain RABBIT > HUBSORT; \
         RABBIT++ = insular grouped + HUBGROUP is best overall"
    );
}
