//! Counter export: publishes [`CacheStats`] and
//! [`classify::MissClasses`](crate::classify::MissClasses) totals to the
//! `commorder-obs` dispatcher under the declared `cachesim.*` metric
//! names.
//!
//! Simulation code stays telemetry-free; callers that own a finished
//! stats struct (the pipeline, analysis binaries) call these exporters
//! once per simulation. Both are no-ops while telemetry is disabled.

use commorder_obs as obs;

use crate::classify::MissClasses;
use crate::CacheStats;

/// Publishes one finished simulation's [`CacheStats`] as `cachesim.*`
/// counters (accesses, hits, fill/write-alloc/compulsory misses,
/// evictions, dead lines, write-backs, fills, and DRAM bytes).
pub fn record_cache_stats(stats: &CacheStats) {
    if !obs::enabled() {
        return;
    }
    obs::counter!("cachesim.accesses", stats.accesses);
    obs::counter!("cachesim.hits", stats.hits);
    obs::counter!("cachesim.fill_misses", stats.fill_misses);
    obs::counter!("cachesim.write_alloc_misses", stats.write_alloc_misses);
    obs::counter!("cachesim.compulsory_misses", stats.compulsory_misses);
    obs::counter!("cachesim.evictions", stats.evictions);
    obs::counter!("cachesim.dead_lines", stats.dead_lines);
    obs::counter!("cachesim.writebacks", stats.writebacks);
    obs::counter!("cachesim.fills", stats.fills);
    obs::counter!("cachesim.dram_bytes", stats.dram_traffic_bytes());
}

/// Publishes a Three-C classification as `cachesim.miss.*` counters.
pub fn record_miss_classes(classes: &MissClasses) {
    if !obs::enabled() {
        return;
    }
    obs::counter!("cachesim.miss.compulsory", classes.compulsory);
    obs::counter!("cachesim.miss.capacity", classes.capacity);
    obs::counter!("cachesim.miss.conflict", classes.conflict);
}

/// Publishes the peak per-trace buffer footprint of one simulation as
/// the `cachesim.trace.peak_bytes` gauge.
///
/// Streaming LRU/PLRU consumers hold no per-access state (0 bytes); the
/// two-pass Belady oracle reports its compact next-use array (≤ 8 bytes
/// per access). The `trace_stream` microbench exports this through a
/// registry sink to pin the bound.
pub fn record_trace_peak_bytes(bytes: u64) {
    if !obs::enabled() {
        return;
    }
    #[allow(clippy::cast_precision_loss)]
    {
        obs::gauge!("cachesim.trace.peak_bytes", bytes as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    // The only telemetry-installing test in this binary (the obs
    // dispatcher is process-global).
    #[test]
    fn exporters_publish_declared_counters() {
        let _serial = obs::tests_serial();
        let registry = Arc::new(obs::Registry::new());

        // Disabled: exporting must be a silent no-op.
        record_cache_stats(&CacheStats::default());

        let _guard = obs::install(registry.clone());
        let stats = CacheStats {
            accesses: 10,
            hits: 6,
            fill_misses: 3,
            write_alloc_misses: 1,
            compulsory_misses: 4,
            evictions: 2,
            dead_lines: 1,
            writebacks: 2,
            fills: 4,
            line_bytes: 32,
        };
        record_cache_stats(&stats);
        record_miss_classes(&MissClasses {
            accesses: 10,
            hits: 6,
            compulsory: 4,
            capacity: 0,
            conflict: 0,
        });
        assert_eq!(registry.counter("cachesim.accesses"), 10);
        assert_eq!(registry.counter("cachesim.hits"), 6);
        assert_eq!(registry.counter("cachesim.dram_bytes"), (3 + 2) * 32);
        assert_eq!(registry.counter("cachesim.miss.compulsory"), 4);
        assert_eq!(registry.counter("cachesim.miss.conflict"), 0);
        // Every exported name is declared in the obs metric registry.
        for (name, _) in [
            ("cachesim.accesses", 0u64),
            ("cachesim.dram_bytes", 0),
            ("cachesim.miss.capacity", 0),
        ] {
            assert!(obs::names::lookup(name).is_some(), "{name} undeclared");
        }
    }
}
