//! Sparse-matrix substrate for the `commorder` workspace.
//!
//! This crate provides the data-structure and kernel layer that the ISPASS'23
//! paper *"Community-based Matrix Reordering for Sparse Linear Algebra
//! Optimization"* builds on:
//!
//! * compressed sparse formats — [`CsrMatrix`], [`CooMatrix`],
//!   [`CscMatrix`], [`EllMatrix`], [`SellMatrix`] (SELL-C-σ) — with
//!   validated construction and conversions,
//! * a validated [`Permutation`] newtype and symmetric/asymmetric matrix
//!   permutation (the output of every reordering technique),
//! * reference implementations of the kernels the paper evaluates
//!   ([`kernels::spmv_csr`], [`kernels::spmv_coo`], [`kernels::spmm_csr`]),
//! * structural statistics used throughout the paper's analysis
//!   ([`stats::DegreeStats`], [`stats::skew_top10`], bandwidth/profile),
//! * the *compulsory DRAM traffic* formulas of §IV-B ([`traffic`]),
//! * Matrix Market I/O ([`io`]) so external matrices can be dropped in.
//!
//! Index type is `u32` and value type is `f32` (4-byte elements), matching the
//! paper's traffic accounting ("assuming 4 bytes for matrix values and the CSR
//! coordinates").
//!
//! # Example
//!
//! ```
//! use commorder_sparse::{CooMatrix, CsrMatrix, kernels};
//!
//! # fn main() -> Result<(), commorder_sparse::SparseError> {
//! // 3-node path graph: 0-1, 1-2 (symmetric).
//! let coo = CooMatrix::from_entries(
//!     3,
//!     3,
//!     vec![(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)],
//! )?;
//! let csr = CsrMatrix::try_from(coo)?;
//! let x = vec![1.0f32, 2.0, 3.0];
//! let y = kernels::spmv_csr(&csr, &x)?;
//! assert_eq!(y, vec![2.0, 4.0, 2.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coo;
mod csc;
mod csr;
mod ell;
mod error;
mod perm;
mod sell;

pub mod graph;
pub mod io;
pub mod kernels;
pub mod ops;
pub mod stats;
pub mod traffic;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use ell::{EllMatrix, ELL_PAD};
pub use error::SparseError;
pub use perm::Permutation;
pub use sell::SellMatrix;

/// Bytes per stored element (matrix value, index, or vector element).
///
/// The paper's traffic model (§IV-B) assumes 4-byte values and coordinates;
/// every byte-accounting helper in this workspace uses this constant.
pub const ELEM_BYTES: u64 = 4;

/// Strict-mode invariant assertion, compiled out unless the *calling*
/// crate enables its `strict-checks` feature.
///
/// Hot paths (kernels, trace generators, the pipeline) thread their
/// structural invariants through this macro so that
/// `cargo test --features strict-checks` audits every stage while release
/// builds pay nothing: `cfg!(feature = "strict-checks")` is a compile-time
/// constant, so the whole check folds away when the feature is off.
///
/// Each crate that uses the macro must declare its own `strict-checks`
/// feature (macro expansion evaluates `cfg!` against the caller), and
/// downstream crates forward it (`commorder-cachesim/strict-checks`
/// enables `commorder-sparse/strict-checks`, and so on up to
/// `commorder/strict-checks`).
///
/// # Example
///
/// ```
/// use commorder_sparse::debug_validate;
///
/// let offsets = [0u32, 2, 5];
/// debug_validate!(
///     offsets.windows(2).all(|w| w[0] <= w[1]),
///     "offsets must be monotone: {offsets:?}"
/// );
/// ```
#[macro_export]
macro_rules! debug_validate {
    ($cond:expr, $($arg:tt)+) => {
        if cfg!(feature = "strict-checks") {
            assert!($cond, $($arg)+);
        }
    };
    ($cond:expr) => {
        if cfg!(feature = "strict-checks") {
            assert!($cond);
        }
    };
}
