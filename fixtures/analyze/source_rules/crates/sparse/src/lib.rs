//! Fixture: seeded source-rule violations live in [`bad`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowed;
pub mod bad;
