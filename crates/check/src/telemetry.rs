//! Validators for `commorder-obs` telemetry JSONL streams (`CHK09xx`).
//!
//! The stream format is defined by `commorder_obs::Event::to_jsonl`: one
//! flat JSON object per line carrying a `"type"` discriminator (`meta`,
//! `span`, `counter`, `gauge`, `observe`, `alloc`). Like the other ingest paths,
//! the parser here is deliberately lenient — a corrupted line becomes a
//! diagnostic and validation continues — so a truncated or hand-edited
//! stream yields the full finding list.
//!
//! Span events are emitted when a span **ends**, so within one thread
//! children always precede their parents and end timestamps never
//! regress. Nesting is therefore validated with a pending-interval pass
//! per thread: a span at depth `d` adopts every pending span at depth
//! `d + 1`, which must lie inside it (exact integer-nanosecond
//! containment — child and parent timestamps derive from the same clock
//! read) and extend its `/`-joined path by exactly one segment. A
//! pending span at depth `d + 2` or deeper at that point has no
//! enclosing parent and is a structural violation; spans still pending
//! at end of stream are reported as truncation warnings.

use std::collections::BTreeMap;
use std::ops::Bound;

use commorder_obs::{names, MetricKind};

use crate::codes;
use crate::diag::{Diagnostic, Location};

/// A value in a flat (non-nested) telemetry JSON object.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// A JSON string.
    Str(String),
    /// A JSON number.
    Num(f64),
    /// A JSON boolean.
    Bool(bool),
    /// JSON `null`.
    Null,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Cursor {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.bump() {
            Some(b) if b == want => Ok(()),
            Some(b) => Err(format!(
                "expected {:?} at byte {}, found {:?}",
                want as char,
                self.pos - 1,
                b as char
            )),
            None => Err(format!("expected {:?}, found end of line", want as char)),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut buf = Vec::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'"') => buf.push(b'"'),
                    Some(b'\\') => buf.push(b'\\'),
                    Some(b'/') => buf.push(b'/'),
                    Some(b'n') => buf.push(b'\n'),
                    Some(b'r') => buf.push(b'\r'),
                    Some(b't') => buf.push(b'\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            code = code * 16 + d;
                        }
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("\\u{code:04x} is not a scalar value"))?;
                        let mut utf8 = [0u8; 4];
                        buf.extend_from_slice(c.encode_utf8(&mut utf8).as_bytes());
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) => buf.push(b),
            }
        }
        String::from_utf8(buf).map_err(|_| "string is not valid UTF-8".to_string())
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-ASCII number".to_string())?;
        text.parse::<f64>()
            .map_err(|_| format!("bad number {text:?}"))
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'n') => {
                for want in b"null" {
                    self.expect(*want)?;
                }
                Ok(Json::Null)
            }
            Some(b't') => {
                for want in b"true" {
                    self.expect(*want)?;
                }
                Ok(Json::Bool(true))
            }
            Some(b'f') => {
                for want in b"false" {
                    self.expect(*want)?;
                }
                Ok(Json::Bool(false))
            }
            Some(b'-' | b'0'..=b'9') => Ok(Json::Num(self.parse_number()?)),
            Some(b'{' | b'[') => Err("nested values are not part of the event format".to_string()),
            other => Err(format!("expected a value, found {other:?}")),
        }
    }
}

/// Parses one line as a flat JSON object (string keys; string, number,
/// boolean, or `null` values — the full value set `Event::to_jsonl` and
/// the bench artifacts emit).
pub(crate) fn parse_flat_object(line: &str) -> Result<Vec<(String, Json)>, String> {
    let mut cur = Cursor::new(line);
    cur.skip_ws();
    cur.expect(b'{')?;
    let mut fields = Vec::new();
    cur.skip_ws();
    if cur.peek() == Some(b'}') {
        cur.bump();
    } else {
        loop {
            cur.skip_ws();
            let key = cur.parse_string()?;
            cur.skip_ws();
            cur.expect(b':')?;
            let value = cur.parse_value()?;
            fields.push((key, value));
            cur.skip_ws();
            match cur.bump() {
                Some(b',') => {}
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
    cur.skip_ws();
    if cur.peek().is_some() {
        return Err("trailing bytes after the closing brace".to_string());
    }
    Ok(fields)
}

/// One parsed span event, reduced to what the nesting pass needs.
struct SpanRec {
    line: u64,
    depth: u64,
    path: String,
    start_ns: u64,
    end_ns: u64,
}

#[derive(Default)]
struct ThreadState {
    /// Ended spans at depth ≥ 1 still waiting for their parent to end.
    pending: Vec<SpanRec>,
    last_end: u64,
}

/// Fields of one event with diagnostics-producing typed accessors.
struct EventFields<'a> {
    fields: Vec<(String, Json)>,
    line: u64,
    out: &'a mut Vec<Diagnostic>,
}

impl EventFields<'_> {
    fn get(&self, key: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn field_error(&mut self, code: &'static str, message: String) {
        self.out.push(Diagnostic::error(
            code,
            Location::at("telemetry", self.line),
            message,
        ));
    }

    fn req_str(&mut self, key: &str) -> Option<String> {
        match self.get(key) {
            Some(Json::Str(s)) => Some(s.clone()),
            Some(other) => {
                self.field_error(
                    codes::TELEM_FIELD,
                    format!("field {key:?} must be a string, got {other:?}"),
                );
                None
            }
            None => {
                self.field_error(codes::TELEM_FIELD, format!("missing field {key:?}"));
                None
            }
        }
    }

    fn req_u64(&mut self, key: &str) -> Option<u64> {
        match self.get(key) {
            Some(Json::Num(v)) => {
                let v = *v;
                if v < 0.0 {
                    self.field_error(
                        codes::TELEM_VALUE,
                        format!("field {key:?} must be non-negative, got {v}"),
                    );
                    None
                } else if !v.is_finite() || v.fract() != 0.0 {
                    self.field_error(
                        codes::TELEM_FIELD,
                        format!("field {key:?} must be an unsigned integer, got {v}"),
                    );
                    None
                } else {
                    // Representable exactly for every duration the sinks
                    // emit (f64 is exact through 2^53 ns ≈ 104 days).
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    Some(v as u64)
                }
            }
            Some(other) => {
                self.field_error(
                    codes::TELEM_FIELD,
                    format!("field {key:?} must be a number, got {other:?}"),
                );
                None
            }
            None => {
                self.field_error(codes::TELEM_FIELD, format!("missing field {key:?}"));
                None
            }
        }
    }

    /// Number field where `null` encodes a non-finite value (the
    /// `Event::to_jsonl` convention); returns `NaN` for `null`.
    fn req_num(&mut self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Json::Num(v)) => Some(*v),
            Some(Json::Null) => Some(f64::NAN),
            Some(other) => {
                self.field_error(
                    codes::TELEM_FIELD,
                    format!("field {key:?} must be a number, got {other:?}"),
                );
                None
            }
            None => {
                self.field_error(codes::TELEM_FIELD, format!("missing field {key:?}"));
                None
            }
        }
    }
}

/// Looks up `name` in the metric registry and checks the declared kind.
fn check_metric(name: &str, expected: MetricKind, line: u64, out: &mut Vec<Diagnostic>) {
    match names::lookup(name) {
        None => out.push(Diagnostic::error(
            codes::TELEM_METRIC,
            Location::at("telemetry", line),
            format!("metric {name:?} is not declared in the commorder-obs registry"),
        )),
        Some(info) if info.kind != expected => out.push(Diagnostic::error(
            codes::TELEM_METRIC,
            Location::at("telemetry", line),
            format!(
                "metric {name:?} is declared as a {}, but this event is a {}",
                info.kind.label(),
                expected.label()
            ),
        )),
        Some(_) => {}
    }
}

/// Feeds one ended span into the per-thread nesting pass.
fn nest_span(rec: SpanRec, thread: u64, st: &mut ThreadState, out: &mut Vec<Diagnostic>) {
    if rec.end_ns < st.last_end {
        out.push(Diagnostic::error(
            codes::TELEM_NESTING,
            Location::at("telemetry", rec.line),
            format!(
                "thread {thread}: span {:?} ends at {} ns, before the previously \
                 reported end {} ns (spans are emitted in end order)",
                rec.path, rec.end_ns, st.last_end
            ),
        ));
    }
    st.last_end = st.last_end.max(rec.end_ns);
    let pending = std::mem::take(&mut st.pending);
    for p in pending {
        if p.depth == rec.depth + 1 {
            // `rec` is the parent that encloses `p`.
            if p.start_ns < rec.start_ns || p.end_ns > rec.end_ns {
                out.push(Diagnostic::error(
                    codes::TELEM_NESTING,
                    Location::at("telemetry", p.line),
                    format!(
                        "thread {thread}: child span {:?} [{}, {}] ns escapes its \
                         parent {:?} [{}, {}] ns",
                        p.path, p.start_ns, p.end_ns, rec.path, rec.start_ns, rec.end_ns
                    ),
                ));
            }
            if !p
                .path
                .strip_prefix(rec.path.as_str())
                .is_some_and(|rest| rest.starts_with('/'))
            {
                out.push(Diagnostic::error(
                    codes::TELEM_NESTING,
                    Location::at("telemetry", p.line),
                    format!(
                        "thread {thread}: child span path {:?} does not extend its \
                         parent path {:?}",
                        p.path, rec.path
                    ),
                ));
            }
        } else if p.depth > rec.depth {
            // Depth ≥ rec.depth + 2: its parent should have ended (and
            // been reported) before this shallower span did.
            out.push(Diagnostic::error(
                codes::TELEM_NESTING,
                Location::at("telemetry", p.line),
                format!(
                    "thread {thread}: span {:?} at depth {} has no enclosing parent \
                     at depth {}",
                    p.path,
                    p.depth,
                    p.depth - 1
                ),
            ));
        } else {
            // Shallower or same depth: still waiting for its own parent.
            st.pending.push(p);
        }
    }
    if rec.depth > 0 {
        st.pending.push(rec);
    }
}

/// Audits a telemetry JSONL stream; every finding carries a `CHK09xx`
/// code and points at the offending 1-based line.
#[must_use]
pub fn check_telemetry(contents: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut threads: BTreeMap<u64, ThreadState> = BTreeMap::new();
    let mut saw_meta = false;
    // Per-path inclusive-duration aggregates feeding the CHK1203
    // self-time invariant at end of stream.
    let mut path_totals: BTreeMap<String, u64> = BTreeMap::new();
    for (i, raw) in contents.lines().enumerate() {
        let line_no = (i + 1) as u64;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let fields = match parse_flat_object(line) {
            Ok(f) => f,
            Err(e) => {
                out.push(Diagnostic::error(
                    codes::TELEM_PARSE,
                    Location::at("telemetry", line_no),
                    e,
                ));
                continue;
            }
        };
        let mut ev = EventFields {
            fields,
            line: line_no,
            out: &mut out,
        };
        let Some(kind) = ev.req_str("type") else {
            continue;
        };
        match kind.as_str() {
            "meta" => {
                if ev.req_u64("version").is_some() {
                    saw_meta = true;
                }
            }
            "span" => {
                let thread = ev.req_u64("thread");
                let depth = ev.req_u64("depth");
                let path = ev.req_str("path");
                let name = ev.req_str("name");
                let start_ns = ev.req_u64("start_ns");
                let dur_ns = ev.req_u64("dur_ns");
                if let Some(Json::Num(_) | Json::Null) = ev.get("detail") {
                    ev.field_error(
                        codes::TELEM_FIELD,
                        "field \"detail\" must be a string when present".to_string(),
                    );
                }
                let (Some(thread), Some(depth), Some(path), Some(name), Some(start), Some(dur)) =
                    (thread, depth, path, name, start_ns, dur_ns)
                else {
                    continue;
                };
                let mut consistent = true;
                let separators = path.matches('/').count() as u64;
                if separators != depth {
                    consistent = false;
                    out.push(Diagnostic::error(
                        codes::TELEM_PATH,
                        Location::at("telemetry", line_no),
                        format!(
                            "span path {path:?} has {separators} separator(s) but \
                             declares depth {depth}"
                        ),
                    ));
                }
                if path.rsplit('/').next() != Some(name.as_str()) {
                    consistent = false;
                    out.push(Diagnostic::error(
                        codes::TELEM_PATH,
                        Location::at("telemetry", line_no),
                        format!("span name {name:?} is not the last segment of path {path:?}"),
                    ));
                }
                // An inconsistent span cannot be positioned in the tree;
                // keep it out of the nesting pass so one bad line does
                // not cascade into spurious CHK0905 findings.
                if !consistent {
                    continue;
                }
                let total = path_totals.entry(path.clone()).or_insert(0);
                *total = total.saturating_add(dur);
                let rec = SpanRec {
                    line: line_no,
                    depth,
                    path,
                    start_ns: start,
                    end_ns: start.saturating_add(dur),
                };
                nest_span(rec, thread, threads.entry(thread).or_default(), &mut out);
            }
            "counter" => {
                let name = ev.req_str("name");
                let _delta = ev.req_u64("delta");
                if let Some(name) = name {
                    check_metric(&name, MetricKind::Counter, line_no, &mut out);
                }
            }
            "gauge" | "observe" => {
                let name = ev.req_str("name");
                let value = ev.req_num("value");
                let observe = kind == "observe";
                if let Some(v) = value {
                    if !v.is_finite() || (observe && v < 0.0) {
                        out.push(Diagnostic::error(
                            codes::TELEM_VALUE,
                            Location::at("telemetry", line_no),
                            format!(
                                "{kind} value must be finite{}, got {v}",
                                if observe { " and non-negative" } else { "" }
                            ),
                        ));
                    }
                }
                if let Some(name) = name {
                    let expected = if observe {
                        MetricKind::Histogram
                    } else {
                        MetricKind::Gauge
                    };
                    check_metric(&name, expected, line_no, &mut out);
                }
            }
            "alloc" => {
                let _path = ev.req_str("path");
                let _count = ev.req_u64("count");
                let _bytes = ev.req_u64("bytes");
            }
            other => out.push(Diagnostic::error(
                codes::TELEM_TYPE,
                Location::at("telemetry", line_no),
                format!(
                    "unknown event type {other:?} (expected meta, span, counter, \
                     gauge, observe, or alloc)"
                ),
            )),
        }
    }
    for (thread, st) in &threads {
        for rec in &st.pending {
            out.push(Diagnostic::warning(
                codes::TELEM_NESTING,
                Location::at("telemetry", rec.line),
                format!(
                    "thread {thread}: span {:?} at depth {} never enclosed by a \
                     parent before end of stream (truncated capture?)",
                    rec.path, rec.depth
                ),
            ));
        }
    }
    if !saw_meta {
        out.push(Diagnostic::info(
            codes::TELEM_FIELD,
            Location::whole("telemetry"),
            "stream carries no meta event (was the sink installed via obs::install?)".to_string(),
        ));
    }
    // With all spans aggregated per path, the exclusive-self-time
    // invariant must hold: a path's direct children cannot account for
    // more inclusive time than the path itself.
    let aggregates: Vec<(String, u64)> = path_totals.into_iter().collect();
    out.extend(check_self_time("telemetry", &aggregates));
    out
}

/// Audits the exclusive-self-time invariant over per-path inclusive
/// span aggregates `(path, total_ns)` (`CHK1203`).
///
/// For every path present as a parent, the summed inclusive time of
/// its *direct* children (one `/`-segment deeper) must not exceed the
/// parent's own inclusive time: child intervals nest inside parent
/// instances on the same thread, and sibling intervals are disjoint.
/// Paths whose parent is absent from the aggregate (e.g. a truncated
/// capture) are skipped rather than guessed at. Duplicate paths in the
/// input are summed.
#[must_use]
pub fn check_self_time(object: &str, spans: &[(String, u64)]) -> Vec<Diagnostic> {
    let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
    for (path, ns) in spans {
        let t = totals.entry(path.as_str()).or_insert(0);
        *t = t.saturating_add(*ns);
    }
    let mut out = Vec::new();
    for (&parent, &parent_ns) in &totals {
        let prefix = format!("{parent}/");
        // Descendant paths are contiguous from the prefix onward in a
        // lexicographic map; direct children add exactly one segment.
        let children_ns = totals
            .range::<str, _>((Bound::Included(prefix.as_str()), Bound::Unbounded))
            .take_while(|(p, _)| p.starts_with(prefix.as_str()))
            .filter(|(p, _)| !p[prefix.len()..].contains('/'))
            .fold(0u64, |acc, (_, ns)| acc.saturating_add(*ns));
        if children_ns > parent_ns {
            out.push(Diagnostic::error(
                codes::SELF_TIME,
                Location::whole(object),
                format!(
                    "span path {parent:?}: direct children account for {children_ns} ns, \
                     more than the parent's inclusive {parent_ns} ns"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use commorder_obs as obs;

    use super::*;
    use crate::diag::{CheckReport, Severity};

    fn report(contents: &str) -> CheckReport {
        let mut r = CheckReport::new();
        r.extend(check_telemetry(contents));
        r
    }

    /// A capture from the real sinks validates clean — spans nested two
    /// deep, every declared metric kind exercised.
    #[test]
    fn real_capture_is_clean() {
        let _serial = obs::tests_serial();
        let sink = Arc::new(obs::MemorySink::new());
        let guard = obs::install(sink.clone());
        {
            let _root = obs::span!("suite");
            {
                let _mid = obs::span!("suite.generate", "m{}", 0);
                let _leaf = obs::span!("pipeline.model");
            }
            obs::counter!("exec.jobs", 3);
            obs::gauge!("exec.utilization", 0.75);
            obs::observe!("exec.queue_wait_seconds", 0.002);
        }
        drop(guard);
        let r = report(&sink.to_jsonl());
        assert!(r.diagnostics.is_empty(), "{}", r.render_text());
    }

    #[test]
    fn junk_line_is_parse_error() {
        let r = report("{\"type\":\"meta\",\"version\":1}\nnot json\n{\"type\":[1]}\n");
        assert_eq!(r.codes(), vec![codes::TELEM_PARSE]);
        assert_eq!(r.error_count(), 2);
    }

    #[test]
    fn missing_and_mistyped_fields_are_chk0902() {
        let r = report(
            "{\"type\":\"counter\",\"delta\":1}\n\
             {\"type\":\"span\",\"thread\":\"zero\"}\n",
        );
        assert!(
            r.codes().contains(&codes::TELEM_FIELD),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn unknown_event_type_is_chk0903() {
        let r = report("{\"type\":\"metric\",\"name\":\"exec.jobs\"}\n");
        assert!(
            r.codes().contains(&codes::TELEM_TYPE),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn negative_and_nonfinite_values_are_chk0904() {
        let r = report(
            "{\"type\":\"meta\",\"version\":1}\n\
             {\"type\":\"span\",\"thread\":0,\"depth\":0,\"path\":\"a\",\"name\":\"a\",\
             \"start_ns\":0,\"dur_ns\":-5}\n\
             {\"type\":\"observe\",\"name\":\"exec.queue_wait_seconds\",\"value\":-0.5}\n\
             {\"type\":\"gauge\",\"name\":\"exec.utilization\",\"value\":null}\n",
        );
        assert_eq!(r.codes(), vec![codes::TELEM_VALUE]);
        assert_eq!(r.error_count(), 3);
    }

    #[test]
    fn child_escaping_parent_is_chk0905() {
        // Child [5, 250] ends inside the stream before its parent
        // [0, 100] but extends past the parent's end.
        let r = report(
            "{\"type\":\"span\",\"thread\":0,\"depth\":1,\"path\":\"a/b\",\"name\":\"b\",\
             \"start_ns\":5,\"dur_ns\":245}\n\
             {\"type\":\"span\",\"thread\":0,\"depth\":0,\"path\":\"a\",\"name\":\"a\",\
             \"start_ns\":0,\"dur_ns\":100}\n",
        );
        assert!(
            r.codes().contains(&codes::TELEM_NESTING),
            "{}",
            r.render_text()
        );
        assert!(!r.is_clean());
    }

    #[test]
    fn regressing_end_times_are_chk0905() {
        let r = report(
            "{\"type\":\"meta\",\"version\":1}\n\
             {\"type\":\"span\",\"thread\":0,\"depth\":0,\"path\":\"a\",\"name\":\"a\",\
             \"start_ns\":100,\"dur_ns\":100}\n\
             {\"type\":\"span\",\"thread\":0,\"depth\":0,\"path\":\"b\",\"name\":\"b\",\
             \"start_ns\":0,\"dur_ns\":50}\n",
        );
        assert_eq!(r.codes(), vec![codes::TELEM_NESTING]);
    }

    #[test]
    fn orphan_depths_error_and_truncation_warns() {
        // Depth-2 span adopted by nobody when the depth-0 root arrives:
        // error. Depth-1 span with no root by end of stream: warning.
        let r = report(
            "{\"type\":\"meta\",\"version\":1}\n\
             {\"type\":\"span\",\"thread\":0,\"depth\":2,\"path\":\"a/b/c\",\"name\":\"c\",\
             \"start_ns\":0,\"dur_ns\":10}\n\
             {\"type\":\"span\",\"thread\":0,\"depth\":0,\"path\":\"a\",\"name\":\"a\",\
             \"start_ns\":0,\"dur_ns\":100}\n\
             {\"type\":\"span\",\"thread\":1,\"depth\":1,\"path\":\"x/y\",\"name\":\"y\",\
             \"start_ns\":0,\"dur_ns\":10}\n",
        );
        assert_eq!(r.codes(), vec![codes::TELEM_NESTING]);
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
    }

    #[test]
    fn sibling_threads_nest_independently() {
        // Identical paths on different threads never adopt each other.
        let r = report(
            "{\"type\":\"meta\",\"version\":1}\n\
             {\"type\":\"span\",\"thread\":0,\"depth\":1,\"path\":\"a/b\",\"name\":\"b\",\
             \"start_ns\":0,\"dur_ns\":10}\n\
             {\"type\":\"span\",\"thread\":1,\"depth\":1,\"path\":\"a/b\",\"name\":\"b\",\
             \"start_ns\":500,\"dur_ns\":10}\n\
             {\"type\":\"span\",\"thread\":0,\"depth\":0,\"path\":\"a\",\"name\":\"a\",\
             \"start_ns\":0,\"dur_ns\":20}\n\
             {\"type\":\"span\",\"thread\":1,\"depth\":0,\"path\":\"a\",\"name\":\"a\",\
             \"start_ns\":490,\"dur_ns\":30}\n",
        );
        assert!(r.diagnostics.is_empty(), "{}", r.render_text());
    }

    #[test]
    fn unregistered_metric_and_kind_mismatch_are_chk0906() {
        let r = report(
            "{\"type\":\"meta\",\"version\":1}\n\
             {\"type\":\"counter\",\"name\":\"exec.jbos\",\"delta\":1}\n\
             {\"type\":\"gauge\",\"name\":\"exec.jobs\",\"value\":1.0}\n\
             {\"type\":\"observe\",\"name\":\"exec.utilization\",\"value\":0.5}\n",
        );
        assert_eq!(r.codes(), vec![codes::TELEM_METRIC]);
        assert_eq!(r.error_count(), 3);
    }

    #[test]
    fn path_depth_name_mismatches_are_chk0907() {
        let r = report(
            "{\"type\":\"meta\",\"version\":1}\n\
             {\"type\":\"span\",\"thread\":0,\"depth\":2,\"path\":\"a/b\",\"name\":\"b\",\
             \"start_ns\":0,\"dur_ns\":10}\n\
             {\"type\":\"span\",\"thread\":1,\"depth\":1,\"path\":\"a/b\",\"name\":\"c\",\
             \"start_ns\":0,\"dur_ns\":10}\n",
        );
        assert_eq!(r.codes(), vec![codes::TELEM_PATH]);
        assert_eq!(r.error_count(), 2);
    }

    #[test]
    fn missing_meta_is_informational_only() {
        let r = report("{\"type\":\"counter\",\"name\":\"exec.jobs\",\"delta\":1}\n");
        assert!(r.is_clean());
        assert_eq!(r.codes(), vec![codes::TELEM_FIELD]);
        assert_eq!(r.diagnostics[0].severity, Severity::Info);
    }

    #[test]
    fn escaped_details_round_trip() {
        let r = report(
            "{\"type\":\"meta\",\"version\":1}\n\
             {\"type\":\"span\",\"thread\":0,\"depth\":0,\"path\":\"a\",\"name\":\"a\",\
             \"detail\":\"quote \\\" tab \\t unicode \\u00e9\",\
             \"start_ns\":0,\"dur_ns\":10}\n",
        );
        assert!(r.diagnostics.is_empty(), "{}", r.render_text());
    }

    #[test]
    fn self_time_invariant_holds_for_valid_aggregates() {
        let spans = vec![
            ("run".to_string(), 100u64),
            ("run/a".to_string(), 30),
            ("run/a/deep".to_string(), 25),
            ("run/b".to_string(), 20),
        ];
        assert!(check_self_time("t", &spans).is_empty());
    }

    #[test]
    fn self_time_violation_is_chk1203() {
        let spans = vec![
            ("run".to_string(), 100u64),
            ("run/a".to_string(), 70),
            ("run/b".to_string(), 60),
        ];
        let diags = check_self_time("t", &spans);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::SELF_TIME);
        assert!(diags[0].message.contains("130 ns"));
    }

    #[test]
    fn self_time_ignores_lookalike_siblings_and_orphans() {
        // "run.x" sorts between "run" and "run/" but is no child; an
        // orphan chain without its parent is skipped, not guessed at.
        let spans = vec![
            ("run".to_string(), 10u64),
            ("run.x".to_string(), 500),
            ("gone/child".to_string(), 400),
        ];
        assert!(check_self_time("t", &spans).is_empty());
    }

    #[test]
    fn self_time_sums_duplicate_paths() {
        let spans = vec![
            ("run".to_string(), 50u64),
            ("run/a".to_string(), 40),
            ("run/a".to_string(), 40),
        ];
        let diags = check_self_time("t", &spans);
        assert_eq!(diags.len(), 1, "duplicates sum to 80 > 50");
    }
}
