//! Microbenchmarks for the cache simulator itself: LRU and Belady
//! throughput on an SpMV trace, and trace-generation cost.
//!
//! Every simulator consumes the kernel trace as a replayable stream
//! ([`KernelTrace`]); nothing here materializes a `Vec<Access>`, so the
//! Belady numbers include the cost of its two regeneration passes —
//! exactly what the pipeline pays.

use commorder::cachesim::belady::simulate_belady;
use commorder::cachesim::hierarchy::CacheHierarchy;
use commorder::cachesim::plru::PlruCache;
use commorder::cachesim::source::KernelTrace;
use commorder::cachesim::trace::ExecutionModel;
use commorder::prelude::*;
use commorder::synth::generators::PlantedPartition;
use commorder_bench::microbench::Runner;

fn fixture() -> CsrMatrix {
    PlantedPartition::uniform(4096, 32, 10.0, 0.1)
        .generate(99)
        .expect("valid generator config")
}

fn main() {
    let runner = Runner::from_env();
    let a = fixture();
    let source = KernelTrace::new(&a, Kernel::SpmvCsr, ExecutionModel::Sequential);
    let config = CacheConfig::test_scale();
    let mut n = 0u64;
    source.replay(&mut |_| n += 1);
    let accesses = Some(n);

    println!("== cachesim ==");
    runner.bench("trace_generation", accesses, || {
        let mut count = 0u64;
        source.replay(&mut |_| count += 1);
        count
    });
    runner.bench("lru", accesses, || {
        let mut cache = LruCache::new(config);
        cache.consume(&source);
        cache.finish()
    });
    runner.bench("belady", accesses, || simulate_belady(config, &source));
    runner.bench("plru", accesses, || {
        let mut cache = PlruCache::new(config);
        cache.consume(&source);
        cache.finish()
    });
    runner.bench("two_level_hierarchy", accesses, || {
        let l1 = CacheConfig {
            capacity_bytes: 1024,
            ..config
        };
        let mut stack = CacheHierarchy::new(l1, config);
        stack.consume(&source);
        stack.finish()
    });
}
