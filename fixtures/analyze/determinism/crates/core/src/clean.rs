//! Not reachable from any seed: the hazard below must stay silent.

use std::collections::HashMap;

/// Unreported: nothing report-affecting depends on this module.
#[must_use]
pub fn tally(xs: &[u32]) -> HashMap<u32, u32> {
    let mut out = HashMap::new();
    for &x in xs {
        *out.entry(x).or_insert(0) += 1;
    }
    out
}
