//! Belady's optimal (oracular) replacement policy \[8\], used by Fig. 8 to
//! quantify the remaining headroom over LRU: on a miss in a full set, the
//! resident line whose next use lies farthest in the future is evicted.
//!
//! The oracle needs per-access next-use knowledge, but **not** the trace
//! itself: the simulation is two [`TraceSource`] replays. Pass one walks
//! the stream forward and patches a compact per-access next-use array
//! (`u32` entries, promoted to `u64` only past 4 Gi accesses — at most 8
//! bytes per access, the bound the `trace_stream` microbench pins); pass
//! two walks the stream again and evicts by maximum next use. No
//! `Vec<Access>` is ever held. Classification (compulsory, dead lines,
//! write-backs) matches [`LruCache`](crate::LruCache) so the statistics
//! are directly comparable.

use std::collections::{HashMap, HashSet};

use crate::source::TraceSource;
use crate::trace::Access;
use crate::{CacheConfig, CacheStats};

/// Index meaning "never used again".
const NEVER: u64 = u64::MAX;

/// Compact next-use store: one `u32` per access until the trace index
/// space overflows, then one `u64`. The `u32::MAX` slot value is the
/// in-band "never" sentinel (a valid index can never reach it: the store
/// is promoted before the length gets there).
enum NextUses {
    Small(Vec<u32>),
    Large(Vec<u64>),
}

const NEVER_SMALL: u32 = u32::MAX;

impl NextUses {
    fn with_hint(hint: Option<u64>) -> Self {
        match hint {
            Some(n) if n >= u64::from(u32::MAX) => {
                NextUses::Large(Vec::with_capacity(usize::try_from(n).unwrap_or(0)))
            }
            Some(n) => NextUses::Small(Vec::with_capacity(n as usize)),
            None => NextUses::Small(Vec::new()),
        }
    }

    fn promote(&mut self) {
        if let NextUses::Small(v) = self {
            let wide = v
                .iter()
                .map(|&x| {
                    if x == NEVER_SMALL {
                        NEVER
                    } else {
                        u64::from(x)
                    }
                })
                .collect();
            *self = NextUses::Large(wide);
        }
    }

    /// Appends one access whose next use is (so far) "never".
    fn push_never(&mut self) {
        if let NextUses::Small(v) = self {
            if v.len() >= NEVER_SMALL as usize {
                self.promote();
            }
        }
        match self {
            NextUses::Small(v) => v.push(NEVER_SMALL),
            NextUses::Large(v) => v.push(NEVER),
        }
    }

    /// Patches an earlier access's next-use index.
    fn set(&mut self, idx: usize, value: u64) {
        match self {
            // `value` is a trace index below the current length, which
            // `push_never` keeps under the sentinel in the small repr.
            NextUses::Small(v) => v[idx] = value as u32,
            NextUses::Large(v) => v[idx] = value,
        }
    }

    fn get(&self, idx: usize) -> u64 {
        match self {
            NextUses::Small(v) => {
                let x = v[idx];
                if x == NEVER_SMALL {
                    NEVER
                } else {
                    u64::from(x)
                }
            }
            NextUses::Large(v) => v[idx],
        }
    }

    fn len(&self) -> usize {
        match self {
            NextUses::Small(v) => v.len(),
            NextUses::Large(v) => v.len(),
        }
    }

    /// Bytes held by the array — the oracle's whole per-access footprint.
    fn bytes(&self) -> u64 {
        match self {
            NextUses::Small(v) => v.len() as u64 * 4,
            NextUses::Large(v) => v.len() as u64 * 8,
        }
    }
}

/// Pass one: forward replay patching each tag's previous access with the
/// current index (equivalent to the classic backward pass, but it never
/// needs the trace in memory).
fn build_next_uses<S: TraceSource + ?Sized>(source: &S, config: &CacheConfig) -> NextUses {
    let mut next = NextUses::with_hint(source.len_hint());
    let mut last_seen: HashMap<u64, u64> = HashMap::new();
    let mut i = 0u64;
    source.replay(&mut |acc| {
        let (_, tag) = config.set_and_tag(acc.addr());
        next.push_never();
        if let Some(prev) = last_seen.insert(tag, i) {
            next.set(prev as usize, i);
        }
        i += 1;
    });
    next
}

/// Per-access index of the *next* access to the same line (`u64::MAX`
/// when the line is not touched again) — the slice-shaped view used by
/// tests and the CHK1003 monotone-consistency validator.
#[must_use]
pub fn next_use_indices(trace: &[Access], config: &CacheConfig) -> Vec<u64> {
    let next = build_next_uses(trace, config);
    (0..trace.len()).map(|i| next.get(i)).collect()
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    next_use: u64,
    dirty: bool,
    reuses: u32,
    valid: bool,
}

/// Simulates `source` under Belady's optimal replacement (two streaming
/// replays; see the module docs).
///
/// While telemetry is enabled, the peak next-use-array footprint is
/// published as the `cachesim.trace.peak_bytes` gauge.
///
/// # Panics
///
/// Panics on a degenerate cache geometry (see
/// [`CacheConfig::num_lines`]).
#[must_use]
pub fn simulate_belady<S: TraceSource + ?Sized>(config: CacheConfig, source: &S) -> CacheStats {
    let next = build_next_uses(source, &config);
    crate::telemetry::record_trace_peak_bytes(next.bytes());
    let assoc = config.associativity as usize;
    let mut ways = vec![
        Way {
            tag: 0,
            next_use: NEVER,
            dirty: false,
            reuses: 0,
            valid: false,
        };
        config.num_lines()
    ];
    let mut stats = CacheStats {
        line_bytes: config.line_bytes,
        ..CacheStats::default()
    };
    let mut seen: HashSet<u64> = HashSet::new();

    let mut i = 0usize;
    source.replay(&mut |acc| {
        let ni = next.get(i);
        i += 1;
        stats.accesses += 1;
        let (set, tag) = config.set_and_tag(acc.addr());
        let slice = &mut ways[set * assoc..(set + 1) * assoc];
        if let Some(w) = slice.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.next_use = ni;
            w.reuses += 1;
            w.dirty |= acc.is_write();
            stats.hits += 1;
            return;
        }
        if seen.insert(tag) {
            stats.compulsory_misses += 1;
        }
        if acc.is_write() {
            stats.write_alloc_misses += 1;
        } else {
            stats.fill_misses += 1;
        }
        stats.fills += 1;
        // Optimal bypass: a line never used again needn't displace a
        // useful resident — model it as filling and instantly dying only
        // when the set still has a better candidate to keep.
        let victim = match slice.iter().position(|w| !w.valid) {
            Some(idx) => idx,
            None => {
                let idx = slice
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, w)| w.next_use)
                    .expect("associativity > 0")
                    .0;
                // If the incoming line's next use is farther than every
                // resident's, evict the incoming line "immediately":
                // count the fill and a dead line, keep the set intact.
                if ni >= slice[idx].next_use {
                    stats.evictions += 1;
                    stats.dead_lines += u64::from(ni == NEVER);
                    if acc.is_write() {
                        stats.writebacks += 1;
                    }
                    return;
                }
                stats.evictions += 1;
                if slice[idx].reuses == 0 {
                    stats.dead_lines += 1;
                }
                if slice[idx].dirty {
                    stats.writebacks += 1;
                }
                idx
            }
        };
        slice[victim] = Way {
            tag,
            next_use: ni,
            dirty: acc.is_write(),
            reuses: 0,
            valid: true,
        };
    });
    commorder_sparse::debug_validate!(
        i == next.len(),
        "belady replay drifted: pass two saw {i} accesses, pass one {}",
        next.len()
    );
    for w in ways.iter().filter(|w| w.valid) {
        if w.dirty {
            stats.writebacks += 1;
        }
        if w.reuses == 0 {
            stats.dead_lines += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LruCache;

    fn read(addr: u64) -> Access {
        Access::read(addr)
    }

    fn tiny() -> CacheConfig {
        CacheConfig {
            capacity_bytes: 128,
            line_bytes: 32,
            associativity: 2,
        }
    }

    #[test]
    fn next_use_links_same_line() {
        let trace = [read(0), read(64), read(4), read(0)];
        let next = next_use_indices(&trace, &tiny());
        assert_eq!(next, vec![2, NEVER, 3, NEVER]);
    }

    #[test]
    fn compact_store_promotes_losslessly() {
        let mut next = NextUses::with_hint(Some(3));
        next.push_never();
        next.push_never();
        next.push_never();
        next.set(0, 2);
        assert!(matches!(next, NextUses::Small(_)));
        assert_eq!(next.bytes(), 3 * 4);
        next.promote();
        assert_eq!(next.get(0), 2);
        assert_eq!(next.get(1), NEVER);
        assert_eq!(next.get(2), NEVER);
        assert_eq!(next.bytes(), 3 * 8);
        next.set(1, u64::from(u32::MAX) + 5);
        assert_eq!(next.get(1), u64::from(u32::MAX) + 5);
    }

    #[test]
    fn small_store_costs_four_bytes_per_access() {
        let trace = [read(0), read(64), read(4), read(0)];
        let next = build_next_uses(&trace[..], &tiny());
        assert_eq!(next.bytes(), 4 * 4);
    }

    #[test]
    fn belady_beats_lru_on_anti_lru_pattern() {
        // Set 0 lines: 0, 64, 128. Pattern engineered so LRU thrashes but
        // the oracle keeps the frequently revisited line resident.
        let mut trace = Vec::new();
        for _ in 0..50 {
            trace.push(read(0));
            trace.push(read(64));
            trace.push(read(128));
        }
        let cfg = tiny();
        let mut lru = LruCache::new(cfg);
        for &a in &trace {
            lru.access(a);
        }
        let lru_stats = lru.finish();
        let opt = simulate_belady(cfg, &trace);
        assert!(
            opt.misses() < lru_stats.misses(),
            "belady {} vs lru {}",
            opt.misses(),
            lru_stats.misses()
        );
        // LRU with 2 ways on a cyclic 3-line pattern misses every access.
        assert_eq!(lru_stats.hits, 0);
        assert!(opt.hits > 0);
    }

    #[test]
    fn belady_never_worse_than_lru() {
        // Pseudo-random mixed trace.
        let mut state = 12345u64;
        let mut trace = Vec::new();
        for _ in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = (state >> 33) % 2048;
            trace.push(Access::new(addr, state.is_multiple_of(7)));
        }
        let cfg = tiny();
        let mut lru = LruCache::new(cfg);
        for &a in &trace {
            lru.access(a);
        }
        let lru_stats = lru.finish();
        let opt = simulate_belady(cfg, &trace);
        assert!(opt.misses() <= lru_stats.misses());
        assert_eq!(opt.accesses, lru_stats.accesses);
        // Compulsory misses are policy independent.
        assert_eq!(opt.compulsory_misses, lru_stats.compulsory_misses);
    }

    #[test]
    fn belady_matches_lru_on_streaming() {
        // Pure streaming: both policies take exactly the compulsory misses.
        let trace: Vec<Access> = (0..512).map(|i| read(i * 32)).collect();
        let cfg = tiny();
        let mut lru = LruCache::new(cfg);
        for &a in &trace {
            lru.access(a);
        }
        let lru_stats = lru.finish();
        let opt = simulate_belady(cfg, &trace);
        assert_eq!(opt.misses(), lru_stats.misses());
        assert_eq!(opt.misses(), 512);
    }

    #[test]
    fn streaming_source_matches_slice_source() {
        // The same stats must come out whether the source is an
        // in-memory slice or a regenerating kernel-trace source.
        use crate::source::{KernelTrace, TraceSource};
        use commorder_sparse::traffic::Kernel;
        let a = commorder_sparse::CsrMatrix::new(
            4,
            4,
            vec![0, 1, 3, 4, 4],
            vec![1, 0, 2, 1],
            vec![1.0; 4],
        )
        .unwrap();
        let source = KernelTrace::new(
            &a,
            Kernel::SpmvCsr,
            crate::trace::ExecutionModel::Sequential,
        );
        let collected = source.collect_trace();
        assert_eq!(
            simulate_belady(tiny(), &source),
            simulate_belady(tiny(), &collected)
        );
    }

    #[test]
    fn empty_trace() {
        let empty: &[Access] = &[];
        let s = simulate_belady(tiny(), empty);
        assert_eq!(s.accesses, 0);
        assert_eq!(s.dram_traffic_bytes(), 0);
    }
}
