//! Module `b`: reaches back into `a`.

use crate::a::A;

/// Half of the module cycle.
pub struct B {
    /// Back-reference.
    pub a: Option<Box<A>>,
}
