//! **Extension**: storage format x reordering — CSR vs ELL vs SELL-C-σ
//! under RANDOM and RABBIT++ orders.
//!
//! GPU formats attack regularity (coalescing, padding); reordering
//! attacks the X-vector's locality. This study shows they are orthogonal
//! axes: ELL's padding explodes on skewed matrices regardless of order,
//! SELL-C-σ's σ-sort fixes padding but not X locality, and RABBIT++
//! fixes X locality under every format. Traffic is normalized to the CSR
//! compulsory baseline so format overhead is directly visible.

use commorder::cachesim::format_trace::{EllTrace, SellTrace};
use commorder::prelude::*;
use commorder::sparse::{EllMatrix, SellMatrix};
use commorder_bench::Harness;

fn simulate_trace(gpu: &GpuSpec, source: &dyn TraceSource) -> u64 {
    let mut cache = LruCache::new(gpu.l2);
    cache.consume(source);
    cache.finish().dram_traffic_bytes()
}

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let subset: Vec<&str> = if harness.entries.len() <= 8 {
        vec!["mini-sbm", "mini-rmat", "mini-kmer"]
    } else {
        vec!["opt-block-512", "soc-rmat-65k", "kmer-65k", "web-stackex"]
    };
    let cases = harness.load_subset(&subset);
    let csr_pipeline = Pipeline::new(harness.gpu);

    for case in &cases {
        eprintln!("[format_study] {}", case.entry.name);
        let mut table = Table::new(
            format!(
                "{}: DRAM traffic normalized to CSR compulsory, format x ordering",
                case.entry.name
            ),
            vec![
                "ordering".into(),
                "CSR".into(),
                "ELL".into(),
                "ELL pad".into(),
                "SELL-32-256".into(),
                "SELL pad".into(),
            ],
        );
        let orderings: Vec<Box<dyn Reordering>> = vec![
            Box::new(RandomOrder::new(harness.random_seed)),
            Box::new(RabbitPlusPlus::new()),
        ];
        let compulsory = Kernel::SpmvCsr.compulsory_bytes_for(&case.matrix) as f64;
        let rows = harness.engine().map(&orderings, |_, ordering| {
            let perm = ordering
                .reorder(&case.matrix)
                .expect("square corpus matrix");
            let m = case.matrix.permute_symmetric(&perm).expect("validated");
            let mut row = vec![ordering.name().to_string()];
            row.push(Table::ratio(
                csr_pipeline.simulate(&m).dram_bytes as f64 / compulsory,
            ));
            // ELL: guard against padding blow-ups (the realistic failure
            // mode — report it instead of simulating gigabytes).
            match EllMatrix::from_csr(&m) {
                Ok(ell) if ell.padding_factor(m.nnz()) <= 16.0 => {
                    let traffic = simulate_trace(&harness.gpu, &EllTrace::new(&ell));
                    row.push(Table::ratio(traffic as f64 / compulsory));
                    row.push(format!("{:.1}x", ell.padding_factor(m.nnz())));
                }
                Ok(ell) => {
                    row.push("infeasible".to_string());
                    row.push(format!("{:.0}x", ell.padding_factor(m.nnz())));
                }
                Err(_) => {
                    row.push("overflow".to_string());
                    row.push("-".to_string());
                }
            }
            let sell = SellMatrix::from_csr(&m, 32, 256).expect("valid geometry");
            let traffic = simulate_trace(&harness.gpu, &SellTrace::new(&sell));
            row.push(Table::ratio(traffic as f64 / compulsory));
            row.push(format!("{:.2}x", sell.padding_factor(m.nnz())));
            row
        });
        for row in rows {
            table.add_row(row);
        }
        println!("{table}");
    }
    println!(
        "Reading: ELL is fine on regular matrices (kmer/mesh) and infeasible on\n\
         skewed ones in ANY order — reordering cannot fix padding. SELL-32-256\n\
         keeps padding near 1x everywhere, and RABBIT++ then removes the\n\
         X-gather traffic on top: the two optimizations compose, each owning\n\
         one axis (the paper's versatility argument extended to formats)."
    );
}
