//! Validator for the analyzer report's call-graph section (`CHK1102`).
//!
//! `commorder-analyze` emits a `"callgraph"` object after the findings
//! array: node display strings, sorted edge pairs, three seed sets,
//! the cyclic SCC components, and resolution statistics. CI pipes the
//! self-host report through this validator, so a graph whose edges
//! reference undeclared nodes, whose seed sets went silently empty,
//! whose declared SCCs fail to cover a cycle, or whose site counters
//! do not add up fails loudly instead of gating nothing.
//!
//! Like `CHK1101` the parser is line-oriented and lenient: every
//! violation becomes a [`Diagnostic`] and validation continues where
//! the frame allows.

use std::collections::{BTreeSet, VecDeque};

use crate::codes;
use crate::diag::{Diagnostic, Location};

/// Validates the `"callgraph"` section that starts at `lines[start]`
/// (the `"callgraph": {` line). Emits `CHK1102` diagnostics into
/// `out` and returns `(next, node_count, edges)`: the index one past
/// the section's closing brace (or `lines.len()` when the frame is
/// too broken to locate it) plus the declared node count and parsed
/// edges, which the effects validator replays its monotonicity and
/// witness checks against.
#[must_use]
pub fn check_callgraph_section(
    lines: &[&str],
    start: usize,
    out: &mut Vec<Diagnostic>,
) -> (usize, usize, Vec<(u32, u32)>) {
    let err = |line: usize, message: String| {
        Diagnostic::error(
            codes::CALLGRAPH_SCHEMA,
            Location::at("report line", line as u64 + 1),
            message,
        )
    };
    if lines.get(start).map(|l| l.trim()) != Some("\"callgraph\": {") {
        out.push(err(
            start,
            format!(
                "expected a '\"callgraph\": {{' section, found {:?}",
                lines.get(start).copied().unwrap_or("").trim()
            ),
        ));
        return (lines.len(), 0, Vec::new());
    }

    let mut i = start + 1;
    let node_count = check_nodes(lines, &mut i, out);
    let edges = check_edges(lines, &mut i, node_count, out);
    let seeds = check_seeds(lines, &mut i, node_count, out);
    let sccs = check_sccs(lines, &mut i, node_count, out);
    check_stats(lines, &mut i, out);
    if node_count > 0 {
        check_seed_presence(lines, i, &seeds, out);
    }
    check_condensation(lines, i, node_count, &edges, &sccs, out);

    if lines.get(i).copied() != Some("  },") {
        out.push(err(i, "call-graph section must close with '  },'".into()));
        return (lines.len(), node_count, edges);
    }
    (i + 1, node_count, edges)
}

/// Shared `CHK1102` constructor.
fn err(line: usize, message: String) -> Diagnostic {
    Diagnostic::error(
        codes::CALLGRAPH_SCHEMA,
        Location::at("report line", line as u64 + 1),
        message,
    )
}

/// Validates the `"nodes"` array and returns the declared node count.
fn check_nodes(lines: &[&str], i: &mut usize, out: &mut Vec<Diagnostic>) -> usize {
    let open = lines.get(*i).copied().unwrap_or("").trim().to_string();
    if open == "\"nodes\": []," {
        *i += 1;
        return 0;
    }
    if open != "\"nodes\": [" {
        out.push(err(*i, format!("expected a nodes array, found {open:?}")));
        return 0;
    }
    *i += 1;
    let mut count = 0;
    while *i < lines.len() && lines[*i].trim() != "]," {
        let row = lines[*i].trim();
        let entry = row.strip_suffix(',').unwrap_or(row);
        match entry.strip_prefix('"').and_then(|e| e.strip_suffix('"')) {
            Some(display) if node_display_ok(display) => {}
            _ => out.push(err(
                *i,
                format!("node {entry:?} must look like \"file::name@line:col\""),
            )),
        }
        count += 1;
        *i += 1;
    }
    if lines.get(*i).map(|l| l.trim()) != Some("],") {
        out.push(err(*i, "nodes array is not closed with '],'".into()));
    } else {
        *i += 1;
    }
    count
}

/// `true` when a node display string has the `file::name@line:col`
/// shape with positive position numbers.
fn node_display_ok(display: &str) -> bool {
    let Some((path, pos)) = display.rsplit_once('@') else {
        return false;
    };
    let Some((line, col)) = pos.split_once(':') else {
        return false;
    };
    path.contains("::")
        && line.parse::<u32>().is_ok_and(|n| n > 0)
        && col.parse::<u32>().is_ok_and(|n| n > 0)
}

/// Validates the `"edges"` array: in-range endpoints, strictly
/// ascending (sorted and deduplicated) pairs. Returns the parsed
/// edges for the condensation check.
fn check_edges(
    lines: &[&str],
    i: &mut usize,
    node_count: usize,
    out: &mut Vec<Diagnostic>,
) -> Vec<(u32, u32)> {
    let open = lines.get(*i).copied().unwrap_or("").trim().to_string();
    if open == "\"edges\": []," {
        *i += 1;
        return Vec::new();
    }
    let mut edges = Vec::new();
    if open != "\"edges\": [" {
        out.push(err(*i, format!("expected an edges array, found {open:?}")));
        return edges;
    }
    *i += 1;
    let mut prev: Option<(u32, u32)> = None;
    while *i < lines.len() && lines[*i].trim() != "]," {
        let row = lines[*i].trim();
        let entry = row.strip_suffix(',').unwrap_or(row);
        let pair = entry
            .strip_prefix('[')
            .and_then(|e| e.strip_suffix(']'))
            .and_then(|body| {
                let (a, b) = body.split_once(',')?;
                Some((a.parse::<u32>().ok()?, b.parse::<u32>().ok()?))
            });
        match pair {
            Some((a, b)) => {
                for id in [a, b] {
                    if id as usize >= node_count {
                        out.push(err(
                            *i,
                            format!("edge references node {id} but only {node_count} are declared"),
                        ));
                    }
                }
                if prev.is_some_and(|p| p >= (a, b)) {
                    out.push(err(
                        *i,
                        "edges must be strictly ascending (sorted, deduplicated)".into(),
                    ));
                }
                prev = Some((a, b));
                edges.push((a, b));
            }
            None => out.push(err(*i, format!("edge {entry:?} must be a [from,to] pair"))),
        }
        *i += 1;
    }
    if lines.get(*i).map(|l| l.trim()) != Some("],") {
        out.push(err(*i, "edges array is not closed with '],'".into()));
    } else {
        *i += 1;
    }
    edges
}

/// Validates the single-line `"seeds"` object; returns the three id
/// lists (determinism, hotpath, worker).
fn check_seeds(
    lines: &[&str],
    i: &mut usize,
    node_count: usize,
    out: &mut Vec<Diagnostic>,
) -> [Vec<u32>; 3] {
    let line = lines.get(*i).copied().unwrap_or("").trim().to_string();
    let Some(seeds) = parse_seeds(&line) else {
        out.push(err(
            *i,
            format!("expected a one-line seeds object, found {line:?}"),
        ));
        return [Vec::new(), Vec::new(), Vec::new()];
    };
    for (name, ids) in ["determinism", "hotpath", "worker"].iter().zip(&seeds) {
        check_id_list(*i, &format!("{name} seed"), ids, node_count, out);
    }
    *i += 1;
    seeds
}

/// Parses `"seeds": {"determinism":[…],"hotpath":[…],"worker":[…]},`.
fn parse_seeds(line: &str) -> Option<[Vec<u32>; 3]> {
    let mut rest = line.strip_prefix("\"seeds\": {")?.strip_suffix("},")?;
    let mut seeds = [Vec::new(), Vec::new(), Vec::new()];
    for (slot, key) in seeds.iter_mut().zip(["determinism", "hotpath", "worker"]) {
        rest = rest
            .strip_prefix(&format!("\"{key}\":["))?
            .trim_start_matches(',');
        let end = rest.find(']')?;
        *slot = parse_u32_list(&rest[..end])?;
        rest = rest[end + 1..].trim_start_matches(',');
    }
    rest.is_empty().then_some(seeds)
}

/// Parses a `1,2,3` list; empty input is the empty list.
fn parse_u32_list(body: &str) -> Option<Vec<u32>> {
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|n| n.parse::<u32>().ok()).collect()
}

/// Flags out-of-range or non-ascending ids in a seed or SCC list.
fn check_id_list(
    line: usize,
    what: &str,
    ids: &[u32],
    node_count: usize,
    out: &mut Vec<Diagnostic>,
) {
    for id in ids {
        if *id as usize >= node_count {
            out.push(err(
                line,
                format!("{what} references node {id} but only {node_count} are declared"),
            ));
        }
    }
    if ids.windows(2).any(|w| w[0] >= w[1]) {
        out.push(err(line, format!("{what} ids must be strictly ascending")));
    }
}

/// Validates the single-line `"sccs"` array: disjoint, in-range,
/// ascending components. Returns them for the condensation check.
fn check_sccs(
    lines: &[&str],
    i: &mut usize,
    node_count: usize,
    out: &mut Vec<Diagnostic>,
) -> Vec<Vec<u32>> {
    let line = lines.get(*i).copied().unwrap_or("").trim().to_string();
    let Some(sccs) = parse_sccs(&line) else {
        out.push(err(
            *i,
            format!("expected a one-line sccs array, found {line:?}"),
        ));
        return Vec::new();
    };
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    for comp in &sccs {
        if comp.is_empty() {
            out.push(err(*i, "scc component must not be empty".into()));
        }
        check_id_list(*i, "scc component", comp, node_count, out);
        for id in comp {
            if !seen.insert(*id) {
                out.push(err(
                    *i,
                    format!("node {id} appears in more than one scc component"),
                ));
            }
        }
    }
    *i += 1;
    sccs
}

/// Parses `"sccs": [[…],[…]],` (possibly `"sccs": [],`).
fn parse_sccs(line: &str) -> Option<Vec<Vec<u32>>> {
    let body = line.strip_prefix("\"sccs\": [")?.strip_suffix("],")?;
    if body.is_empty() {
        return Some(Vec::new());
    }
    let mut out = Vec::new();
    let mut rest = body;
    loop {
        rest = rest.strip_prefix('[')?;
        let end = rest.find(']')?;
        out.push(parse_u32_list(&rest[..end])?);
        rest = &rest[end + 1..];
        if rest.is_empty() {
            return Some(out);
        }
        rest = rest.strip_prefix(',')?;
    }
}

/// Validates the single-line `"stats"` object: every counter present
/// and `resolved + external == call_sites`, `ambiguous <= resolved`.
fn check_stats(lines: &[&str], i: &mut usize, out: &mut Vec<Diagnostic>) {
    let line = lines.get(*i).copied().unwrap_or("").trim().to_string();
    let Some([sites, resolved, external, ambiguous]) = parse_stats(&line) else {
        out.push(err(
            *i,
            format!("expected a one-line stats object, found {line:?}"),
        ));
        return;
    };
    if resolved + external != sites {
        out.push(err(
            *i,
            format!(
                "stats do not add up: resolved {resolved} + external {external} != \
                 call_sites {sites}"
            ),
        ));
    }
    if ambiguous > resolved {
        out.push(err(
            *i,
            format!("ambiguous {ambiguous} exceeds resolved {resolved}"),
        ));
    }
    *i += 1;
}

/// Parses `"stats": {"call_sites":N,"resolved":N,"external":N,"ambiguous":N}`.
fn parse_stats(line: &str) -> Option<[u64; 4]> {
    let mut rest = line.strip_prefix("\"stats\": {")?.strip_suffix('}')?;
    let mut vals = [0u64; 4];
    for (slot, key) in vals
        .iter_mut()
        .zip(["call_sites", "resolved", "external", "ambiguous"])
    {
        rest = rest
            .trim_start_matches(',')
            .strip_prefix(&format!("\"{key}\":"))?;
        let end = rest.find(',').unwrap_or(rest.len());
        *slot = rest[..end].parse::<u64>().ok()?;
        rest = &rest[end..];
    }
    rest.is_empty().then_some(vals)
}

/// A non-empty graph with an empty seed set means the analyzer lost
/// its entry points — the downstream passes would silently gate
/// nothing, which is exactly what this validator exists to catch.
fn check_seed_presence(
    lines: &[&str],
    close_line: usize,
    seeds: &[Vec<u32>; 3],
    out: &mut Vec<Diagnostic>,
) {
    let _ = lines;
    for (name, ids) in ["determinism", "hotpath", "worker"].iter().zip(seeds) {
        if ids.is_empty() {
            out.push(err(
                close_line,
                format!("{name} seed set is empty: the analyzer found no entry points"),
            ));
        }
    }
}

/// The SCC condensation must be a DAG: contracting each declared
/// component to one super-node, Kahn's algorithm must consume every
/// super-node. A leftover means the edges contain a cycle the
/// declared components do not cover.
fn check_condensation(
    lines: &[&str],
    close_line: usize,
    node_count: usize,
    edges: &[(u32, u32)],
    sccs: &[Vec<u32>],
    out: &mut Vec<Diagnostic>,
) {
    let _ = lines;
    // Component id per node: declared components first, the rest are
    // their own singletons.
    let mut comp: Vec<usize> = (0..node_count).collect();
    for (k, members) in sccs.iter().enumerate() {
        for &m in members {
            if (m as usize) < node_count {
                comp[m as usize] = node_count + k;
            }
        }
    }
    let ids: BTreeSet<usize> = comp.iter().copied().collect();
    let index: std::collections::BTreeMap<usize, usize> =
        ids.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let n = index.len();
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut indegree = vec![0usize; n];
    for &(a, b) in edges {
        let (Some(&ca), Some(&cb)) = (
            comp.get(a as usize).and_then(|c| index.get(c)),
            comp.get(b as usize).and_then(|c| index.get(c)),
        ) else {
            continue; // out-of-range edges were already flagged
        };
        if ca != cb && adj[ca].insert(cb) {
            indegree[cb] += 1;
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
    let mut consumed = 0;
    while let Some(u) = queue.pop_front() {
        consumed += 1;
        for &v in &adj[u] {
            indegree[v] -= 1;
            if indegree[v] == 0 {
                queue.push_back(v);
            }
        }
    }
    if consumed != n {
        out.push(err(
            close_line,
            "edges contain a cycle the declared sccs do not cover \
             (condensation is not a DAG)"
                .into(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical empty section, exactly as the analyzer renders it.
    pub(crate) const EMPTY: &str = concat!(
        "  \"callgraph\": {\n",
        "    \"nodes\": [],\n",
        "    \"edges\": [],\n",
        "    \"seeds\": {\"determinism\":[],\"hotpath\":[],\"worker\":[]},\n",
        "    \"sccs\": [],\n",
        "    \"stats\": {\"call_sites\":0,\"resolved\":0,\"external\":0,\"ambiguous\":0}\n",
        "  },",
    );

    /// A populated, internally consistent section.
    fn populated() -> String {
        concat!(
            "  \"callgraph\": {\n",
            "    \"nodes\": [\n",
            "      \"crates/a/src/lib.rs::render_json@3:8\",\n",
            "      \"crates/a/src/lib.rs::replay@9:8\",\n",
            "      \"crates/a/src/lib.rs::Engine::map::{closure}@20:15\"\n",
            "    ],\n",
            "    \"edges\": [\n",
            "      [0,1],\n",
            "      [1,2]\n",
            "    ],\n",
            "    \"seeds\": {\"determinism\":[0],\"hotpath\":[1],\"worker\":[2]},\n",
            "    \"sccs\": [],\n",
            "    \"stats\": {\"call_sites\":3,\"resolved\":2,\"external\":1,\"ambiguous\":1}\n",
            "  },",
        )
        .to_string()
    }

    fn run(section: &str) -> Vec<Diagnostic> {
        let lines: Vec<&str> = section.lines().collect();
        let mut out = Vec::new();
        let (next, _, _) = check_callgraph_section(&lines, 0, &mut out);
        assert!(next == lines.len() || lines[next - 1] == "  },");
        out
    }

    #[test]
    fn empty_and_populated_sections_pass() {
        assert!(run(EMPTY).is_empty());
        assert!(run(&populated()).is_empty());
    }

    #[test]
    fn out_of_range_edge_is_flagged() {
        let bad = populated().replace("[1,2]", "[1,9]");
        let diags = run(&bad);
        assert!(diags
            .iter()
            .any(|d| d.message.contains("references node 9")));
    }

    #[test]
    fn unsorted_edges_are_flagged() {
        let bad = populated().replace("[0,1],\n      [1,2]", "[1,2],\n      [0,1]");
        let diags = run(&bad);
        assert!(diags
            .iter()
            .any(|d| d.message.contains("strictly ascending")));
    }

    #[test]
    fn empty_seed_set_on_nonempty_graph_is_flagged() {
        let bad = populated().replace("\"worker\":[2]", "\"worker\":[]");
        let diags = run(&bad);
        assert!(diags
            .iter()
            .any(|d| d.message.contains("worker seed set is empty")));
    }

    #[test]
    fn uncovered_cycle_fails_the_condensation_check() {
        // 1→2 plus 2→1 forms a cycle, but sccs stays empty.
        let bad = populated()
            .replace("[1,2]\n", "[1,2],\n      [2,1]\n")
            .replace("\"call_sites\":3", "\"call_sites\":4")
            .replace("\"resolved\":2", "\"resolved\":3");
        let diags = run(&bad);
        assert!(diags
            .iter()
            .any(|d| d.message.contains("condensation is not a DAG")));
        // Declaring the component fixes it.
        let good = bad.replace("\"sccs\": []", "\"sccs\": [[1,2]]");
        assert!(run(&good).is_empty());
    }

    #[test]
    fn inconsistent_stats_are_flagged() {
        let bad = populated().replace("\"external\":1", "\"external\":5");
        let diags = run(&bad);
        assert!(diags.iter().any(|d| d.message.contains("do not add up")));
        let bad = populated().replace("\"ambiguous\":1", "\"ambiguous\":7");
        let diags = run(&bad);
        assert!(diags.iter().any(|d| d.message.contains("exceeds resolved")));
    }

    #[test]
    fn overlapping_sccs_and_bad_nodes_are_flagged() {
        let bad = populated().replace("\"sccs\": []", "\"sccs\": [[0,1],[1,2]]");
        let diags = run(&bad);
        assert!(diags
            .iter()
            .any(|d| d.message.contains("more than one scc component")));
        let bad = populated().replace("crates/a/src/lib.rs::replay@9:8", "nonsense");
        let diags = run(&bad);
        assert!(diags
            .iter()
            .any(|d| d.message.contains("file::name@line:col")));
    }
}
