//! Quickstart: reorder one matrix with every technique and compare DRAM
//! traffic against the hardware limit, using the experiment grid API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use commorder::prelude::*;
use commorder::synth::generators::CommunityHub;

fn main() -> Result<(), commorder::sparse::SparseError> {
    // A web-crawl-like matrix: strong communities plus global hubs,
    // published with scrambled IDs (the usual messy real-world case).
    let matrix = CommunityHub {
        n: 16_384,
        communities: 128,
        intra_degree: 10.0,
        hub_fraction: 0.02,
        hub_degree: 24.0,
        mixing: 0.08,
        scramble_ids: true,
    }
    .generate(42)?;
    println!(
        "matrix: {} rows, {} non-zeros",
        matrix.n_rows(),
        matrix.nnz()
    );

    // Declare the grid (1 matrix x 7 techniques x SpMV-CSR on a scaled
    // A6000 L2, see DESIGN.md) and fan it across all cores. The result
    // table is identical for any thread count.
    let spec = ExperimentSpec::new(GpuSpec::test_scale())
        .matrix("webhub", matrix)
        .techniques(paper_suite(7));
    let result = spec.run(&Engine::available())?;

    let mut table = Table::new(
        "SpMV on the simulated A6000 L2",
        vec![
            "technique".into(),
            "traffic/compulsory".into(),
            "time/ideal".into(),
            "L2 hit rate".into(),
            "reorder time".into(),
        ],
    );
    for (ti, technique) in result.techniques.iter().enumerate() {
        let record = result.run_for(0, ti);
        table.add_row(vec![
            technique.clone(),
            Table::ratio(record.run.traffic_ratio),
            Table::ratio(record.run.time_ratio),
            Table::percent(record.run.stats.hit_rate()),
            Table::seconds(record.reorder_seconds),
        ]);
    }
    println!("{table}");
    println!("lower is better; 1.00x = hardware limit (compulsory traffic / ideal time)");
    println!("engine: {}", result.stats.summary());
    Ok(())
}
