//! Criterion microbenchmarks for the cache simulator itself: LRU and
//! Belady throughput on an SpMV trace, and trace-generation cost.

use commorder::cachesim::belady::simulate_belady;
use commorder::cachesim::hierarchy::CacheHierarchy;
use commorder::cachesim::plru::PlruCache;
use commorder::cachesim::trace::{collect_trace, for_each_access, ExecutionModel};
use commorder::prelude::*;
use commorder::synth::generators::PlantedPartition;
use std::time::Duration;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn fixture() -> CsrMatrix {
    PlantedPartition::uniform(4096, 32, 10.0, 0.1)
        .generate(99)
        .expect("valid generator config")
}

fn bench_cachesim(c: &mut Criterion) {
    let a = fixture();
    let trace = collect_trace(&a, Kernel::SpmvCsr, ExecutionModel::Sequential);
    let config = CacheConfig::test_scale();

    let mut group = c.benchmark_group("cachesim");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("trace_generation", |bench| {
        bench.iter(|| {
            let mut count = 0u64;
            for_each_access(&a, Kernel::SpmvCsr, ExecutionModel::Sequential, |_| {
                count += 1;
            });
            count
        });
    });
    group.bench_function("lru", |bench| {
        bench.iter(|| {
            let mut cache = LruCache::new(config);
            for &acc in &trace {
                cache.access(acc);
            }
            cache.finish()
        });
    });
    group.bench_function("belady", |bench| {
        bench.iter(|| simulate_belady(config, &trace));
    });
    group.bench_function("plru", |bench| {
        bench.iter(|| {
            let mut cache = PlruCache::new(config);
            for &acc in &trace {
                cache.access(acc);
            }
            cache.finish()
        });
    });
    group.bench_function("two_level_hierarchy", |bench| {
        let l1 = CacheConfig {
            capacity_bytes: 1024,
            ..config
        };
        bench.iter(|| {
            let mut stack = CacheHierarchy::new(l1, config);
            for &acc in &trace {
                stack.access(acc);
            }
            stack.finish()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_cachesim);
criterion_main!(benches);
