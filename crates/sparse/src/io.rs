//! Matrix Market and edge-list I/O.
//!
//! The paper's corpus comes from SuiteSparse (Matrix Market files), Konect
//! and Web Data Commons (edge lists). This module reads both so externally
//! downloaded matrices can be dropped into any experiment binary in place
//! of the synthetic corpus.
//!
//! Readers take `R: Read` by value; pass `&mut reader` to retain ownership.

use std::io::{BufRead, BufReader, Read, Write};

use crate::{CooMatrix, CsrMatrix, SparseError};

/// Symmetry declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// All entries stored explicitly.
    General,
    /// Only the lower triangle stored; reader mirrors entries.
    Symmetric,
}

/// Reads a Matrix Market `coordinate` stream into a [`CooMatrix`].
///
/// Supports `real`, `integer`, and `pattern` fields with `general` or
/// `symmetric` symmetry (pattern entries get value 1.0; symmetric
/// off-diagonal entries are mirrored). Indices in the file are 1-based.
///
/// # Errors
///
/// Returns [`SparseError::Parse`] on malformed headers, counts, or entry
/// lines; [`SparseError::Io`] on read failures.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CooMatrix, SparseError> {
    let mut lines = BufReader::new(reader).lines().enumerate();

    let (line_no, header) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (i + 1, line);
                }
            }
            None => {
                return Err(SparseError::Parse {
                    line: 0,
                    message: "empty stream".to_string(),
                })
            }
        }
    };

    let header_lc = header.to_ascii_lowercase();
    let tokens: Vec<&str> = header_lc.split_whitespace().collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(SparseError::Parse {
            line: line_no,
            message: format!("not a MatrixMarket matrix header: {header:?}"),
        });
    }
    if tokens[2] != "coordinate" {
        return Err(SparseError::Parse {
            line: line_no,
            message: format!("unsupported format {:?} (only coordinate)", tokens[2]),
        });
    }
    let pattern = match tokens[3] {
        "real" | "integer" => false,
        "pattern" => true,
        other => {
            return Err(SparseError::Parse {
                line: line_no,
                message: format!("unsupported field type {other:?}"),
            })
        }
    };
    let symmetry = match tokens[4] {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        other => {
            return Err(SparseError::Parse {
                line: line_no,
                message: format!("unsupported symmetry {other:?}"),
            })
        }
    };

    // Skip comments, find the size line.
    let (size_line_no, size_line) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break (i + 1, line);
            }
            None => {
                return Err(SparseError::Parse {
                    line: 0,
                    message: "missing size line".to_string(),
                })
            }
        }
    };
    let dims: Vec<u64> = size_line
        .split_whitespace()
        .map(|t| t.parse::<u64>())
        .collect::<Result<_, _>>()
        .map_err(|e| SparseError::Parse {
            line: size_line_no,
            message: format!("bad size line: {e}"),
        })?;
    if dims.len() != 3 {
        return Err(SparseError::Parse {
            line: size_line_no,
            message: format!("size line must have 3 fields, found {}", dims.len()),
        });
    }
    let (n_rows, n_cols, declared_nnz) = (dims[0], dims[1], dims[2] as usize);
    if n_rows > u64::from(u32::MAX) || n_cols > u64::from(u32::MAX) {
        return Err(SparseError::TooLarge(format!(
            "{n_rows} x {n_cols} exceeds u32 indexing"
        )));
    }

    let mut coo = CooMatrix::empty(n_rows as u32, n_cols as u32);
    let mut seen = 0usize;
    for (i, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse_idx = |tok: Option<&str>, what: &str| -> Result<u32, SparseError> {
            tok.ok_or_else(|| SparseError::Parse {
                line: i + 1,
                message: format!("missing {what}"),
            })?
            .parse::<u32>()
            .map_err(|e| SparseError::Parse {
                line: i + 1,
                message: format!("bad {what}: {e}"),
            })
        };
        let r1 = parse_idx(it.next(), "row index")?;
        let c1 = parse_idx(it.next(), "column index")?;
        if r1 == 0 || c1 == 0 {
            return Err(SparseError::Parse {
                line: i + 1,
                message: "indices are 1-based; found 0".to_string(),
            });
        }
        let v = if pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| SparseError::Parse {
                    line: i + 1,
                    message: "missing value".to_string(),
                })?
                .parse::<f32>()
                .map_err(|e| SparseError::Parse {
                    line: i + 1,
                    message: format!("bad value: {e}"),
                })?
        };
        let (r, c) = (r1 - 1, c1 - 1);
        coo.push(r, c, v)?;
        if symmetry == MmSymmetry::Symmetric && r != c {
            coo.push(c, r, v)?;
        }
        seen += 1;
    }
    if seen != declared_nnz {
        return Err(SparseError::Parse {
            line: 0,
            message: format!("header declared {declared_nnz} entries, found {seen}"),
        });
    }
    Ok(coo)
}

/// Writes a CSR matrix as Matrix Market `coordinate real general`.
///
/// # Errors
///
/// Returns [`SparseError::Io`] on write failures.
pub fn write_matrix_market<W: Write>(mut writer: W, a: &CsrMatrix) -> Result<(), SparseError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% written by commorder-sparse")?;
    writeln!(writer, "{} {} {}", a.n_rows(), a.n_cols(), a.nnz())?;
    for (r, c, v) in a.iter() {
        writeln!(writer, "{} {} {}", r + 1, c + 1, v)?;
    }
    Ok(())
}

/// Reads a whitespace-separated edge list (`src dst` per line, `#` or `%`
/// comments, 0-based IDs — the SNAP/Konect convention) into a square
/// pattern [`CooMatrix`] sized by the largest endpoint.
///
/// # Errors
///
/// Returns [`SparseError::Parse`] on malformed lines and
/// [`SparseError::Io`] on read failures.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CooMatrix, SparseError> {
    let mut edges: Vec<(u32, u32, f32)> = Vec::new();
    let mut max_id = 0u32;
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u32, SparseError> {
            tok.ok_or_else(|| SparseError::Parse {
                line: i + 1,
                message: "expected `src dst`".to_string(),
            })?
            .parse::<u32>()
            .map_err(|e| SparseError::Parse {
                line: i + 1,
                message: format!("bad vertex id: {e}"),
            })
        };
        let s = parse(it.next())?;
        let d = parse(it.next())?;
        max_id = max_id.max(s).max(d);
        edges.push((s, d, 1.0));
    }
    let n = if edges.is_empty() { 0 } else { max_id + 1 };
    CooMatrix::from_entries(n, n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_real_general() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    2 3 2\n\
                    1 2 5.5\n\
                    2 3 -1\n";
        let coo = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(coo.n_rows(), 2);
        assert_eq!(coo.n_cols(), 3);
        assert_eq!(coo.entries(), &[(0, 1, 5.5), (1, 2, -1.0)]);
    }

    #[test]
    fn read_pattern_symmetric_mirrors() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    3 3 2\n\
                    2 1\n\
                    3 3\n";
        let coo = read_matrix_market(text.as_bytes()).unwrap();
        // (1,0) mirrored to (0,1); diagonal (2,2) not mirrored.
        assert_eq!(coo.nnz(), 3);
        let mut coords: Vec<_> = coo.entries().iter().map(|&(r, c, _)| (r, c)).collect();
        coords.sort_unstable();
        assert_eq!(coords, vec![(0, 1), (1, 0), (2, 2)]);
    }

    #[test]
    fn read_rejects_bad_header() {
        assert!(matches!(
            read_matrix_market("%%MatrixMarket tensor\n".as_bytes()),
            Err(SparseError::Parse { .. })
        ));
        assert!(matches!(
            read_matrix_market("%%MatrixMarket matrix array real general\n1 1\n".as_bytes()),
            Err(SparseError::Parse { .. })
        ));
    }

    #[test]
    fn read_rejects_count_mismatch() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n";
        assert!(matches!(
            read_matrix_market(text.as_bytes()),
            Err(SparseError::Parse { .. })
        ));
    }

    #[test]
    fn read_rejects_zero_based_index() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n";
        assert!(matches!(
            read_matrix_market(text.as_bytes()),
            Err(SparseError::Parse { .. })
        ));
    }

    #[test]
    fn write_then_read_round_trips() {
        let m = CsrMatrix::new(2, 2, vec![0, 1, 2], vec![1, 0], vec![2.5, -3.0]).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &m).unwrap();
        let coo = read_matrix_market(buf.as_slice()).unwrap();
        let back = CsrMatrix::try_from(coo).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn edge_list_reads_snap_style() {
        let text = "# comment\n0 1\n1 2\n\n2 0\n";
        let coo = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(coo.n_rows(), 3);
        assert_eq!(coo.nnz(), 3);
    }

    #[test]
    fn edge_list_empty_input() {
        let coo = read_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(coo.n_rows(), 0);
        assert_eq!(coo.nnz(), 0);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(matches!(
            read_edge_list("0 x\n".as_bytes()),
            Err(SparseError::Parse { .. })
        ));
        assert!(matches!(
            read_edge_list("7\n".as_bytes()),
            Err(SparseError::Parse { .. })
        ));
    }
}
