use std::fmt;

/// Error type for all fallible operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SparseError {
    /// An operand's dimensions do not match what the operation requires.
    DimensionMismatch {
        /// What the operation expected (e.g. "x.len() == n_cols").
        expected: String,
        /// What was actually observed.
        found: String,
    },
    /// A row/column index is outside the matrix dimensions.
    IndexOutOfBounds {
        /// The offending index.
        index: u32,
        /// The exclusive bound it violated.
        bound: u32,
    },
    /// A CSR/CSC offsets array is malformed (wrong length, not
    /// monotonically non-decreasing, or its last entry disagrees with the
    /// index-array length).
    InvalidOffsets {
        /// Position in the offsets (or index) array where the violation
        /// was detected; equals the array length for length mismatches.
        index: usize,
        /// The offending value observed at `index`.
        value: u64,
        /// What the invariant required instead.
        message: String,
    },
    /// A permutation is not a bijection on `0..len`.
    InvalidPermutation {
        /// Position (old ID / rank) of the offending entry.
        index: usize,
        /// The offending entry value.
        value: u32,
        /// Which bijection law was broken.
        message: String,
    },
    /// The matrix (or an operation's requirement) exceeds `u32` indexing.
    TooLarge(String),
    /// A Matrix Market stream could not be parsed.
    Parse {
        /// 1-based line number of the offending line (0 when unknown).
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An underlying I/O error (kind and message preserved as text so the
    /// error stays `Clone + Eq`).
    Io(String),
    /// An experiment/pipeline configuration value is invalid (e.g. a
    /// zero-capacity cache, a kernel with zero tile width). Surfaced by
    /// validating builders so misconfiguration fails at construction
    /// instead of panicking mid-simulation.
    InvalidConfig {
        /// The configuration field at fault (e.g. `"l2.capacity_bytes"`).
        what: String,
        /// Why the value is rejected.
        message: String,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            SparseError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (must be < {bound})")
            }
            SparseError::InvalidOffsets {
                index,
                value,
                message,
            } => write!(
                f,
                "invalid offsets array at index {index} (value {value}): {message}"
            ),
            SparseError::InvalidPermutation {
                index,
                value,
                message,
            } => write!(
                f,
                "invalid permutation at position {index} (value {value}): {message}"
            ),
            SparseError::TooLarge(msg) => write!(f, "matrix too large: {msg}"),
            SparseError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            SparseError::Io(msg) => write!(f, "i/o error: {msg}"),
            SparseError::InvalidConfig { what, message } => {
                write!(f, "invalid configuration for {what}: {message}")
            }
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(err: std::io::Error) -> Self {
        SparseError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = SparseError::DimensionMismatch {
            expected: "x.len() == 4".to_string(),
            found: "x.len() == 3".to_string(),
        };
        let s = e.to_string();
        assert!(s.starts_with("dimension mismatch"));
        assert!(s.contains("x.len() == 4"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = SparseError::from(io);
        assert!(matches!(e, SparseError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }

    #[test]
    fn index_out_of_bounds_display() {
        let e = SparseError::IndexOutOfBounds { index: 9, bound: 5 };
        assert_eq!(e.to_string(), "index 9 out of bounds (must be < 5)");
    }

    #[test]
    fn invalid_offsets_carries_index_and_value() {
        let e = SparseError::InvalidOffsets {
            index: 3,
            value: 7,
            message: "offsets must be non-decreasing".to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("index 3"), "{s}");
        assert!(s.contains("value 7"), "{s}");
        assert!(s.contains("non-decreasing"), "{s}");
    }

    #[test]
    fn invalid_config_display() {
        let e = SparseError::InvalidConfig {
            what: "l2.capacity_bytes".to_string(),
            message: "capacity must be positive".to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("invalid configuration"), "{s}");
        assert!(s.contains("l2.capacity_bytes"), "{s}");
    }

    #[test]
    fn invalid_permutation_carries_index_and_value() {
        let e = SparseError::InvalidPermutation {
            index: 2,
            value: 9,
            message: "entry exceeds permutation length 4".to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("position 2"), "{s}");
        assert!(s.contains("value 9"), "{s}");
    }
}
