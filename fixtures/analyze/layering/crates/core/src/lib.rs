//! Fixture top-layer crate: no dependencies of its own.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The item the lower-layer crate reaches back up for.
pub struct Experiment;
