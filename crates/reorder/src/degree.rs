//! Lightweight degree-based orderings: ORIGINAL, RANDOM, DEGSORT, DBG,
//! HUBSORT and HUBGROUP.
//!
//! These exploit only the power-law degree distribution (§IV-A): packing
//! the most-referenced vertices (columns with high in-degree, since SpMV
//! reads `X[col]` once per stored entry) into the fewest cache lines.

use commorder_sparse::{CsrMatrix, Permutation, SparseError};

use crate::Reordering;

pub(crate) fn require_square(a: &CsrMatrix) -> Result<(), SparseError> {
    if a.is_square() {
        Ok(())
    } else {
        Err(SparseError::DimensionMismatch {
            expected: "square matrix".to_string(),
            found: format!("{} x {}", a.n_rows(), a.n_cols()),
        })
    }
}

/// The publisher's ordering: the identity permutation (paper's ORIGINAL).
///
/// Observation 3 of the paper: this is an ill-defined baseline — it
/// reflects an arbitrary publisher choice, not a matrix property.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Original;

impl Reordering for Original {
    fn name(&self) -> &str {
        "ORIGINAL"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<Permutation, SparseError> {
        require_square(a)?;
        Ok(Permutation::identity(a.n_rows() as usize))
    }
}

/// Uniformly random vertex IDs (paper's RANDOM): the structure-destroying
/// lower bound every technique is compared against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomOrder {
    seed: u64,
}

impl RandomOrder {
    /// Creates a random ordering with a fixed seed (deterministic).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomOrder { seed }
    }
}

impl Reordering for RandomOrder {
    fn name(&self) -> &str {
        "RANDOM"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<Permutation, SparseError> {
        require_square(a)?;
        let n = a.n_rows() as usize;
        let mut ids: Vec<u32> = (0..a.n_rows()).collect();
        // Inline SplitMix64-driven Fisher-Yates; the reorder crate stays
        // independent of the synth crate's RNG.
        let mut state = self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            ids.swap(i, j);
        }
        Permutation::from_new_ids(ids)
    }
}

/// DEGSORT: stable sort of all vertices by decreasing in-degree.
///
/// "Assigns vertex IDs in decreasing order of degree so as to pack highly
/// connected vertices into the fewest number of cache lines" (§IV-A).
/// Uses in-degrees, following the paper's choice for push-style workloads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegSort;

impl Reordering for DegSort {
    fn name(&self) -> &str {
        "DEGSORT"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<Permutation, SparseError> {
        require_square(a)?;
        let degrees = a.in_degrees();
        let mut order: Vec<u32> = (0..a.n_rows()).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(degrees[v as usize]));
        Permutation::from_order(&order)
    }
}

/// DBG: degree-based grouping (Faldu et al., IISWC'19).
///
/// Vertices are partitioned into logarithmic degree buckets anchored at
/// the mean in-degree; buckets are laid out from the highest degree range
/// down, and vertices **keep their original relative order inside each
/// bucket** — preserving whatever locality the original order had, unlike
/// DEGSORT's full reshuffle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dbg {
    /// Number of buckets (the reference implementation uses 8).
    pub buckets: u32,
}

impl Default for Dbg {
    fn default() -> Self {
        Dbg { buckets: 8 }
    }
}

impl Dbg {
    /// Bucket index for a degree given the mean: bucket 0 collects
    /// `deg >= mean * 2^(buckets-2)`, the last bucket `deg < mean / 2`.
    fn bucket_of(&self, degree: u32, mean: f64) -> u32 {
        // Thresholds (buckets = 8): [32m, 16m, 8m, 4m, 2m, m, m/2).
        let b = self.buckets;
        for k in 0..(b - 1) {
            let exp = i32::from(b as u16) - 3 - k as i32; // 5,4,...,-1 for b=8
            let threshold = mean * f64::powi(2.0, exp);
            if f64::from(degree) >= threshold {
                return k;
            }
        }
        b - 1
    }
}

impl Reordering for Dbg {
    fn name(&self) -> &str {
        "DBG"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<Permutation, SparseError> {
        require_square(a)?;
        if self.buckets < 2 {
            return Err(SparseError::DimensionMismatch {
                expected: "at least 2 buckets".to_string(),
                found: format!("{} buckets", self.buckets),
            });
        }
        let degrees = a.in_degrees();
        let mean = if a.n_rows() == 0 {
            0.0
        } else {
            a.nnz() as f64 / f64::from(a.n_rows())
        };
        let mut order: Vec<u32> = Vec::with_capacity(a.n_rows() as usize);
        for bucket in 0..self.buckets {
            // Scanning vertices in original order per bucket keeps the
            // within-bucket order stable.
            order.extend(
                (0..a.n_rows()).filter(|&v| self.bucket_of(degrees[v as usize], mean) == bucket),
            );
        }
        Permutation::from_order(&order)
    }
}

/// Classifies vertices as hubs: in-degree strictly greater than the mean
/// in-degree ("typically defined as nodes with degree greater than the
/// average degree of the graph", §VI-A).
#[must_use]
pub fn hub_mask(a: &CsrMatrix) -> Vec<bool> {
    let degrees = a.in_degrees();
    let mean = if a.n_rows() == 0 {
        0.0
    } else {
        a.nnz() as f64 / f64::from(a.n_rows())
    };
    degrees.iter().map(|&d| f64::from(d) > mean).collect()
}

/// HUBSORT: hubs first in decreasing degree order, non-hubs after in their
/// original relative order (Zhang et al. / frequency-based clustering
/// family, \[43\]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HubSort;

impl Reordering for HubSort {
    fn name(&self) -> &str {
        "HUBSORT"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<Permutation, SparseError> {
        require_square(a)?;
        let degrees = a.in_degrees();
        let hubs = hub_mask(a);
        let mut hub_ids: Vec<u32> = (0..a.n_rows()).filter(|&v| hubs[v as usize]).collect();
        hub_ids.sort_by_key(|&v| std::cmp::Reverse(degrees[v as usize]));
        let mut order = hub_ids;
        order.extend((0..a.n_rows()).filter(|&v| !hubs[v as usize]));
        Permutation::from_order(&order)
    }
}

/// HUBGROUP: hubs first **keeping their original relative order**, then
/// non-hubs, also in original order — the lighter-weight cousin of
/// HUBSORT that preserves pre-existing locality among the hubs (the
/// property RABBIT++ relies on in §VI-A).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HubGroup;

impl Reordering for HubGroup {
    fn name(&self) -> &str {
        "HUBGROUP"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<Permutation, SparseError> {
        require_square(a)?;
        let hubs = hub_mask(a);
        let mut order: Vec<u32> = (0..a.n_rows()).filter(|&v| hubs[v as usize]).collect();
        order.extend((0..a.n_rows()).filter(|&v| !hubs[v as usize]));
        Permutation::from_order(&order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_sparse::CooMatrix;

    /// Star with hub at id 3 plus a 2-path, so degrees are distinguishable.
    fn star_graph() -> CsrMatrix {
        let mut entries = Vec::new();
        for v in [0u32, 1, 2, 4, 5] {
            entries.push((3, v, 1.0));
            entries.push((v, 3, 1.0));
        }
        entries.push((0, 1, 1.0));
        entries.push((1, 0, 1.0));
        CsrMatrix::try_from(CooMatrix::from_entries(6, 6, entries).unwrap()).unwrap()
    }

    #[test]
    fn original_is_identity() {
        let p = Original.reorder(&star_graph()).unwrap();
        assert!(p.is_identity());
    }

    #[test]
    fn random_is_deterministic_per_seed_and_unbiased_length() {
        let g = star_graph();
        let p1 = RandomOrder::new(5).reorder(&g).unwrap();
        let p2 = RandomOrder::new(5).reorder(&g).unwrap();
        let p3 = RandomOrder::new(6).reorder(&g).unwrap();
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        assert_eq!(p1.len(), 6);
    }

    #[test]
    fn degsort_puts_hub_first() {
        let g = star_graph();
        let p = DegSort.reorder(&g).unwrap();
        assert_eq!(p.new_of(3), 0, "hub (degree 5) gets new id 0");
        // Vertices 0 and 1 (degree 2) come next, stable in original order.
        assert_eq!(p.new_of(0), 1);
        assert_eq!(p.new_of(1), 2);
    }

    #[test]
    fn degsort_is_stable_for_ties() {
        let g = star_graph();
        let p = DegSort.reorder(&g).unwrap();
        // 2, 4, 5 all have degree 1 and must stay in relative order.
        assert!(p.new_of(2) < p.new_of(4));
        assert!(p.new_of(4) < p.new_of(5));
    }

    #[test]
    fn dbg_orders_buckets_by_decreasing_degree_range() {
        let g = star_graph();
        let p = Dbg::default().reorder(&g).unwrap();
        // Hub is in the highest-degree bucket -> first.
        assert_eq!(p.new_of(3), 0);
        // Remaining vertices keep original relative order within buckets.
        assert!(p.new_of(0) < p.new_of(1));
        assert!(p.new_of(2) < p.new_of(4));
    }

    #[test]
    fn dbg_rejects_degenerate_bucket_count() {
        assert!(Dbg { buckets: 1 }.reorder(&star_graph()).is_err());
    }

    #[test]
    fn hub_mask_flags_only_above_mean() {
        let g = star_graph();
        // nnz = 12, n = 6, mean = 2; hub iff degree > 2: only vertex 3 (5).
        let mask = hub_mask(&g);
        assert_eq!(mask, vec![false, false, false, true, false, false]);
    }

    #[test]
    fn hubsort_and_hubgroup_put_hubs_first() {
        let g = star_graph();
        for technique in [&HubSort as &dyn Reordering, &HubGroup] {
            let p = technique.reorder(&g).unwrap();
            assert_eq!(p.new_of(3), 0, "{}", technique.name());
            // Non-hubs keep original relative order.
            assert!(p.new_of(0) < p.new_of(1));
            assert!(p.new_of(1) < p.new_of(2));
        }
    }

    #[test]
    fn rectangular_matrices_are_rejected() {
        let rect = CsrMatrix::new(1, 2, vec![0, 1], vec![1], vec![1.0]).unwrap();
        for technique in [
            &Original as &dyn Reordering,
            &RandomOrder::new(0),
            &DegSort,
            &Dbg::default(),
            &HubSort,
            &HubGroup,
        ] {
            assert!(technique.reorder(&rect).is_err(), "{}", technique.name());
        }
    }

    #[test]
    fn empty_matrix_is_fine() {
        let empty = CsrMatrix::empty(0);
        assert!(DegSort.reorder(&empty).unwrap().is_empty());
        assert!(Dbg::default().reorder(&empty).unwrap().is_empty());
    }
}
