//! Cross-matrix aggregation helpers used by the paper's tables: insularity
//! splits (ALL / INS < 0.95 / INS ≥ 0.95) and ratio means.

use commorder_reorder::quality;
use commorder_reorder::Rabbit;
use commorder_sparse::{CsrMatrix, SparseError};

/// The paper's insularity threshold separating "RABBIT already near
/// ideal" from "headroom remains" (§V-A, Tables II/IV).
pub const INSULARITY_THRESHOLD: f64 = 0.95;

/// Mean of per-matrix ratios, arithmetic (the paper reports arithmetic
/// means of normalized values). `None` when empty.
#[must_use]
pub fn arith_mean_ratio(ratios: &[f64]) -> Option<f64> {
    commorder_sparse::stats::arithmetic_mean(ratios)
}

/// Geometric mean of per-matrix ratios — more robust to outliers;
/// reported alongside arithmetic means in our tables. `None` when empty
/// or non-positive.
#[must_use]
pub fn geo_mean_ratio(ratios: &[f64]) -> Option<f64> {
    commorder_sparse::stats::geometric_mean(ratios)
}

/// A value bucketed by the matrix's RABBIT insularity, for the
/// three-column summaries of Tables II and IV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsularitySplit {
    /// Mean over all matrices.
    pub all: f64,
    /// Mean over matrices with insularity < 0.95.
    pub low: f64,
    /// Mean over matrices with insularity ≥ 0.95.
    pub high: f64,
}

impl InsularitySplit {
    /// Buckets `(insularity, value)` pairs and takes arithmetic means.
    /// Empty buckets yield `NaN` (rendered as `-` by the report layer).
    #[must_use]
    pub fn from_pairs(pairs: &[(f64, f64)]) -> InsularitySplit {
        let mean = |it: Vec<f64>| arith_mean_ratio(&it).unwrap_or(f64::NAN);
        InsularitySplit {
            all: mean(pairs.iter().map(|&(_, v)| v).collect()),
            low: mean(
                pairs
                    .iter()
                    .filter(|&&(i, _)| i < INSULARITY_THRESHOLD)
                    .map(|&(_, v)| v)
                    .collect(),
            ),
            high: mean(
                pairs
                    .iter()
                    .filter(|&&(i, _)| i >= INSULARITY_THRESHOLD)
                    .map(|&(_, v)| v)
                    .collect(),
            ),
        }
    }
}

/// Computes a matrix's insularity under RABBIT's detected communities —
/// the x-axis of Fig. 3 and the bucket key of Tables II/IV.
///
/// # Errors
///
/// Propagates detection errors (non-square input).
pub fn rabbit_insularity(matrix: &CsrMatrix) -> Result<f64, SparseError> {
    let result = Rabbit::new().run(matrix)?;
    quality::insularity(matrix, &result.assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_synth::generators::PlantedPartition;

    #[test]
    fn split_buckets_correctly() {
        let pairs = [(0.99, 1.0), (0.98, 2.0), (0.5, 10.0), (0.9, 20.0)];
        let s = InsularitySplit::from_pairs(&pairs);
        assert!((s.all - 8.25).abs() < 1e-12);
        assert!((s.low - 15.0).abs() < 1e-12);
        assert!((s.high - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_bucket_is_nan() {
        let s = InsularitySplit::from_pairs(&[(0.99, 1.0)]);
        assert!(s.low.is_nan());
        assert!((s.high - 1.0).abs() < 1e-12);
    }

    #[test]
    fn means() {
        assert_eq!(arith_mean_ratio(&[]), None);
        assert!((arith_mean_ratio(&[1.0, 3.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!((geo_mean_ratio(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rabbit_insularity_high_for_clean_communities() {
        let g = PlantedPartition::uniform(1024, 16, 10.0, 0.02)
            .generate(61)
            .unwrap();
        let ins = rabbit_insularity(&g).unwrap();
        assert!(ins > 0.9, "insularity = {ins}");
    }
}
