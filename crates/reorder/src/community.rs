//! Community detection by incremental modularity-maximizing aggregation —
//! the algorithmic core of RABBIT (Arai et al., IPDPS'16; Newman–Girvan
//! modularity \[34\]).
//!
//! Vertices are visited in increasing-degree order; each vertex merges
//! into the neighbouring aggregate with the largest positive modularity
//! gain. Merges are recorded in a [`Dendrogram`], so the hierarchy of
//! communities ("people organized into cliques ... and, within each
//! group, sub-groups", §V-A) is preserved: a DFS of the dendrogram yields
//! an ordering in which every community *and every sub-community* is a
//! contiguous ID range. Additional sweeps over the surviving aggregates
//! (Louvain-style) continue until no merge improves modularity.

use std::collections::HashMap;

use commorder_exec::Engine;
use commorder_obs as obs;
use commorder_sparse::{ops, CsrMatrix, SparseError};

const NONE: u32 = u32::MAX;

/// Merge forest produced by community detection.
///
/// Every original vertex is a node; a merge of `v` into `u` makes `v` a
/// child of `u`. The roots that survive are the detected top-level
/// communities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dendrogram {
    parent: Vec<u32>,
    children: Vec<Vec<u32>>,
    roots: Vec<u32>,
}

impl Dendrogram {
    /// Number of original vertices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when there are no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The surviving top-level aggregates (one per detected community),
    /// in ascending vertex-ID order.
    #[must_use]
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// Number of detected communities.
    #[must_use]
    pub fn community_count(&self) -> usize {
        self.roots.len()
    }

    /// Community ID per vertex, compacted to `0..community_count()` in
    /// root order.
    #[must_use]
    pub fn assignment(&self) -> Vec<u32> {
        let mut comm = vec![NONE; self.parent.len()];
        for (cid, &root) in self.roots.iter().enumerate() {
            // Iterative subtree walk.
            let mut stack = vec![root];
            while let Some(v) = stack.pop() {
                comm[v as usize] = cid as u32;
                stack.extend_from_slice(&self.children[v as usize]);
            }
        }
        debug_assert!(comm.iter().all(|&c| c != NONE));
        comm
    }

    /// Depth-first traversal: `order[k]` is the original vertex that
    /// receives new ID `k`. Each community — and, recursively, each
    /// sub-community absorbed during the hierarchy — occupies a
    /// contiguous range of new IDs.
    #[must_use]
    pub fn dfs_order(&self) -> Vec<u32> {
        let mut order = Vec::with_capacity(self.parent.len());
        for &root in &self.roots {
            self.dfs_into(root, &mut order);
        }
        debug_assert_eq!(order.len(), self.parent.len());
        order
    }

    /// [`Dendrogram::dfs_order`] with the per-root traversals fanned out
    /// over `engine`. Each root's subtree is independent, so chunking
    /// roots and concatenating the chunk orders in root order reproduces
    /// the serial traversal byte-for-byte at any thread count.
    #[must_use]
    pub fn dfs_order_with(&self, engine: &Engine) -> Vec<u32> {
        let chunks = crate::par::fixed_chunks(self.roots.len(), ROOTS_PER_CHUNK);
        if chunks.len() <= 1 {
            return self.dfs_order();
        }
        let segments: Vec<Vec<u32>> = engine.map(&chunks, |_, &(start, end)| {
            let mut order = Vec::new();
            for &root in &self.roots[start..end] {
                self.dfs_into(root, &mut order);
            }
            order
        });
        let mut order = Vec::with_capacity(self.parent.len());
        for segment in segments {
            order.extend_from_slice(&segment);
        }
        debug_assert_eq!(order.len(), self.parent.len());
        order
    }

    /// Appends the DFS of `root`'s subtree to `order`.
    fn dfs_into(&self, root: u32, order: &mut Vec<u32>) {
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            order.push(v);
            // Push children reversed so the earliest merge is visited
            // first (closest community member, deepest hierarchy).
            stack.extend(self.children[v as usize].iter().rev().copied());
        }
    }

    /// Depth of every vertex in the merge forest (roots are depth 0) —
    /// the paper's "hierarchical community" nesting level per vertex.
    #[must_use]
    pub fn depths(&self) -> Vec<u32> {
        let mut depth = vec![0u32; self.parent.len()];
        for &root in &self.roots {
            let mut stack = vec![(root, 0u32)];
            while let Some((v, d)) = stack.pop() {
                depth[v as usize] = d;
                stack.extend(
                    self.children[v as usize]
                        .iter()
                        .map(|&child| (child, d + 1)),
                );
            }
        }
        depth
    }

    /// Maximum nesting depth of the hierarchy (0 for singleton forests).
    #[must_use]
    pub fn max_depth(&self) -> u32 {
        self.depths().into_iter().max().unwrap_or(0)
    }

    /// Sizes of the detected communities (vertex counts), in root order.
    #[must_use]
    pub fn community_sizes(&self) -> Vec<u32> {
        let mut sizes = vec![0u32; self.roots.len()];
        for &c in &self.assignment() {
            sizes[c as usize] += 1;
        }
        sizes
    }
}

/// How [`detect_with`] splits the graph into independently aggregated
/// shards before modularity aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// Shard by connected component. Merges never cross a component
    /// boundary and the only global coupling in the gain formula is the
    /// constant `total_m`, so per-component aggregation reproduces the
    /// global sweep **byte-for-byte** — this is the default, and the
    /// serial output is unchanged from pre-sharding releases.
    #[default]
    Connectivity,
    /// Pre-shard with synchronous (Jacobi) label propagation, then
    /// aggregate each label class independently, ignoring cross-shard
    /// edges as merge candidates (they still count toward vertex
    /// strength and `total_m`). The output differs from the global
    /// sweep but is deterministic and thread-count-invariant — this is
    /// the policy that parallelizes single-component graphs (social
    /// networks) at the mega corpus tier.
    LabelProp {
        /// Maximum propagation rounds (each round is one synchronous
        /// update of every vertex; the loop exits early on fixpoint).
        rounds: u32,
    },
}

/// Configuration for [`detect`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionConfig {
    /// Resolution parameter γ of the modularity gain (1.0 = classic
    /// Newman–Girvan; larger values favour smaller communities).
    pub resolution: f64,
    /// Maximum number of aggregation sweeps (the first sweep is the
    /// RABBIT incremental pass; further sweeps merge surviving
    /// aggregates Louvain-style until quiescent).
    pub max_passes: u32,
    /// How the graph is split into independently aggregated shards.
    pub shard: ShardPolicy,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        DetectionConfig {
            resolution: 1.0,
            max_passes: 16,
            shard: ShardPolicy::Connectivity,
        }
    }
}

/// Runs community detection on the undirected view of `a`.
///
/// Self-loops are ignored; directed inputs are symmetrized. Edge values
/// are used as weights (pattern matrices weigh every edge 1.0).
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a` is not square.
pub fn detect(a: &CsrMatrix, config: DetectionConfig) -> Result<Dendrogram, SparseError> {
    detect_with(a, config, &Engine::serial())
}

/// [`detect`] with shard aggregation fanned out over `engine`.
///
/// The graph is split into shards per [`DetectionConfig::shard`]; each
/// shard is aggregated independently (one [`Engine::map`] job per shard
/// when the engine is parallel and more than one shard exists) and the
/// per-shard merge logs are replayed into one dendrogram. The result is
/// a pure function of `(a, config)` — never of the thread count: shard
/// jobs share only immutable state, and the merge replay consumes shard
/// outcomes in deterministic shard order.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a` is not square.
pub fn detect_with(
    a: &CsrMatrix,
    config: DetectionConfig,
    engine: &Engine,
) -> Result<Dendrogram, SparseError> {
    let _span = obs::span!("community.detect");
    let sym = ops::remove_self_loops(&ops::symmetrize(a)?);
    let n = sym.n_rows() as usize;
    let mut parent = vec![NONE; n];
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    if n == 0 {
        return Ok(Dendrogram {
            parent,
            children,
            roots: Vec::new(),
        });
    }

    // `strength[v]` is the summed weight of edges incident to v (all of
    // them — cross-shard edges included); `total_m` the summed weight of
    // all edges (each undirected edge once). Both are global under every
    // shard policy, which is what keeps Connectivity sharding exact.
    let strength: Vec<f64> = (0..sym.n_rows())
        .map(|v| {
            let (_, vals) = sym.row(v);
            vals.iter().map(|&w| f64::from(w)).sum::<f64>()
        })
        .collect();
    let total_m: f64 = strength.iter().sum::<f64>() / 2.0;
    if total_m == 0.0 {
        // Edgeless graph: every vertex is its own community.
        return Ok(Dendrogram {
            parent,
            children,
            roots: (0..n as u32).collect(),
        });
    }

    let shards = {
        let _shard_span = obs::span!("community.islands");
        shard_members(&sym, config.shard, engine)?
    };
    obs::counter!("reorder.community.shards", shards.len() as u64);

    // Branch on the shard count alone (it is a pure function of the
    // matrix under both policies), so the span layout — and therefore a
    // folded-flamegraph export — is identical at every thread count.
    let outcomes: Vec<Vec<(u32, u32)>> = if shards.len() > 1 {
        engine.map(&shards, |_, members| {
            let _agg_span = obs::span!("community.shard");
            aggregate_shard(&sym, members, &strength, total_m, &config)
        })
    } else {
        shards
            .iter()
            .map(|members| aggregate_shard(&sym, members, &strength, total_m, &config))
            .collect()
    };

    // Replay the merge logs. Merges are shard-local, so replaying each
    // shard's chronological log reproduces exactly the parent links and
    // `children` push order of an interleaved global sweep.
    for merges in &outcomes {
        for &(v, u) in merges {
            parent[v as usize] = u;
            children[u as usize].push(v);
        }
    }

    let mut roots: Vec<u32> = (0..n as u32)
        .filter(|&v| parent[v as usize] == NONE)
        .collect();
    roots.sort_unstable();
    Ok(Dendrogram {
        parent,
        children,
        roots,
    })
}

/// Splits the vertex set into shards per `policy` and returns the member
/// lists, each ascending, in deterministic first-occurrence order.
fn shard_members(
    sym: &CsrMatrix,
    policy: ShardPolicy,
    engine: &Engine,
) -> Result<Vec<Vec<u32>>, SparseError> {
    let n = sym.n_rows();
    let labels: Vec<u32> = match policy {
        ShardPolicy::Connectivity => ops::connected_components(sym)?.0,
        ShardPolicy::LabelProp { rounds } => labelprop_labels(sym, rounds, engine),
    };
    let mut shard_of_label = vec![NONE; n as usize];
    let mut shards: Vec<Vec<u32>> = Vec::new();
    for v in 0..n {
        let label = labels[v as usize] as usize;
        if shard_of_label[label] == NONE {
            shard_of_label[label] = shards.len() as u32;
            shards.push(Vec::new());
        }
        shards[shard_of_label[label] as usize].push(v);
    }
    Ok(shards)
}

/// Synchronous (Jacobi) label propagation: every vertex simultaneously
/// adopts the most frequent label among its neighbours (ties to the
/// smallest label), for up to `rounds` rounds or until fixpoint. Each
/// round is a pure function of the previous label vector, computed in
/// fixed vertex-range chunks, so the result is identical at any thread
/// count.
fn labelprop_labels(sym: &CsrMatrix, rounds: u32, engine: &Engine) -> Vec<u32> {
    let n = sym.n_rows() as usize;
    let mut labels: Vec<u32> = (0..n as u32).collect();
    if n == 0 {
        return labels;
    }
    let chunks = crate::par::fixed_chunks_u32(n, VERTICES_PER_CHUNK);
    for _ in 0..rounds {
        let sweep = |&(start, end): &(u32, u32)| -> Vec<u32> {
            let mut out = Vec::with_capacity((end - start) as usize);
            let mut freq: Vec<u32> = Vec::new();
            for v in start..end {
                let (cols, _) = sym.row(v);
                if cols.is_empty() {
                    out.push(labels[v as usize]);
                    continue;
                }
                freq.clear();
                freq.extend(cols.iter().map(|&c| labels[c as usize]));
                freq.sort_unstable();
                let mut best = freq[0];
                let mut best_len = 0usize;
                let mut i = 0usize;
                while i < freq.len() {
                    let run = freq[i..].iter().take_while(|&&x| x == freq[i]).count();
                    if run > best_len {
                        best_len = run;
                        best = freq[i];
                    }
                    i += run;
                }
                out.push(best);
            }
            out
        };
        let segments: Vec<Vec<u32>> = if chunks.len() > 1 {
            engine.map(&chunks, |_, range| sweep(range))
        } else {
            chunks.iter().map(sweep).collect()
        };
        let mut next = Vec::with_capacity(n);
        for segment in segments {
            next.extend_from_slice(&segment);
        }
        if next == labels {
            break;
        }
        labels = next;
    }
    labels
}

/// Modularity aggregation restricted to one shard: the serial RABBIT
/// sweep (increasing-strength visit order, best-positive-gain merge,
/// smallest-ID tie-break, Louvain-style re-sweeps until quiescent) run
/// over `members` only. Cross-shard neighbours are not merge candidates;
/// under [`ShardPolicy::Connectivity`] none exist, which makes this
/// bitwise-equal to the historical global sweep. Returns the merge log
/// `(child, parent)` in chronological order.
fn aggregate_shard(
    sym: &CsrMatrix,
    members: &[u32],
    global_strength: &[f64],
    total_m: f64,
    config: &DetectionConfig,
) -> Vec<(u32, u32)> {
    let k = members.len();
    let mut merges: Vec<(u32, u32)> = Vec::new();
    if k <= 1 {
        return merges;
    }
    // Local (dense 0..k) mirror of the shard. `members` is ascending, so
    // local index order is global vertex-ID order restricted to the
    // shard — the tie-break stays faithful.
    let local_of: HashMap<u32, u32> = members
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let mut strength: Vec<f64> = members
        .iter()
        .map(|&v| global_strength[v as usize])
        .collect();
    // Lazily-consolidated adjacency per live aggregate (local indices).
    let mut adj: Vec<HashMap<u32, f64>> = members
        .iter()
        .map(|&v| {
            let (cols, vals) = sym.row(v);
            cols.iter()
                .zip(vals)
                .filter_map(|(&c, &w)| local_of.get(&c).map(|&l| (l, f64::from(w))))
                .collect()
        })
        .collect();

    // Union-find "top" pointers: maps any vertex to its live aggregate.
    let mut top: Vec<u32> = (0..k as u32).collect();
    fn find(top: &mut [u32], v: u32) -> u32 {
        let mut root = v;
        while top[root as usize] != root {
            root = top[root as usize];
        }
        // Path compression.
        let mut cur = v;
        while top[cur as usize] != root {
            let next = top[cur as usize];
            top[cur as usize] = root;
            cur = next;
        }
        root
    }

    let mut alive: Vec<u32> = (0..k as u32).collect();
    let two_m_sq = 2.0 * total_m * total_m;
    for pass in 0..config.max_passes {
        let _pass_span = obs::span!("community.pass", "pass={pass}");
        let mut pass_merges = 0u64;
        // Sweep live aggregates in increasing-strength order (degree order
        // on the first pass — the RABBIT visit order).
        alive.sort_by(|&x, &y| {
            strength[x as usize]
                .partial_cmp(&strength[y as usize])
                .expect("strengths are finite")
                .then(x.cmp(&y))
        });
        let mut merged_any = false;
        let mut next_alive: Vec<u32> = Vec::with_capacity(alive.len());
        for &v in &alive {
            if top[v as usize] != v {
                continue; // absorbed earlier this pass
            }
            // Consolidate v's adjacency through the union-find.
            let old = std::mem::take(&mut adj[v as usize]);
            let mut merged: HashMap<u32, f64> = HashMap::with_capacity(old.len());
            for (nbr, w) in old {
                let r = find(&mut top, nbr);
                if r != v {
                    *merged.entry(r).or_insert(0.0) += w;
                }
            }
            adj[v as usize] = merged;
            // Best-gain neighbour. Ties break to the smallest vertex ID so
            // the result is independent of HashMap iteration order.
            let mut best: Option<(u32, f64)> = None;
            for (&u, &w_vu) in &adj[v as usize] {
                let gain = w_vu / total_m
                    - config.resolution * strength[v as usize] * strength[u as usize] / two_m_sq;
                let better = match best {
                    None => gain > 0.0,
                    Some((bu, bg)) => gain > bg || (gain == bg && u < bu),
                };
                if gain > 0.0 && better {
                    best = Some((u, gain));
                }
            }
            match best {
                Some((u, _)) => {
                    // Merge v into u.
                    let v_adj = std::mem::take(&mut adj[v as usize]);
                    for (nbr, w) in v_adj {
                        if nbr != u {
                            *adj[u as usize].entry(nbr).or_insert(0.0) += w;
                        }
                    }
                    adj[u as usize].remove(&v);
                    strength[u as usize] += strength[v as usize];
                    top[v as usize] = u;
                    merges.push((members[v as usize], members[u as usize]));
                    merged_any = true;
                    pass_merges += 1;
                }
                None => next_alive.push(v),
            }
        }
        alive = next_alive;
        obs::counter!("reorder.community.passes", 1);
        obs::counter!("reorder.community.merges", pass_merges);
        if !merged_any {
            break;
        }
    }
    merges
}

/// Minimum vertices per label-propagation sweep chunk: below this the
/// sweep is cheaper than a dispatch, and the single chunk stays inline.
const VERTICES_PER_CHUNK: usize = 4096;

/// Minimum dendrogram roots per DFS-flattening chunk.
const ROOTS_PER_CHUNK: usize = 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_sparse::CooMatrix;
    use commorder_synth::generators::PlantedPartition;

    /// Three 5-cliques linked in a chain by single inter-community edges —
    /// a scaled-up Fig.-1-style example with unambiguous communities.
    pub(crate) fn three_cliques() -> CsrMatrix {
        let mut entries = Vec::new();
        for block in 0..3u32 {
            let base = block * 5;
            for i in 0..5 {
                for j in (i + 1)..5 {
                    entries.push((base + i, base + j, 1.0));
                    entries.push((base + j, base + i, 1.0));
                }
            }
        }
        for &(u, v) in &[(4u32, 5u32), (9, 10)] {
            entries.push((u, v, 1.0));
            entries.push((v, u, 1.0));
        }
        CsrMatrix::try_from(CooMatrix::from_entries(15, 15, entries).unwrap()).unwrap()
    }

    #[test]
    fn detects_the_three_cliques() {
        let g = three_cliques();
        let d = detect(&g, DetectionConfig::default()).unwrap();
        let comm = d.assignment();
        for block in 0..3u32 {
            let base = (block * 5) as usize;
            for i in 1..5 {
                assert_eq!(comm[base], comm[base + i], "clique {block} split apart");
            }
        }
        assert_eq!(d.community_count(), 3, "cliques collapsed or fragmented");
    }

    #[test]
    fn dfs_order_makes_communities_contiguous() {
        let g = three_cliques();
        let d = detect(&g, DetectionConfig::default()).unwrap();
        let comm = d.assignment();
        let order = d.dfs_order();
        // Scanning the order, each community id must appear as one run.
        let mut seen = std::collections::HashSet::new();
        let mut prev = NONE;
        for &v in &order {
            let c = comm[v as usize];
            if c != prev {
                assert!(seen.insert(c), "community {c} split into multiple runs");
                prev = c;
            }
        }
    }

    #[test]
    fn dfs_order_is_a_permutation() {
        let g = three_cliques();
        let d = detect(&g, DetectionConfig::default()).unwrap();
        let mut order = d.dfs_order();
        order.sort_unstable();
        assert_eq!(order, (0..15).collect::<Vec<_>>());
    }

    #[test]
    fn planted_partition_recovers_most_blocks() {
        let g = PlantedPartition::uniform(800, 16, 10.0, 0.02)
            .generate(21)
            .unwrap();
        let d = detect(&g, DetectionConfig::default()).unwrap();
        let comm = d.assignment();
        // Measure agreement: fraction of planted-block pairs of adjacent
        // vertices that land in the same detected community.
        let block = |v: u32| v / 50;
        let mut same = 0usize;
        let mut total = 0usize;
        for (r, c, _) in g.iter() {
            if block(r) == block(c) {
                total += 1;
                if comm[r as usize] == comm[c as usize] {
                    same += 1;
                }
            }
        }
        let agree = same as f64 / total as f64;
        assert!(agree > 0.8, "intra-block agreement = {agree}");
    }

    #[test]
    fn edgeless_graph_yields_singletons() {
        let g = CsrMatrix::empty(5);
        let d = detect(&g, DetectionConfig::default()).unwrap();
        assert_eq!(d.community_count(), 5);
        assert_eq!(d.assignment(), vec![0, 1, 2, 3, 4]);
        assert_eq!(d.community_sizes(), vec![1; 5]);
    }

    #[test]
    fn empty_graph() {
        let d = detect(&CsrMatrix::empty(0), DetectionConfig::default()).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.community_count(), 0);
        assert!(d.dfs_order().is_empty());
    }

    #[test]
    fn higher_resolution_yields_more_communities() {
        let g = PlantedPartition::uniform(600, 12, 8.0, 0.1)
            .generate(22)
            .unwrap();
        let coarse = detect(
            &g,
            DetectionConfig {
                resolution: 0.5,
                ..DetectionConfig::default()
            },
        )
        .unwrap();
        let fine = detect(
            &g,
            DetectionConfig {
                resolution: 4.0,
                ..DetectionConfig::default()
            },
        )
        .unwrap();
        assert!(
            fine.community_count() >= coarse.community_count(),
            "fine {} vs coarse {}",
            fine.community_count(),
            coarse.community_count()
        );
    }

    #[test]
    fn depths_reflect_merge_nesting() {
        let g = three_cliques();
        let d = detect(&g, DetectionConfig::default()).unwrap();
        let depths = d.depths();
        // Roots are depth 0; every clique has at least one nested merge.
        for &root in d.roots() {
            assert_eq!(depths[root as usize], 0);
        }
        assert!(d.max_depth() >= 1, "cliques must nest at least one level");
        assert!(d.max_depth() < 15, "depth bounded by n");
        // Exactly one depth-0 vertex per community.
        let zero_count = depths.iter().filter(|&&x| x == 0).count();
        assert_eq!(zero_count, d.community_count());
    }

    #[test]
    fn community_sizes_sum_to_n() {
        let g = three_cliques();
        let d = detect(&g, DetectionConfig::default()).unwrap();
        let total: u32 = d.community_sizes().iter().sum();
        assert_eq!(total, 15);
    }

    #[test]
    fn directed_input_is_symmetrized() {
        // Directed triangle: 0->1->2->0.
        let g = CsrMatrix::try_from(
            CooMatrix::from_entries(3, 3, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]).unwrap(),
        )
        .unwrap();
        let d = detect(&g, DetectionConfig::default()).unwrap();
        let comm = d.assignment();
        assert_eq!(comm[0], comm[1]);
        assert_eq!(comm[1], comm[2]);
    }
}
