//! Graph-analytics kernels: PageRank and level-synchronous BFS.
//!
//! The paper frames matrix reordering as an optimization for "irregular
//! memory access workloads such as graph analytics and sparse linear
//! algebra kernels" — and RABBIT itself comes from the graph-processing
//! literature. These reference kernels (plus their traces in
//! `commorder-cachesim`) let the workspace demonstrate the graph side of
//! that claim.

use crate::{CsrMatrix, SparseError};

/// Distance marker for unreachable vertices in [`bfs_levels`].
pub const UNREACHED: u32 = u32::MAX;

/// Pull-based PageRank power iteration:
/// `pr'[v] = (1-d)/n + d · Σ_{u ∈ in(v)} pr[u] / outdeg(u)`.
///
/// `a` is interpreted as an adjacency matrix with `a[u][v] != 0` meaning
/// an edge `u -> v`; the pull traversal therefore walks `aᵀ`'s rows,
/// which for the (symmetric) evaluation corpus equals `a`'s rows.
/// Dangling vertices (out-degree 0) redistribute uniformly.
///
/// Returns the rank vector after `iterations` rounds (sums to 1).
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a` is not square.
pub fn pagerank(a: &CsrMatrix, damping: f32, iterations: u32) -> Result<Vec<f32>, SparseError> {
    if !a.is_square() {
        return Err(SparseError::DimensionMismatch {
            expected: "square matrix".to_string(),
            found: format!("{} x {}", a.n_rows(), a.n_cols()),
        });
    }
    let n = a.n_rows() as usize;
    if n == 0 {
        return Ok(Vec::new());
    }
    let transpose = a.transpose();
    let out_degrees = a.out_degrees();
    let mut pr = vec![1.0 / n as f32; n];
    let mut next = vec![0f32; n];
    for _ in 0..iterations {
        // Dangling mass redistributes uniformly.
        let dangling: f32 = (0..n).filter(|&v| out_degrees[v] == 0).map(|v| pr[v]).sum();
        let base = (1.0 - damping) / n as f32 + damping * dangling / n as f32;
        for v in 0..a.n_rows() {
            let (in_neighbours, _) = transpose.row(v);
            let mut acc = 0f32;
            for &u in in_neighbours {
                acc += pr[u as usize] / out_degrees[u as usize] as f32;
            }
            next[v as usize] = base + damping * acc;
        }
        std::mem::swap(&mut pr, &mut next);
    }
    Ok(pr)
}

/// Level-synchronous BFS from `source`; returns the hop distance per
/// vertex ([`UNREACHED`] for vertices in other components).
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a` is not square, and
/// [`SparseError::IndexOutOfBounds`] if `source >= n`.
pub fn bfs_levels(a: &CsrMatrix, source: u32) -> Result<Vec<u32>, SparseError> {
    if !a.is_square() {
        return Err(SparseError::DimensionMismatch {
            expected: "square matrix".to_string(),
            found: format!("{} x {}", a.n_rows(), a.n_cols()),
        });
    }
    if source >= a.n_rows() {
        return Err(SparseError::IndexOutOfBounds {
            index: source,
            bound: a.n_rows(),
        });
    }
    let mut level = vec![UNREACHED; a.n_rows() as usize];
    level[source as usize] = 0;
    let mut frontier = vec![source];
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            let (neighbours, _) = a.row(u);
            for &v in neighbours {
                if level[v as usize] == UNREACHED {
                    level[v as usize] = depth;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    Ok(level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn ring(n: u32) -> CsrMatrix {
        let entries: Vec<_> = (0..n)
            .flat_map(|v| {
                let w = (v + 1) % n;
                [(v, w, 1.0), (w, v, 1.0)]
            })
            .collect();
        CsrMatrix::try_from(CooMatrix::from_entries(n, n, entries).unwrap()).unwrap()
    }

    #[test]
    fn pagerank_sums_to_one_and_is_uniform_on_regular_graphs() {
        let g = ring(16);
        let pr = pagerank(&g, 0.85, 20).unwrap();
        let sum: f32 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum = {sum}");
        for &p in &pr {
            assert!((p - 1.0 / 16.0).abs() < 1e-5, "non-uniform rank {p}");
        }
    }

    #[test]
    fn pagerank_ranks_hub_highest() {
        // Star: hub 0 receives from every leaf.
        let mut entries = Vec::new();
        for v in 1..10u32 {
            entries.push((0, v, 1.0));
            entries.push((v, 0, 1.0));
        }
        let g = CsrMatrix::try_from(CooMatrix::from_entries(10, 10, entries).unwrap()).unwrap();
        let pr = pagerank(&g, 0.85, 30).unwrap();
        for v in 1..10 {
            assert!(pr[0] > pr[v], "hub must outrank leaf {v}");
        }
    }

    #[test]
    fn pagerank_handles_dangling_vertices() {
        // 0 -> 1, 1 has no out edges.
        let g = CsrMatrix::new(2, 2, vec![0, 1, 1], vec![1], vec![1.0]).unwrap();
        let pr = pagerank(&g, 0.85, 50).unwrap();
        let sum: f32 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(pr[1] > pr[0], "sink should accumulate rank");
    }

    #[test]
    fn bfs_distances_on_a_ring() {
        let g = ring(8);
        let level = bfs_levels(&g, 0).unwrap();
        assert_eq!(level, vec![0, 1, 2, 3, 4, 3, 2, 1]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        // Edge 0-1 plus isolated 2.
        let g = CsrMatrix::try_from(
            CooMatrix::from_entries(3, 3, vec![(0, 1, 1.0), (1, 0, 1.0)]).unwrap(),
        )
        .unwrap();
        let level = bfs_levels(&g, 0).unwrap();
        assert_eq!(level, vec![0, 1, UNREACHED]);
    }

    #[test]
    fn bfs_rejects_bad_source() {
        assert!(bfs_levels(&ring(4), 9).is_err());
    }

    #[test]
    fn empty_graph() {
        assert!(pagerank(&CsrMatrix::empty(0), 0.85, 5).unwrap().is_empty());
    }
}
