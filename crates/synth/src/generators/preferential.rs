use commorder_sparse::{CsrMatrix, SparseError};

use crate::generators::undirected_csr;
use crate::rng::Rng;

/// Barabási–Albert preferential-attachment graph: vertices arrive one at a
/// time and attach `m` edges to existing vertices with probability
/// proportional to current degree.
///
/// Produces the scale-free degree distribution of citation/knowledge
/// graphs (\[4\] in the paper) with hubs that are *old* vertices — a
/// different skew shape than R-MAT (no planted quadrant structure), useful
/// for separating "skew hurts communities" from "R-MAT hurts communities".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarabasiAlbert {
    /// Number of vertices.
    pub n: u32,
    /// Edges attached by each arriving vertex.
    pub m: u32,
    /// When `true`, vertex IDs are shuffled after generation so arrival
    /// order (which is itself a decent ordering) does not leak into
    /// ORIGINAL.
    pub scramble_ids: bool,
}

impl BarabasiAlbert {
    /// Generates the graph.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the sparse layer.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `n <= m`.
    pub fn generate(&self, seed: u64) -> Result<CsrMatrix, SparseError> {
        assert!(self.m >= 1, "m must be >= 1");
        assert!(self.n > self.m, "n must exceed m");
        let mut rng = Rng::new(seed);
        // `targets` holds one entry per edge endpoint: sampling uniformly
        // from it is sampling proportional to degree.
        let mut targets: Vec<u32> = Vec::with_capacity(2 * self.n as usize * self.m as usize);
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(self.n as usize * self.m as usize);
        // Seed clique over the first m+1 vertices.
        for u in 0..=self.m {
            for v in (u + 1)..=self.m {
                edges.push((u, v));
                targets.push(u);
                targets.push(v);
            }
        }
        for u in (self.m + 1)..self.n {
            for _ in 0..self.m {
                let v = targets[rng.gen_range(targets.len() as u64) as usize];
                edges.push((u, v));
                targets.push(u);
                targets.push(v);
            }
        }
        if self.scramble_ids {
            let mut relabel: Vec<u32> = (0..self.n).collect();
            rng.shuffle(&mut relabel);
            for e in &mut edges {
                e.0 = relabel[e.0 as usize];
                e.1 = relabel[e.1 as usize];
            }
        }
        undirected_csr(self.n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_well_formed;
    use commorder_sparse::stats::{skew_top10, DegreeStats};

    #[test]
    fn produces_scale_free_skew() {
        let g = BarabasiAlbert {
            n: 3000,
            m: 4,
            scramble_ids: true,
        }
        .generate(1)
        .unwrap();
        assert_well_formed(&g);
        let stats = DegreeStats::from_degrees(&g.out_degrees());
        // Hubs far above the mean.
        assert!(f64::from(stats.max) > stats.mean * 8.0);
        assert!(skew_top10(&g) > 0.25);
    }

    #[test]
    fn every_vertex_attaches() {
        let g = BarabasiAlbert {
            n: 500,
            m: 3,
            scramble_ids: false,
        }
        .generate(2)
        .unwrap();
        // Minimum degree is m (arrivals) modulo duplicate-target collapse.
        let zero = g.out_degrees().iter().filter(|&&d| d == 0).count();
        assert_eq!(zero, 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = BarabasiAlbert {
            n: 400,
            m: 2,
            scramble_ids: true,
        };
        assert_eq!(cfg.generate(11).unwrap(), cfg.generate(11).unwrap());
        assert_ne!(cfg.generate(11).unwrap(), cfg.generate(12).unwrap());
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn rejects_n_not_above_m() {
        let _ = BarabasiAlbert {
            n: 3,
            m: 3,
            scramble_ids: false,
        }
        .generate(0);
    }
}
