use crate::{CsrMatrix, SparseError};

/// Padding marker for absent entries in ELL storage.
pub const ELL_PAD: u32 = u32::MAX;

/// A sparse matrix in ELLPACK (ELL) format.
///
/// Every row is padded to the length of the longest row (`width`), and
/// entries are stored **column-major** (`slot * n_rows + row`) so that
/// consecutive GPU threads processing consecutive rows access
/// consecutive memory — the classic GPU sparse format. The cost is
/// padding: for skewed matrices `width` can dwarf the average degree and
/// the padded footprint explodes, which is exactly why the format study
/// pairs it with reordering experiments.
///
/// # Example
///
/// ```
/// use commorder_sparse::{CsrMatrix, EllMatrix};
///
/// # fn main() -> Result<(), commorder_sparse::SparseError> {
/// let csr = CsrMatrix::new(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1.0, 2.0, 3.0])?;
/// let ell = EllMatrix::from_csr(&csr)?;
/// assert_eq!(ell.width(), 2);
/// assert_eq!(ell.padded_len(), 4); // 2 rows x width 2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EllMatrix {
    n_rows: u32,
    n_cols: u32,
    width: u32,
    /// Column indices, column-major, `ELL_PAD` marks padding.
    cols: Vec<u32>,
    /// Values, column-major, 0.0 in padded slots.
    values: Vec<f32>,
}

impl EllMatrix {
    /// Converts from CSR, padding every row to the maximum row length.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::TooLarge`] if the padded size
    /// (`n_rows * width`) exceeds `u32` indexing — the ELL failure mode
    /// for skewed matrices.
    pub fn from_csr(csr: &CsrMatrix) -> Result<Self, SparseError> {
        let width = (0..csr.n_rows())
            .map(|r| csr.row_degree(r))
            .max()
            .unwrap_or(0);
        let padded = u64::from(csr.n_rows()) * u64::from(width);
        if padded > u64::from(u32::MAX) {
            return Err(SparseError::TooLarge(format!(
                "ELL padding {} x {} exceeds u32 indexing",
                csr.n_rows(),
                width
            )));
        }
        let n = csr.n_rows() as usize;
        let mut cols = vec![ELL_PAD; padded as usize];
        let mut values = vec![0f32; padded as usize];
        for r in 0..csr.n_rows() {
            let (row_cols, row_vals) = csr.row(r);
            for (k, (&c, &v)) in row_cols.iter().zip(row_vals).enumerate() {
                cols[k * n + r as usize] = c;
                values[k * n + r as usize] = v;
            }
        }
        Ok(EllMatrix {
            n_rows: csr.n_rows(),
            n_cols: csr.n_cols(),
            width,
            cols,
            values,
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> u32 {
        self.n_rows
    }

    /// Number of columns.
    #[must_use]
    pub fn n_cols(&self) -> u32 {
        self.n_cols
    }

    /// Padded row width (maximum row length).
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Total padded slots (`n_rows * width`), the storage actually moved.
    #[must_use]
    pub fn padded_len(&self) -> usize {
        self.cols.len()
    }

    /// Padding overhead: padded slots / stored non-zeros (1.0 = no
    /// waste). Returns 1.0 for an empty matrix.
    #[must_use]
    pub fn padding_factor(&self, nnz: usize) -> f64 {
        if nnz == 0 {
            1.0
        } else {
            self.padded_len() as f64 / nnz as f64
        }
    }

    /// Column index at `(slot, row)` (`ELL_PAD` for padding).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= width` or `row >= n_rows`.
    #[must_use]
    pub fn col_at(&self, slot: u32, row: u32) -> u32 {
        assert!(slot < self.width && row < self.n_rows);
        self.cols[slot as usize * self.n_rows as usize + row as usize]
    }

    /// SpMV on the ELL storage: `y = A * x`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `x.len() != n_cols`.
    pub fn spmv(&self, x: &[f32]) -> Result<Vec<f32>, SparseError> {
        if x.len() != self.n_cols as usize {
            return Err(SparseError::DimensionMismatch {
                expected: format!("x.len() == n_cols == {}", self.n_cols),
                found: format!("x.len() == {}", x.len()),
            });
        }
        let n = self.n_rows as usize;
        let mut y = vec![0f32; n];
        for slot in 0..self.width as usize {
            let cols = &self.cols[slot * n..(slot + 1) * n];
            let vals = &self.values[slot * n..(slot + 1) * n];
            for ((acc, &c), &v) in y.iter_mut().zip(cols).zip(vals) {
                if c != ELL_PAD {
                    *acc += v * x[c as usize];
                }
            }
        }
        Ok(y)
    }
}

impl TryFrom<&CsrMatrix> for EllMatrix {
    type Error = SparseError;

    fn try_from(csr: &CsrMatrix) -> Result<Self, SparseError> {
        EllMatrix::from_csr(csr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::spmv_csr;

    fn sample() -> CsrMatrix {
        // Rows of length 2, 1, 3, 0.
        CsrMatrix::new(
            4,
            4,
            vec![0, 2, 3, 6, 6],
            vec![0, 2, 1, 0, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn from_csr_pads_to_max_row() {
        let ell = EllMatrix::from_csr(&sample()).unwrap();
        assert_eq!(ell.width(), 3);
        assert_eq!(ell.padded_len(), 12);
        assert!((ell.padding_factor(6) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn column_major_layout() {
        let ell = EllMatrix::from_csr(&sample()).unwrap();
        // Slot 0 holds each row's first entry.
        assert_eq!(ell.col_at(0, 0), 0);
        assert_eq!(ell.col_at(0, 1), 1);
        assert_eq!(ell.col_at(0, 2), 0);
        assert_eq!(ell.col_at(0, 3), ELL_PAD);
        // Slot 2 only row 2 has a third entry.
        assert_eq!(ell.col_at(2, 2), 3);
        assert_eq!(ell.col_at(2, 0), ELL_PAD);
    }

    #[test]
    fn spmv_matches_csr() {
        let csr = sample();
        let ell = EllMatrix::from_csr(&csr).unwrap();
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(ell.spmv(&x).unwrap(), spmv_csr(&csr, &x).unwrap());
    }

    #[test]
    fn spmv_rejects_bad_x() {
        let ell = EllMatrix::from_csr(&sample()).unwrap();
        assert!(ell.spmv(&[1.0]).is_err());
    }

    #[test]
    fn empty_matrix() {
        let ell = EllMatrix::from_csr(&CsrMatrix::empty(3)).unwrap();
        assert_eq!(ell.width(), 0);
        assert_eq!(ell.padded_len(), 0);
        assert_eq!(ell.spmv(&[0.0; 3]).unwrap(), vec![0.0; 3]);
        assert_eq!(ell.padding_factor(0), 1.0);
    }

    #[test]
    fn skewed_matrix_pads_badly() {
        // Star: hub row of degree 99, leaves of degree 1.
        let mut entries = Vec::new();
        for v in 1..100u32 {
            entries.push((0, v, 1.0));
            entries.push((v, 0, 1.0));
        }
        let csr = CsrMatrix::try_from(crate::CooMatrix::from_entries(100, 100, entries).unwrap())
            .unwrap();
        let ell = EllMatrix::from_csr(&csr).unwrap();
        assert_eq!(ell.width(), 99);
        // 100 rows x width 99 vs 198 nnz: ~50x padding waste.
        assert!(ell.padding_factor(csr.nnz()) > 40.0);
    }
}
