//! Address-space layout of the kernel operands.
//!
//! The trace generator places each array (CSR components, vectors, dense
//! matrices) in its own line-aligned region of a flat address space, so
//! distinct arrays never alias a cache line — matching a real allocator's
//! behaviour for multi-megabyte buffers.

use commorder_sparse::kernels::spgemm_profile;
use commorder_sparse::{traffic::Kernel, CsrMatrix, ELEM_BYTES};

/// Base addresses (bytes) of every operand region.
///
/// The SpGEMM regions (`b_row_offsets` … `c_values`) are zero-sized for
/// every other kernel and appended *after* `bins`, so the addresses the
/// dense-operand kernels emit — and therefore their cache fingerprints —
/// are unchanged by the two-operand extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayLayout {
    /// CSR `rowOffsets` (length `n + 1`).
    pub row_offsets: u64,
    /// CSR/COO column indices (`A.coords`, length `nnz`).
    pub coords: u64,
    /// Non-zero values (length `nnz`).
    pub values: u64,
    /// COO row indices (length `nnz`).
    pub coo_rows: u64,
    /// Dense input vector `X` (length `n`).
    pub x: u64,
    /// Dense output vector `Y` (length `n`).
    pub y: u64,
    /// Dense input matrix `B` (row-major `n x k`).
    pub b: u64,
    /// Dense output matrix `C` (row-major `n x k`).
    pub c: u64,
    /// Propagation-blocking bin storage (`2·nnz` elements: destination
    /// row + partial value per non-zero).
    pub bins: u64,
    /// SpGEMM second-operand CSR `rowOffsets` (length `n_rows(B) + 1`).
    /// The operands are modeled as distinct allocations even for
    /// self-multiply — the corpus default is `Aᵀ·A`-style, where the
    /// transposed left operand is materialized separately.
    pub b_row_offsets: u64,
    /// SpGEMM second-operand column indices (length `nnz(B)`).
    pub b_coords: u64,
    /// SpGEMM second-operand values (length `nnz(B)`).
    pub b_values: u64,
    /// SpGEMM dense accumulator (length `n_cols(B)` elements, reused
    /// across rows — Gustavson's scratch array).
    pub acc: u64,
    /// SpGEMM output column indices (length `nnz(C)`, streamed cursor).
    pub c_coords: u64,
    /// SpGEMM output values (length `nnz(C)`).
    pub c_values: u64,
    /// Exclusive end (bytes) of the operand address space: every valid
    /// access satisfies `addr + ELEM_BYTES <= end`.
    pub end: u64,
    /// Line size the layout was aligned to.
    pub line_bytes: u32,
}

impl ArrayLayout {
    /// Lays out the operands of `kernel` on an `a`-shaped problem (for
    /// the two-operand SpGEMM kernels, the self-multiply `B = A`).
    #[must_use]
    pub fn new(a: &CsrMatrix, kernel: Kernel, line_bytes: u32) -> Self {
        Self::for_pair(a, a, kernel, line_bytes)
    }

    /// Lays out the operands of `kernel` on an `(a, b)` operand pair.
    /// Non-SpGEMM kernels ignore `b`. For SpGEMM the output regions are
    /// sized by a symbolic Gustavson pass
    /// ([`commorder_sparse::kernels::spgemm_profile`]); a shape-mismatched
    /// pair gets zero-sized output regions (trace construction rejects
    /// the pair before any access is generated).
    #[must_use]
    pub fn for_pair(a: &CsrMatrix, b: &CsrMatrix, kernel: Kernel, line_bytes: u32) -> Self {
        let n = u64::from(a.n_rows());
        let nnz = a.nnz() as u64;
        let k = match kernel {
            Kernel::SpmmCsr { k } => u64::from(k),
            _ => 1,
        };
        let spgemm = if kernel.is_spgemm() {
            spgemm_profile(a, b).ok()
        } else {
            None
        };
        let line = u64::from(line_bytes);
        let align = |addr: u64| addr.div_ceil(line) * line;
        let mut cursor = 0u64;
        let mut region = |elems: u64| {
            let base = cursor;
            cursor = align(cursor + elems * ELEM_BYTES);
            base
        };
        // Tiled kernels carry one offsets array per tile.
        let row_offsets = region(kernel.tiles(n) * (n + 1));
        let coords = region(nnz);
        let values = region(nnz);
        let coo_rows = region(nnz);
        let x = region(n);
        let y = region(n);
        let b_dense = region(n * k);
        let c_dense = region(n * k);
        let bins = region(2 * nnz);
        // Two-operand SpGEMM regions (zero-sized for other kernels; a
        // zero-sized region does not advance the cursor, so `end` and
        // every address above are byte-identical to the one-operand
        // layout).
        let (b_n, b_nnz, acc_elems, c_nnz) = match spgemm {
            Some(p) => (
                u64::from(b.n_rows()) + 1,
                b.nnz() as u64,
                u64::from(b.n_cols()),
                p.result_nnz,
            ),
            None => (0, 0, 0, 0),
        };
        let b_row_offsets = region(b_n);
        let b_coords = region(b_nnz);
        let b_values = region(b_nnz);
        let acc = region(acc_elems);
        let c_coords = region(c_nnz);
        let c_values = region(c_nnz);
        ArrayLayout {
            row_offsets,
            coords,
            values,
            coo_rows,
            x,
            y,
            b: b_dense,
            c: c_dense,
            bins,
            b_row_offsets,
            b_coords,
            b_values,
            acc,
            c_coords,
            c_values,
            end: cursor,
            line_bytes,
        }
    }

    /// Byte address of element `i` of a region starting at `base`.
    #[must_use]
    pub fn elem(base: u64, i: u64) -> u64 {
        base + i * ELEM_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::new(3, 3, vec![0, 1, 2, 2], vec![1, 0], vec![1.0, 1.0]).unwrap()
    }

    #[test]
    fn regions_are_disjoint_and_line_aligned() {
        let l = ArrayLayout::new(&sample(), Kernel::SpmvCsr, 32);
        let bases = [
            l.row_offsets,
            l.coords,
            l.values,
            l.coo_rows,
            l.x,
            l.y,
            l.b,
            l.c,
            l.bins,
        ];
        for w in bases.windows(2) {
            assert!(w[0] < w[1], "regions must ascend: {bases:?}");
            assert_eq!(w[1] % 32, 0, "regions must be line aligned");
        }
    }

    #[test]
    fn spmm_reserves_k_columns() {
        let small = ArrayLayout::new(&sample(), Kernel::SpmmCsr { k: 4 }, 32);
        let big = ArrayLayout::new(&sample(), Kernel::SpmmCsr { k: 256 }, 32);
        assert!(big.c - big.b > small.c - small.b);
    }

    #[test]
    fn elem_addressing_is_4_bytes() {
        assert_eq!(ArrayLayout::elem(64, 3), 64 + 12);
    }

    #[test]
    fn end_bounds_every_region() {
        let a = sample();
        let l = ArrayLayout::new(&a, Kernel::SpmvCsr, 32);
        let nnz = a.nnz() as u64;
        assert_eq!(l.end % 32, 0, "end must be line aligned");
        assert!(ArrayLayout::elem(l.bins, 2 * nnz - 1) + ELEM_BYTES <= l.end);
        assert!(l.bins + 2 * nnz * ELEM_BYTES <= l.end);
    }

    #[test]
    fn spgemm_regions_are_zero_sized_for_dense_operand_kernels() {
        // Appending the two-operand regions must not move any existing
        // address: the dense-operand layouts (and hence their bench
        // fingerprints) stay byte-identical.
        let a = sample();
        for kernel in [
            Kernel::SpmvCsr,
            Kernel::SpmvCoo,
            Kernel::SpmmCsr { k: 4 },
            Kernel::SpmvBlocked { bins: 2 },
        ] {
            let l = ArrayLayout::new(&a, kernel, 32);
            assert_eq!(l.b_row_offsets, l.end, "{kernel:?}");
            assert_eq!(l.c_values, l.end, "{kernel:?}");
        }
    }

    #[test]
    fn spgemm_layout_reserves_operand_and_output_regions() {
        let a = sample();
        let l = ArrayLayout::new(&a, Kernel::SpGemmGustavson, 32);
        let bases = [
            l.row_offsets,
            l.coords,
            l.values,
            l.b_row_offsets,
            l.b_coords,
            l.b_values,
            l.acc,
            l.c_coords,
            l.c_values,
        ];
        for w in bases.windows(2) {
            assert!(w[0] < w[1], "spgemm regions must ascend: {bases:?}");
        }
        assert!(l.c_values < l.end);
        // Cluster-wise shares the exact same operand map.
        assert_eq!(l, ArrayLayout::new(&a, Kernel::SpGemmClusterWise, 32));
    }
}
