//! Validators for the sparse storage formats.
//!
//! The typed constructors in `commorder-sparse` already enforce these
//! invariants at build time; the validators here re-derive them from the
//! stored arrays so that (a) fixtures ingested from disk can be audited
//! *before* construction ([`check_csr_parts`]) and (b) golden tests can
//! assert that in-memory objects remain well formed after arbitrary
//! pipelines of conversions and permutations.

use commorder_sparse::{CooMatrix, CscMatrix, CsrMatrix, EllMatrix, SellMatrix, ELL_PAD};

use crate::codes;
use crate::diag::{Diagnostic, Location};

/// Audits raw CSR-shaped arrays (also used for CSC with rows/columns
/// exchanged): offsets length/start/monotonicity/last entry, index
/// bounds, per-row strict ordering, values length, and value finiteness.
///
/// `object` prefixes every location, e.g. `"csr"` yields findings at
/// `csr.row_offsets[i]`, `csr.col_indices[i]`, `csr.values[i]`.
#[must_use]
pub fn check_csr_parts(
    object: &str,
    n_rows: u64,
    n_cols: u64,
    row_offsets: &[u32],
    col_indices: &[u32],
    values: Option<&[f32]>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let offsets_obj = format!("{object}.row_offsets");
    let indices_obj = format!("{object}.col_indices");

    if row_offsets.len() as u64 != n_rows + 1 {
        out.push(Diagnostic::error(
            codes::OFFSETS_LENGTH,
            Location::whole(&offsets_obj),
            format!(
                "offsets length {} but n_rows + 1 = {}",
                row_offsets.len(),
                n_rows + 1
            ),
        ));
        // The remaining offset checks assume the documented shape.
        return out;
    }
    if let Some(&first) = row_offsets.first() {
        if first != 0 {
            out.push(Diagnostic::error(
                codes::OFFSETS_START,
                Location::at(&offsets_obj, 0),
                format!("first offset is {first}, must be 0"),
            ));
        }
    }
    let mut monotone = true;
    for (i, w) in row_offsets.windows(2).enumerate() {
        if w[1] < w[0] {
            monotone = false;
            out.push(Diagnostic::error(
                codes::OFFSETS_MONOTONE,
                Location::at(&offsets_obj, (i + 1) as u64),
                format!("offset {} follows larger offset {}", w[1], w[0]),
            ));
        }
    }
    if let Some(&last) = row_offsets.last() {
        if last as usize != col_indices.len() {
            out.push(Diagnostic::error(
                codes::OFFSETS_LAST,
                Location::at(&offsets_obj, (row_offsets.len() - 1) as u64),
                format!(
                    "last offset {last} but index array holds {} entries",
                    col_indices.len()
                ),
            ));
        }
    }
    if let Some(values) = values {
        if values.len() != col_indices.len() {
            out.push(Diagnostic::error(
                codes::VALUES_LENGTH,
                Location::whole(&format!("{object}.values")),
                format!(
                    "values length {} but index array holds {} entries",
                    values.len(),
                    col_indices.len()
                ),
            ));
        }
        for (i, v) in values.iter().enumerate() {
            if !v.is_finite() {
                out.push(Diagnostic::error(
                    codes::VALUE_NONFINITE,
                    Location::at(&format!("{object}.values"), i as u64),
                    format!("stored value is {v}"),
                ));
            }
        }
    }
    for (i, &c) in col_indices.iter().enumerate() {
        if u64::from(c) >= n_cols {
            out.push(Diagnostic::error(
                codes::INDEX_BOUNDS,
                Location::at(&indices_obj, i as u64),
                format!("index {c} exceeds dimension {n_cols}"),
            ));
        }
    }
    // Per-row ordering is only meaningful when offsets describe valid
    // slices of the index array.
    if monotone && row_offsets.last().copied().unwrap_or(0) as usize == col_indices.len() {
        for r in 0..n_rows as usize {
            let (lo, hi) = (row_offsets[r] as usize, row_offsets[r + 1] as usize);
            for k in lo + 1..hi {
                if col_indices[k - 1] >= col_indices[k] {
                    out.push(Diagnostic::error(
                        codes::INDEX_SORTED,
                        Location::at(&indices_obj, k as u64),
                        format!(
                            "row {r}: index {} does not strictly increase after {}",
                            col_indices[k],
                            col_indices[k - 1]
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Audits a constructed [`CsrMatrix`] (clean unless memory was corrupted
/// or an invariant-breaking code path slipped past construction).
#[must_use]
pub fn check_csr(m: &CsrMatrix) -> Vec<Diagnostic> {
    check_csr_parts(
        "csr",
        u64::from(m.n_rows()),
        u64::from(m.n_cols()),
        m.row_offsets(),
        m.col_indices(),
        Some(m.values()),
    )
}

/// Audits a constructed [`CscMatrix`] — the same checks with rows and
/// columns exchanged; locations use `csc.col_offsets`/`csc.row_indices`.
#[must_use]
pub fn check_csc(m: &CscMatrix) -> Vec<Diagnostic> {
    check_csr_parts(
        "csc",
        u64::from(m.n_cols()),
        u64::from(m.n_rows()),
        m.col_offsets(),
        m.row_indices(),
        Some(m.values()),
    )
    .into_iter()
    .map(|mut d| {
        d.location.object = d
            .location
            .object
            .replace("csc.row_offsets", "csc.col_offsets")
            .replace("csc.col_indices", "csc.row_indices");
        d
    })
    .collect()
}

/// Audits raw COO triples against declared dimensions: coordinate
/// bounds, value finiteness, and (warning) duplicate coordinates.
#[must_use]
pub fn check_coo_parts(
    object: &str,
    n_rows: u64,
    n_cols: u64,
    entries: &[(u32, u32, f32)],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, &(r, c, v)) in entries.iter().enumerate() {
        if u64::from(r) >= n_rows {
            out.push(Diagnostic::error(
                codes::COO_ROW_BOUNDS,
                Location::at(object, i as u64),
                format!("row {r} exceeds dimension {n_rows}"),
            ));
        }
        if u64::from(c) >= n_cols {
            out.push(Diagnostic::error(
                codes::COO_COL_BOUNDS,
                Location::at(object, i as u64),
                format!("column {c} exceeds dimension {n_cols}"),
            ));
        }
        if !v.is_finite() {
            out.push(Diagnostic::error(
                codes::COO_VALUE_NONFINITE,
                Location::at(object, i as u64),
                format!("value at ({r}, {c}) is {v}"),
            ));
        }
    }
    let mut coords: Vec<(u32, u32, usize)> = entries
        .iter()
        .enumerate()
        .map(|(i, &(r, c, _))| (r, c, i))
        .collect();
    coords.sort_unstable();
    for w in coords.windows(2) {
        if (w[0].0, w[0].1) == (w[1].0, w[1].1) {
            out.push(Diagnostic::warning(
                codes::COO_DUPLICATE,
                Location::at(object, w[1].2 as u64),
                format!(
                    "coordinate ({}, {}) already stored at entry {} (CSR conversion sums duplicates)",
                    w[1].0, w[1].1, w[0].2
                ),
            ));
        }
    }
    out
}

/// Audits a constructed [`CooMatrix`].
#[must_use]
pub fn check_coo(m: &CooMatrix) -> Vec<Diagnostic> {
    check_coo_parts(
        "coo.entries",
        u64::from(m.n_rows()),
        u64::from(m.n_cols()),
        m.entries(),
    )
}

/// Audits a constructed [`EllMatrix`]: padded storage size and column
/// bounds of every non-pad slot.
#[must_use]
pub fn check_ell(m: &EllMatrix) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let expect = u64::from(m.n_rows()) * u64::from(m.width());
    if m.padded_len() as u64 != expect {
        out.push(Diagnostic::error(
            codes::ELL_STORAGE,
            Location::whole("ell.cols"),
            format!(
                "padded storage holds {} slots but n_rows x width = {expect}",
                m.padded_len()
            ),
        ));
        return out;
    }
    for slot in 0..m.width() {
        for row in 0..m.n_rows() {
            let c = m.col_at(slot, row);
            if c != ELL_PAD && c >= m.n_cols() {
                out.push(Diagnostic::error(
                    codes::ELL_COL_BOUNDS,
                    Location::at(
                        "ell.cols",
                        u64::from(slot) * u64::from(m.n_rows()) + u64::from(row),
                    ),
                    format!("column {c} exceeds dimension {}", m.n_cols()),
                ));
            }
        }
    }
    out
}

/// Audits a constructed [`SellMatrix`]: slice count, per-slice storage,
/// the σ-sort row mapping (must be a bijection), and column bounds.
#[must_use]
pub fn check_sell(m: &SellMatrix) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = m.n_rows() as usize;
    let expect_slices = n.div_ceil(m.c().max(1) as usize);
    if m.n_slices() != expect_slices {
        out.push(Diagnostic::error(
            codes::SELL_SLICES,
            Location::whole("sell.slices"),
            format!(
                "{} slices but ceil(n_rows / c) = {expect_slices}",
                m.n_slices()
            ),
        ));
        return out;
    }
    let stored: u64 = (0..m.n_slices())
        .map(|s| u64::from(m.slice_width(s)) * u64::from(m.c()))
        .sum();
    if m.padded_len() as u64 != stored {
        out.push(Diagnostic::error(
            codes::SELL_SLICES,
            Location::whole("sell.cols"),
            format!(
                "padded storage holds {} slots but slice widths sum to {stored}",
                m.padded_len()
            ),
        ));
    }
    let mut seen = vec![false; n];
    for k in 0..m.n_rows() {
        let r = m.original_row(k) as usize;
        if r >= n || seen[r] {
            out.push(Diagnostic::error(
                codes::SELL_SLICES,
                Location::at("sell.sorted_rows", u64::from(k)),
                format!("row map entry {r} is not a bijection on 0..{n}"),
            ));
        } else {
            seen[r] = true;
        }
    }
    for s in 0..m.n_slices() {
        let lanes = m.c().min((n - s * m.c() as usize) as u32);
        for slot in 0..m.slice_width(s) {
            for lane in 0..lanes {
                if let Some(c) = m.col_at(s, slot, lane) {
                    if c >= m.n_cols() {
                        out.push(Diagnostic::error(
                            codes::ELL_COL_BOUNDS,
                            Location::whole(&format!("sell.slice[{s}]")),
                            format!("column {c} exceeds dimension {}", m.n_cols()),
                        ));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_csr_is_clean() {
        let m =
            CsrMatrix::new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0]).expect("valid");
        assert!(check_csr(&m).is_empty());
    }

    #[test]
    fn wrong_offsets_length_is_chk0101() {
        let d = check_csr_parts("csr", 3, 3, &[0, 1], &[0], Some(&[1.0]));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, codes::OFFSETS_LENGTH);
    }

    #[test]
    fn nonzero_start_is_chk0102() {
        let d = check_csr_parts("csr", 1, 3, &[1, 1], &[0], None);
        assert!(d.iter().any(|d| d.code == codes::OFFSETS_START), "{d:?}");
    }

    #[test]
    fn non_monotone_offsets_is_chk0103_with_position() {
        let d = check_csr_parts("csr", 2, 3, &[0, 2, 1], &[0, 1], None);
        let hit = d
            .iter()
            .find(|d| d.code == codes::OFFSETS_MONOTONE)
            .expect("finding");
        assert_eq!(hit.location.index, Some(2));
    }

    #[test]
    fn wrong_last_offset_is_chk0104() {
        let d = check_csr_parts("csr", 1, 3, &[0, 2], &[0], None);
        assert!(d.iter().any(|d| d.code == codes::OFFSETS_LAST), "{d:?}");
    }

    #[test]
    fn index_out_of_bounds_is_chk0105() {
        let d = check_csr_parts("csr", 1, 2, &[0, 1], &[5], None);
        assert!(d.iter().any(|d| d.code == codes::INDEX_BOUNDS), "{d:?}");
    }

    #[test]
    fn unsorted_row_is_chk0106() {
        let d = check_csr_parts("csr", 1, 3, &[0, 2], &[2, 0], None);
        assert!(d.iter().any(|d| d.code == codes::INDEX_SORTED), "{d:?}");
        let dup = check_csr_parts("csr", 1, 3, &[0, 2], &[1, 1], None);
        assert!(dup.iter().any(|d| d.code == codes::INDEX_SORTED), "{dup:?}");
    }

    #[test]
    fn values_length_mismatch_is_chk0107() {
        let d = check_csr_parts("csr", 1, 3, &[0, 1], &[0], Some(&[]));
        assert!(d.iter().any(|d| d.code == codes::VALUES_LENGTH), "{d:?}");
    }

    #[test]
    fn nan_value_is_chk0108() {
        let d = check_csr_parts("csr", 1, 3, &[0, 1], &[0], Some(&[f32::NAN]));
        assert!(d.iter().any(|d| d.code == codes::VALUE_NONFINITE), "{d:?}");
    }

    #[test]
    fn valid_csc_is_clean_and_relabelled() {
        let csr = CsrMatrix::new(2, 2, vec![0, 1, 2], vec![1, 0], vec![5.0, 7.0]).expect("valid");
        let csc = CscMatrix::from(&csr);
        assert!(check_csc(&csc).is_empty());
    }

    #[test]
    fn coo_out_of_bounds_and_duplicates() {
        let d = check_coo_parts(
            "coo.entries",
            2,
            2,
            &[(0, 1, 1.0), (5, 0, 1.0), (0, 9, f32::INFINITY), (0, 1, 2.0)],
        );
        let codes_found = {
            let mut v: Vec<_> = d.iter().map(|d| d.code).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        assert_eq!(
            codes_found,
            vec![
                codes::COO_ROW_BOUNDS,
                codes::COO_COL_BOUNDS,
                codes::COO_VALUE_NONFINITE,
                codes::COO_DUPLICATE
            ]
        );
    }

    #[test]
    fn valid_coo_is_clean() {
        let m = CooMatrix::from_entries(2, 2, vec![(0, 1, 2.0), (1, 0, 3.0)]).expect("valid");
        assert!(check_coo(&m).is_empty());
    }

    #[test]
    fn valid_ell_and_sell_are_clean() {
        let csr = CsrMatrix::new(
            4,
            4,
            vec![0, 2, 3, 5, 6],
            vec![0, 2, 1, 0, 3, 2],
            vec![1.0; 6],
        )
        .expect("valid");
        let ell = EllMatrix::from_csr(&csr).expect("fits");
        assert!(check_ell(&ell).is_empty());
        let sell = SellMatrix::from_csr(&csr, 2, 4).expect("fits");
        assert!(check_sell(&sell).is_empty());
    }
}
