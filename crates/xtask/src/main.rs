//! Workspace automation tasks.
//!
//! `cargo run -p xtask -- lint` runs the offline static-analysis pass
//! over every crate: it needs no network, no rustc invocation, and no
//! third-party dependencies, so it works in the most restricted CI
//! sandbox. Since PR 5 the backend is `commorder-analyze`: a lossless
//! token-stream lexer plus layering/determinism/telemetry-name passes,
//! replacing the old line-regex scan. It complements (not replaces)
//! `cargo clippy` with the workspace deny-list: clippy enforces
//! expression-level lints, the analyzer enforces the *policy*
//! invariants a lint pass can't express — crate-header pragmas,
//! manifest opt-ins, the panic-free-library rule with its documented
//! allowlist, the layering DAG, and report-path determinism.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use commorder_analyze::{analyze_workspace, AnalyzerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&workspace_root(), args.iter().any(|a| a == "--json")),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--json]");
            eprintln!();
            eprintln!("tasks:");
            eprintln!("  lint    offline static-analysis pass over all workspace crates");
            ExitCode::FAILURE
        }
    }
}

/// Runs the analyzer over the workspace and prints the report; the
/// process fails when any error-severity finding is present.
fn lint(root: &Path, json: bool) -> ExitCode {
    let report = match analyze_workspace(root, &AnalyzerConfig::default()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.errors() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}
