//! Implementing your own reordering technique against the [`Reordering`]
//! trait, and benchmarking it against the built-ins with the same
//! pipeline the paper experiments use.
//!
//! The custom technique here is a "community + degree" hybrid: RABBIT's
//! communities, but members of each community sorted by decreasing
//! degree — a plausible idea the harness can falsify in seconds.
//!
//! ```sh
//! cargo run --release --example custom_technique
//! ```

use commorder::prelude::*;
use commorder::synth::generators::CommunityHub;

/// RABBIT communities with degree-sorted members.
struct CommunityDegreeSort;

impl Reordering for CommunityDegreeSort {
    fn name(&self) -> &str {
        "COMM+DEGSORT"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<Permutation, commorder::sparse::SparseError> {
        let result = Rabbit::new().run(a)?;
        let degrees = a.in_degrees();
        // Each community block stays where RABBIT put it (keyed by the
        // RABBIT rank of its first member); inside a block, members are
        // re-sorted by decreasing degree (ties keep RABBIT order).
        let mut community_start = vec![u32::MAX; result.dendrogram.community_count()];
        for v in 0..a.n_rows() {
            let c = result.assignment[v as usize] as usize;
            community_start[c] = community_start[c].min(result.permutation.new_of(v));
        }
        let mut order: Vec<u32> = (0..a.n_rows()).collect();
        order.sort_by_key(|&v| {
            (
                community_start[result.assignment[v as usize] as usize],
                std::cmp::Reverse(degrees[v as usize]),
                result.permutation.new_of(v),
            )
        });
        Permutation::from_order(&order)
    }
}

fn main() -> Result<(), commorder::sparse::SparseError> {
    let matrix = CommunityHub {
        n: 8192,
        communities: 64,
        intra_degree: 10.0,
        hub_fraction: 0.03,
        hub_degree: 24.0,
        mixing: 0.1,
        scramble_ids: true,
    }
    .generate(99)?;

    let pipeline = Pipeline::new(GpuSpec::test_scale());
    let mut table = Table::new(
        "Custom technique vs built-ins",
        vec![
            "technique".into(),
            "traffic/compulsory".into(),
            "time/ideal".into(),
        ],
    );
    let techniques: Vec<Box<dyn Reordering>> = vec![
        Box::new(Original),
        Box::new(Rabbit::new()),
        Box::new(CommunityDegreeSort),
        Box::new(RabbitPlusPlus::new()),
    ];
    for technique in &techniques {
        let eval = pipeline.evaluate(&matrix, technique.as_ref())?;
        table.add_row(vec![
            eval.technique.clone(),
            Table::ratio(eval.run.traffic_ratio),
            Table::ratio(eval.run.time_ratio),
        ]);
    }
    println!("{table}");
    println!(
        "The harness answers design questions like Table II's: is degree-sorting\n\
         *within* communities better than RABBIT's merge order? (The paper's\n\
         HUBSORT result predicts no — degree-sorting destroys the sub-community\n\
         structure; the numbers above test that prediction on this matrix.)"
    );
    Ok(())
}
