//! Layering and cycle analysis (`XT0401`–`XT0404`).
//!
//! The inter-crate and intra-crate dependency graphs are extracted
//! from `use` declarations and path expressions — not from manifests —
//! so the analysis sees what the code actually references. A declared
//! layer table assigns each crate a height; every edge must point
//! strictly downward. Cycles are reported per strongly connected
//! component (Tarjan), both between crates and between the top-level
//! modules of one crate.

use std::collections::{BTreeMap, BTreeSet};

use crate::codes;
use crate::findings::{Finding, Severity};
use crate::model::{CrateData, EdgeAnchor};

/// Tarjan's strongly-connected-components algorithm, iterative so deep
/// graphs cannot overflow the stack. Returns components of size ≥ 2 in
/// discovery order, members sorted.
#[must_use]
pub fn cyclic_sccs(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: u32,
        low: u32,
        on_stack: bool,
        visited: bool,
    }
    let mut state = vec![
        NodeState {
            index: 0,
            low: 0,
            on_stack: false,
            visited: false,
        };
        n
    ];
    let mut next_index = 0u32;
    let mut stack = Vec::new();
    let mut sccs = Vec::new();
    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if state[start].visited {
            continue;
        }
        frames.push((start, 0));
        while let Some(frame) = frames.last_mut() {
            let v = frame.0;
            if frame.1 == 0 {
                state[v].visited = true;
                state[v].index = next_index;
                state[v].low = next_index;
                next_index += 1;
                state[v].on_stack = true;
                stack.push(v);
            }
            if let Some(&w) = adj[v].get(frame.1) {
                frame.1 += 1;
                if !state[w].visited {
                    frames.push((w, 0));
                } else if state[w].on_stack {
                    state[v].low = state[v].low.min(state[w].index);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    let low = state[v].low;
                    state[parent].low = state[parent].low.min(low);
                }
                if state[v].low == state[v].index {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        state[w].on_stack = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if comp.len() >= 2 {
                        comp.sort_unstable();
                        sccs.push(comp);
                    }
                }
            }
        }
    }
    sccs
}

/// Runs the crate-level checks: every crate must appear in the layer
/// table (`XT0404`), every edge must point strictly downward
/// (`XT0402`), and the crate graph must be acyclic (`XT0401`).
#[must_use]
pub fn check_crates(
    crates: &[CrateData],
    edges: &BTreeMap<(usize, usize), EdgeAnchor>,
    layers: &BTreeMap<String, u32>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for c in crates {
        if !layers.contains_key(&c.dir_name) {
            out.push(Finding::file_scoped(
                codes::UNDECLARED_CRATE,
                Severity::Error,
                &c.manifest_rel,
                format!(
                    "crate `{}` is not in the declared layering table; assign it a layer",
                    c.dir_name
                ),
            ));
        }
    }

    for (&(src, dst), anchor) in edges {
        if src == dst {
            continue;
        }
        let (Some(ls), Some(ld)) = (
            layers.get(&crates[src].dir_name),
            layers.get(&crates[dst].dir_name),
        ) else {
            continue; // XT0404 already reported
        };
        if ls <= ld {
            out.push(Finding {
                code: codes::LAYER_VIOLATION,
                severity: Severity::Error,
                file: anchor.file.clone(),
                line: anchor.line,
                col_start: anchor.col,
                col_end: anchor.col,
                message: format!(
                    "layering back-edge: `{}` (layer {}) must not depend on `{}` (layer {})",
                    crates[src].dir_name, ls, crates[dst].dir_name, ld
                ),
            });
        }
    }

    let mut adj = vec![Vec::new(); crates.len()];
    for &(src, dst) in edges.keys() {
        if src != dst {
            adj[src].push(dst);
        }
    }
    for comp in cyclic_sccs(crates.len(), &adj) {
        let names: Vec<&str> = comp.iter().map(|&i| crates[i].dir_name.as_str()).collect();
        out.push(Finding::file_scoped(
            codes::CRATE_CYCLE,
            Severity::Error,
            &crates[comp[0]].manifest_rel,
            format!("crate dependency cycle: {}", names.join(" -> ")),
        ));
    }
    out
}

/// Runs the module-cycle check for one crate (`XT0403`). `modules` maps
/// a module name to a representative file; `edges` holds the anchored
/// module graph with facade files already excluded as sources.
#[must_use]
pub fn check_modules(
    crate_name: &str,
    modules: &BTreeMap<String, String>,
    edges: &BTreeMap<(String, String), EdgeAnchor>,
) -> Vec<Finding> {
    let names: Vec<&String> = modules.keys().collect();
    let index: BTreeMap<&str, usize> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let mut adj = vec![BTreeSet::new(); names.len()];
    for (src, dst) in edges.keys() {
        if let (Some(&s), Some(&d)) = (index.get(src.as_str()), index.get(dst.as_str())) {
            if s != d {
                adj[s].insert(d);
            }
        }
    }
    let adj: Vec<Vec<usize>> = adj.into_iter().map(|s| s.into_iter().collect()).collect();
    let mut out = Vec::new();
    for comp in cyclic_sccs(names.len(), &adj) {
        let members: Vec<&str> = comp.iter().map(|&i| names[i].as_str()).collect();
        let anchor_file = modules.get(members[0]).cloned().unwrap_or_default();
        out.push(Finding::file_scoped(
            codes::MODULE_CYCLE,
            Severity::Error,
            &anchor_file,
            format!(
                "module dependency cycle in crate `{crate_name}`: {}",
                members.join(" -> ")
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tarjan_finds_the_cycle_and_skips_singletons() {
        // 0 -> 1 -> 2 -> 0 is a cycle; 3 is a sink.
        let adj = vec![vec![1], vec![2], vec![0, 3], vec![]];
        let sccs = cyclic_sccs(4, &adj);
        assert_eq!(sccs, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn tarjan_on_a_dag_is_empty() {
        let adj = vec![vec![1, 2], vec![2], vec![]];
        assert!(cyclic_sccs(3, &adj).is_empty());
    }

    #[test]
    fn tarjan_two_cycles() {
        let adj = vec![vec![1], vec![0], vec![3], vec![2]];
        let sccs = cyclic_sccs(4, &adj);
        assert_eq!(sccs.len(), 2);
        assert!(sccs.contains(&vec![0, 1]));
        assert!(sccs.contains(&vec![2, 3]));
    }
}
