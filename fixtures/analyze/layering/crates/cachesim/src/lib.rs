//! Fixture: half of a same-layer crate cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sim;
