//! Microbench for the streaming trace architecture: streamed (replayed)
//! versus collected (slice-backed) consumption for LRU and Belady, plus
//! the peak-trace-memory guarantee exported through the
//! `cachesim.trace.peak_bytes` gauge.
//!
//! The streamed rows regenerate the kernel trace on every replay — what
//! the pipeline actually pays — while the collected rows consume a
//! pre-materialized slice, isolating pure simulation throughput. The
//! run aborts if Belady's two-pass oracle ever needs more than 8 bytes
//! per access (its compact next-use array) or if streaming LRU reports
//! any per-access buffer at all.

use std::sync::Arc;

use commorder::cachesim::belady::simulate_belady;
use commorder::cachesim::source::KernelTrace;
use commorder::cachesim::telemetry::record_trace_peak_bytes;
use commorder::cachesim::trace::ExecutionModel;
use commorder::obs;
use commorder::prelude::*;
use commorder::synth::generators::PlantedPartition;
use commorder_bench::microbench::Runner;

fn main() {
    let runner = Runner::from_env();
    let a = PlantedPartition::uniform(4096, 32, 10.0, 0.1)
        .generate(99)
        .expect("valid generator config");
    let config = CacheConfig::test_scale();
    let source = KernelTrace::new(&a, Kernel::SpmvCsr, ExecutionModel::Sequential);
    let collected = source.collect_trace();
    let n = collected.len() as u64;
    let accesses = Some(n);

    println!("== trace_stream ==");
    runner.bench("lru_streamed", accesses, || {
        let mut cache = LruCache::new(config);
        cache.consume(&source);
        cache.finish()
    });
    runner.bench("lru_collected", accesses, || {
        let mut cache = LruCache::new(config);
        cache.consume(&collected);
        cache.finish()
    });
    runner.bench("belady_streamed", accesses, || {
        simulate_belady(config, &source)
    });
    runner.bench("belady_collected", accesses, || {
        simulate_belady(config, &collected)
    });

    // Peak per-trace buffer bytes, read back through a registry sink.
    let registry = Arc::new(Registry::new());
    let guard = obs::install(registry.clone());
    let _ = simulate_belady(config, &source);
    let belady_peak = registry
        .gauge("cachesim.trace.peak_bytes")
        .expect("simulate_belady exports its next-use footprint") as u64;
    // Streaming LRU holds no per-access state; its peak is zero by
    // construction, recorded here so the gauge covers both policies.
    record_trace_peak_bytes(0);
    let lru_peak = registry
        .gauge("cachesim.trace.peak_bytes")
        .expect("recorded on the line above") as u64;
    drop(guard);

    assert!(belady_peak > 0, "belady must report its next-use array");
    assert!(
        belady_peak <= 8 * n,
        "belady peak {belady_peak} B exceeds 8 B/access over {n} accesses"
    );
    assert_eq!(lru_peak, 0, "streaming LRU must hold no per-access state");
    println!(
        "belady peak trace bytes: {belady_peak} ({:.2} B/access, bound 8)",
        belady_peak as f64 / n as f64
    );
    println!("lru peak trace bytes: {lru_peak} (streaming consumer, O(1) state)");
}
