//! GPU last-level-cache simulator and kernel address-trace generators.
//!
//! The paper validates RABBIT++ with "a cache simulator modelling the L2
//! cache of the A6000 ... within 4% of the real-GPU numbers" (§VI-B).
//! This crate is that simulator:
//!
//! * [`CacheConfig`] — capacity / line size / associativity, with presets
//!   for the A6000's 6 MB L2 and the scaled-down variant the synthetic
//!   corpus is calibrated against,
//! * [`LruCache`] — set-associative LRU cache (the paper: "LRU
//!   replacement policy (which closely models A6000's L2 cache)"),
//! * [`belady`] — the same cache under Belady's optimal replacement \[8\],
//!   used for the headroom analysis of Fig. 8,
//! * dead-line accounting ([`CacheStats::dead_line_fraction`]) for
//!   Table III,
//! * [`trace`] — address-trace generators replaying the exact array-level
//!   access patterns of the SpMV-CSR (Algorithm 1), SpMV-COO and
//!   SpMM-CSR kernels, with sequential or GPU-style interleaved
//!   execution ([`trace::ExecutionModel`]).
//!
//! DRAM traffic is `fill misses x line + write-backs x line`. Write
//! misses allocate without fetching (streaming stores fully overwrite
//! their sectors on these kernels), which makes the simulator's minimum
//! traffic coincide exactly with the paper's §IV-B compulsory-traffic
//! formula.
//!
//! # Example
//!
//! ```
//! use commorder_cachesim::{CacheConfig, LruCache, trace};
//! use commorder_sparse::{traffic::Kernel, CsrMatrix};
//!
//! # fn main() -> Result<(), commorder_sparse::SparseError> {
//! let a = CsrMatrix::new(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 1.0])?;
//! let mut cache = LruCache::new(CacheConfig::test_scale());
//! trace::for_each_access(&a, Kernel::SpmvCsr, trace::ExecutionModel::Sequential, |acc| {
//!     cache.access(acc);
//! });
//! let stats = cache.finish();
//! assert!(stats.dram_traffic_bytes() >= Kernel::SpmvCsr.compulsory_bytes_for(&a));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;

pub mod belady;
pub mod classify;
pub mod format_trace;
pub mod graph_trace;
pub mod hierarchy;
pub mod layout;
pub mod plru;
pub mod source;
pub mod spgemm;
pub mod telemetry;
pub mod trace;

pub use cache::{AccessOutcome, CacheStats, LruCache};
pub use config::CacheConfig;
pub use layout::ArrayLayout;
pub use source::TraceSource;
pub use spgemm::SpGemmTrace;
pub use trace::Access;
