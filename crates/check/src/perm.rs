//! Validators for permutations and community assignments.

use commorder_sparse::Permutation;

use crate::codes;
use crate::diag::{Diagnostic, Location};

/// Audits a raw `old -> new` mapping: every entry in range (`CHK0401`),
/// no target used twice (`CHK0402`), and — when `expected_len` is given —
/// the mapping is the right size for the object it acts on (`CHK0403`).
#[must_use]
pub fn check_permutation_parts(
    object: &str,
    new_ids: &[u32],
    expected_len: Option<u64>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if let Some(expect) = expected_len {
        if new_ids.len() as u64 != expect {
            out.push(Diagnostic::error(
                codes::PERM_LENGTH,
                Location::whole(object),
                format!(
                    "permutation has {} entries, expected {expect}",
                    new_ids.len()
                ),
            ));
        }
    }
    let n = new_ids.len() as u64;
    let mut first_use = vec![u32::MAX; new_ids.len()];
    for (old, &new) in new_ids.iter().enumerate() {
        if u64::from(new) >= n {
            out.push(Diagnostic::error(
                codes::PERM_RANGE,
                Location::at(object, old as u64),
                format!("entry {new} must be < length {n}"),
            ));
            continue;
        }
        let slot = &mut first_use[new as usize];
        if *slot != u32::MAX {
            out.push(Diagnostic::error(
                codes::PERM_DUPLICATE,
                Location::at(object, old as u64),
                format!("target id {new} already assigned to position {}", *slot),
            ));
        } else {
            *slot = old as u32;
        }
    }
    out
}

/// Audits a constructed [`Permutation`] against the length of the object
/// it should act on. Range/duplicate findings are impossible for a typed
/// permutation; the length check (`CHK0403`) is the one that can fire.
#[must_use]
pub fn check_permutation(p: &Permutation, expected_len: Option<u64>) -> Vec<Diagnostic> {
    check_permutation_parts("permutation", p.as_slice(), expected_len)
}

/// Audits a community assignment `communities[v] = community id` against
/// the vertex count and the declared number of communities: totality
/// (`CHK0501`), id range (`CHK0502`), and — as a warning — declared
/// communities with no members (`CHK0503`).
#[must_use]
pub fn check_assignment(
    communities: &[u32],
    n_vertices: u64,
    n_communities: u32,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if communities.len() as u64 != n_vertices {
        out.push(Diagnostic::error(
            codes::COMM_TOTAL,
            Location::whole("communities"),
            format!(
                "assignment covers {} vertices, graph has {n_vertices}",
                communities.len()
            ),
        ));
    }
    let mut members = vec![0u64; n_communities as usize];
    for (v, &c) in communities.iter().enumerate() {
        if c >= n_communities {
            out.push(Diagnostic::error(
                codes::COMM_RANGE,
                Location::at("communities", v as u64),
                format!("community id {c} exceeds declared count {n_communities}"),
            ));
        } else {
            members[c as usize] += 1;
        }
    }
    for (c, &count) in members.iter().enumerate() {
        if count == 0 {
            out.push(Diagnostic::warning(
                codes::COMM_EMPTY,
                Location::at("communities", c as u64),
                format!("declared community {c} has no members"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_permutation_is_clean() {
        let p = Permutation::from_new_ids(vec![2, 0, 1]).expect("bijection");
        assert!(check_permutation(&p, Some(3)).is_empty());
        assert!(check_permutation_parts("p", &[], None).is_empty());
    }

    #[test]
    fn out_of_range_entry_is_chk0401() {
        let d = check_permutation_parts("p", &[0, 3], None);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, codes::PERM_RANGE);
        assert_eq!(d[0].location.index, Some(1));
    }

    #[test]
    fn duplicate_target_is_chk0402() {
        let d = check_permutation_parts("p", &[1, 1, 0], None);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, codes::PERM_DUPLICATE);
        assert_eq!(d[0].location.index, Some(1));
    }

    #[test]
    fn length_mismatch_is_chk0403() {
        let p = Permutation::identity(3);
        let d = check_permutation(&p, Some(5));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, codes::PERM_LENGTH);
    }

    #[test]
    fn valid_assignment_is_clean() {
        assert!(check_assignment(&[0, 1, 0, 1], 4, 2).is_empty());
    }

    #[test]
    fn partial_assignment_is_chk0501() {
        let d = check_assignment(&[0, 1], 4, 2);
        assert!(d.iter().any(|d| d.code == codes::COMM_TOTAL), "{d:?}");
    }

    #[test]
    fn out_of_range_community_is_chk0502() {
        let d = check_assignment(&[0, 7], 2, 2);
        assert!(d.iter().any(|d| d.code == codes::COMM_RANGE), "{d:?}");
    }

    #[test]
    fn empty_community_is_chk0503_warning() {
        let d = check_assignment(&[0, 0], 2, 2);
        let hit = d
            .iter()
            .find(|d| d.code == codes::COMM_EMPTY)
            .expect("finding");
        assert_eq!(hit.severity, crate::diag::Severity::Warning);
        assert_eq!(hit.location.index, Some(1));
    }
}
