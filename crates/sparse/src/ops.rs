//! Structural operations on sparse matrices: symmetrization, self-loop
//! removal, sub-matrix masking, and connectivity helpers.
//!
//! Reordering techniques treat the matrix as an (undirected) graph, so
//! directed inputs are symmetrized first ([`symmetrize`]), exactly as the
//! Rabbit Order and GOrder implementations do. [`mask_incident`] /
//! [`mask_rows`] implement the paper's insular-sub-matrix experiment
//! (Fig. 6: "evaluated by masking all non-zeros that do not connect to
//! insular nodes").

use crate::{CsrMatrix, SparseError};

/// Returns the structural symmetrization `A ∪ Aᵀ` with values summed on
/// coincident entries (value of `(r, c)` becomes `a_rc + a_cr` where both
/// exist).
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a` is not square.
pub fn symmetrize(a: &CsrMatrix) -> Result<CsrMatrix, SparseError> {
    if !a.is_square() {
        return Err(SparseError::DimensionMismatch {
            expected: "square matrix".to_string(),
            found: format!("{} x {}", a.n_rows(), a.n_cols()),
        });
    }
    let t = a.transpose();
    merge_sorted(a, &t)
}

/// Entry-wise union of two same-shape CSR matrices, summing values on
/// coincident coordinates. Both inputs have sorted rows, so each output row
/// is a linear merge.
fn merge_sorted(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix, SparseError> {
    debug_assert_eq!(a.n_rows(), b.n_rows());
    debug_assert_eq!(a.n_cols(), b.n_cols());
    let n = a.n_rows();
    let mut row_offsets = Vec::with_capacity(n as usize + 1);
    row_offsets.push(0u32);
    let mut col_indices = Vec::with_capacity(a.nnz() + b.nnz());
    let mut values = Vec::with_capacity(a.nnz() + b.nnz());
    for r in 0..n {
        let (ac, av) = a.row(r);
        let (bc, bv) = b.row(r);
        let (mut i, mut j) = (0usize, 0usize);
        while i < ac.len() || j < bc.len() {
            let take_a = j >= bc.len() || (i < ac.len() && ac[i] <= bc[j]);
            let take_b = i >= ac.len() || (j < bc.len() && bc[j] <= ac[i]);
            if take_a && take_b && ac[i] == bc[j] {
                col_indices.push(ac[i]);
                values.push(av[i] + bv[j]);
                i += 1;
                j += 1;
            } else if take_a {
                col_indices.push(ac[i]);
                values.push(av[i]);
                i += 1;
            } else {
                col_indices.push(bc[j]);
                values.push(bv[j]);
                j += 1;
            }
        }
        row_offsets.push(col_indices.len() as u32);
    }
    CsrMatrix::new(n, a.n_cols(), row_offsets, col_indices, values)
}

/// Returns a copy of `a` with all diagonal entries removed.
///
/// Community detection treats self-loops specially (they inflate a vertex's
/// internal weight); the reordering techniques drop them up front, like the
/// reference Rabbit Order implementation.
#[must_use]
pub fn remove_self_loops(a: &CsrMatrix) -> CsrMatrix {
    let mut row_offsets = Vec::with_capacity(a.n_rows() as usize + 1);
    row_offsets.push(0u32);
    let mut col_indices = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    for r in 0..a.n_rows() {
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            if c != r {
                col_indices.push(c);
                values.push(v);
            }
        }
        row_offsets.push(col_indices.len() as u32);
    }
    CsrMatrix::new(a.n_rows(), a.n_cols(), row_offsets, col_indices, values)
        .expect("filtering preserves CSR invariants")
}

/// Keeps only the entries whose **row** is marked in `keep`; other rows
/// become empty (dimensions unchanged).
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `keep.len() != n_rows`.
pub fn mask_rows(a: &CsrMatrix, keep: &[bool]) -> Result<CsrMatrix, SparseError> {
    if keep.len() != a.n_rows() as usize {
        return Err(SparseError::DimensionMismatch {
            expected: format!("keep.len() == n_rows == {}", a.n_rows()),
            found: format!("keep.len() == {}", keep.len()),
        });
    }
    let mut row_offsets = Vec::with_capacity(a.n_rows() as usize + 1);
    row_offsets.push(0u32);
    let mut col_indices = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    for r in 0..a.n_rows() {
        if keep[r as usize] {
            let (cols, vals) = a.row(r);
            col_indices.extend_from_slice(cols);
            values.extend_from_slice(vals);
        }
        row_offsets.push(col_indices.len() as u32);
    }
    CsrMatrix::new(a.n_rows(), a.n_cols(), row_offsets, col_indices, values)
}

/// Keeps only entries `(r, c)` where `r` **or** `c` is marked in `keep`
/// (the paper's "non-zeros that connect to insular nodes", Fig. 6).
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `keep.len()` does not
/// match the (square) dimension.
pub fn mask_incident(a: &CsrMatrix, keep: &[bool]) -> Result<CsrMatrix, SparseError> {
    if !a.is_square() || keep.len() != a.n_rows() as usize {
        return Err(SparseError::DimensionMismatch {
            expected: format!("square matrix with keep.len() == {}", a.n_rows()),
            found: format!(
                "{} x {}, keep.len() == {}",
                a.n_rows(),
                a.n_cols(),
                keep.len()
            ),
        });
    }
    let mut row_offsets = Vec::with_capacity(a.n_rows() as usize + 1);
    row_offsets.push(0u32);
    let mut col_indices = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    for r in 0..a.n_rows() {
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            if keep[r as usize] || keep[c as usize] {
                col_indices.push(c);
                values.push(v);
            }
        }
        row_offsets.push(col_indices.len() as u32);
    }
    CsrMatrix::new(a.n_rows(), a.n_cols(), row_offsets, col_indices, values)
}

/// Connected components of the undirected graph underlying `a`
/// (edges taken as `A ∪ Aᵀ`). Returns `(component_id_per_vertex,
/// component_count)`.
///
/// Used by RCM (one BFS per component) and by generator sanity tests.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a` is not square.
pub fn connected_components(a: &CsrMatrix) -> Result<(Vec<u32>, u32), SparseError> {
    let sym = symmetrize(a)?;
    let n = sym.n_rows();
    let mut comp = vec![u32::MAX; n as usize];
    let mut next = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        comp[start as usize] = next;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            let (cols, _) = sym.row(v);
            for &c in cols {
                if comp[c as usize] == u32::MAX {
                    comp[c as usize] = next;
                    queue.push_back(c);
                }
            }
        }
        next += 1;
    }
    Ok((comp, next))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn directed_sample() -> CsrMatrix {
        // 0 -> 1, 2 -> 1 (directed), self loop at 2.
        CsrMatrix::new(3, 3, vec![0, 1, 1, 3], vec![1, 1, 2], vec![1.0, 1.0, 9.0]).unwrap()
    }

    #[test]
    fn symmetrize_unions_pattern() {
        let s = symmetrize(&directed_sample()).unwrap();
        assert!(s.is_symmetric());
        let coords: Vec<_> = s.iter().map(|(r, c, _)| (r, c)).collect();
        assert_eq!(coords, vec![(0, 1), (1, 0), (1, 2), (2, 1), (2, 2)]);
        // Self loop value doubles under A + Aᵀ.
        let (_, vals) = s.row(2);
        assert_eq!(vals, &[1.0, 18.0]);
    }

    #[test]
    fn symmetrize_is_idempotent_on_pattern() {
        let s = symmetrize(&directed_sample()).unwrap();
        let s2 = symmetrize(&s).unwrap();
        assert_eq!(
            s.iter().map(|(r, c, _)| (r, c)).collect::<Vec<_>>(),
            s2.iter().map(|(r, c, _)| (r, c)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn symmetrize_rejects_rectangular() {
        let m = CsrMatrix::new(1, 2, vec![0, 1], vec![1], vec![1.0]).unwrap();
        assert!(symmetrize(&m).is_err());
    }

    #[test]
    fn remove_self_loops_drops_diagonal() {
        let clean = remove_self_loops(&directed_sample());
        assert_eq!(clean.nnz(), 2);
        assert!(clean.iter().all(|(r, c, _)| r != c));
    }

    #[test]
    fn mask_rows_keeps_only_marked() {
        let a = directed_sample();
        let m = mask_rows(&a, &[true, false, false]).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.iter().next(), Some((0, 1, 1.0)));
        assert!(mask_rows(&a, &[true]).is_err());
    }

    #[test]
    fn mask_incident_keeps_touching_entries() {
        let a = symmetrize(&remove_self_loops(&directed_sample())).unwrap();
        // Keep node 0: edges (0,1) and (1,0) touch it.
        let m = mask_incident(&a, &[true, false, false]).unwrap();
        let coords: Vec<_> = m.iter().map(|(r, c, _)| (r, c)).collect();
        assert_eq!(coords, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn connected_components_counts() {
        // Two components: {0,1} and {2}.
        let a = CsrMatrix::new(3, 3, vec![0, 1, 2, 2], vec![1, 0], vec![1.0, 1.0]).unwrap();
        let (comp, count) = connected_components(&a).unwrap();
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn connected_components_uses_undirected_edges() {
        // Directed 0 -> 1 only still connects them.
        let a = CsrMatrix::new(2, 2, vec![0, 1, 1], vec![1], vec![1.0]).unwrap();
        let (comp, count) = connected_components(&a).unwrap();
        assert_eq!(count, 1);
        assert_eq!(comp, vec![0, 0]);
    }
}
