//! The evaluation pipeline: matrix → reordering → kernel trace → cache
//! simulation → traffic and run-time metrics.
//!
//! This is the measurement loop behind every figure and table of the
//! paper, with the real GPU and Nsight Compute replaced by the validated
//! cache simulator (§VI-B) and the analytic A6000 model.

use std::time::Instant;

use commorder_cachesim::belady::simulate_belady;
use commorder_cachesim::trace::{self, ExecutionModel};
use commorder_cachesim::{CacheStats, LruCache};
use commorder_gpumodel::GpuSpec;
use commorder_reorder::Reordering;
use commorder_sparse::traffic::Kernel;
use commorder_sparse::{CsrMatrix, Permutation, SparseError};

/// Cache replacement policy to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// True LRU ("closely models A6000's L2 cache").
    #[default]
    Lru,
    /// Belady's optimal policy (Fig. 8's idealized headroom analysis).
    Belady,
}

/// Result of simulating one kernel execution on one (reordered) matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRun {
    /// Raw cache counters.
    pub stats: CacheStats,
    /// Simulated DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Compulsory traffic for this kernel/matrix (§IV-B).
    pub compulsory_bytes: u64,
    /// `dram_bytes / compulsory_bytes` — the y-axis of Figs. 2/6/7/8.
    pub traffic_ratio: f64,
    /// Estimated execution time in seconds.
    pub time_seconds: f64,
    /// Time normalized to ideal — the y-axis of Fig. 3, Tables II/IV.
    pub time_ratio: f64,
}

/// A [`KernelRun`] together with the reordering that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Display name of the technique.
    pub technique: String,
    /// Wall-clock pre-processing time of the reordering (§VI-C).
    pub reorder_seconds: f64,
    /// The permutation the technique produced.
    pub permutation: Permutation,
    /// Simulation results on the reordered matrix.
    pub run: KernelRun,
}

/// Experiment configuration: platform, kernel and execution model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pipeline {
    /// Simulated platform (L2 geometry + bandwidth model).
    pub gpu: GpuSpec,
    /// Kernel whose trace is simulated.
    pub kernel: Kernel,
    /// Trace linearization model.
    pub model: ExecutionModel,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl Pipeline {
    /// SpMV-CSR, sequential trace, LRU — the default for Figs. 2–7.
    #[must_use]
    pub fn new(gpu: GpuSpec) -> Self {
        Pipeline {
            gpu,
            kernel: Kernel::SpmvCsr,
            model: ExecutionModel::Sequential,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// Same pipeline with a different kernel (builder-style).
    #[must_use]
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Same pipeline with a different replacement policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Same pipeline with a different execution model.
    #[must_use]
    pub fn with_model(mut self, model: ExecutionModel) -> Self {
        self.model = model;
        self
    }

    /// Simulates the configured kernel on `matrix` as-is (no reordering).
    #[must_use]
    pub fn simulate(&self, matrix: &CsrMatrix) -> KernelRun {
        let stats = match self.policy {
            ReplacementPolicy::Lru => {
                let mut cache = LruCache::new(self.gpu.l2);
                trace::for_each_access(matrix, self.kernel, self.model, |a| {
                    cache.access(a);
                });
                cache.finish()
            }
            ReplacementPolicy::Belady => {
                let full = trace::collect_trace(matrix, self.kernel, self.model);
                simulate_belady(self.gpu.l2, &full)
            }
        };
        self.run_from_stats(matrix, stats)
    }

    /// Wraps raw cache counters into traffic/time metrics for `matrix`.
    #[must_use]
    pub fn run_from_stats(&self, matrix: &CsrMatrix, stats: CacheStats) -> KernelRun {
        let n = u64::from(matrix.n_rows());
        let nnz = matrix.nnz() as u64;
        let dram_bytes = stats.dram_traffic_bytes();
        let compulsory_bytes = self.kernel.compulsory_bytes(n, nnz);
        commorder_sparse::debug_validate!(
            n == 0 || compulsory_bytes > 0,
            "compulsory traffic must be positive for a non-empty matrix (n = {n}, nnz = {nnz})"
        );
        KernelRun {
            stats,
            dram_bytes,
            compulsory_bytes,
            traffic_ratio: dram_bytes as f64 / compulsory_bytes as f64,
            time_seconds: self.gpu.estimate_time(self.kernel, n, nnz, dram_bytes),
            time_ratio: self.gpu.normalized_time(self.kernel, n, nnz, dram_bytes),
        }
    }

    /// Reorders `matrix` with `technique` (timing the pre-processing),
    /// then simulates the kernel on the reordered matrix.
    ///
    /// # Errors
    ///
    /// Propagates reordering/permutation errors (non-square input).
    pub fn evaluate(
        &self,
        matrix: &CsrMatrix,
        technique: &dyn Reordering,
    ) -> Result<Evaluation, SparseError> {
        let start = Instant::now();
        let permutation = technique.reorder(matrix)?;
        let reorder_seconds = start.elapsed().as_secs_f64();
        commorder_sparse::debug_validate!(
            permutation.len() == matrix.n_rows() as usize,
            "{}: permutation length {} does not match n = {}",
            technique.name(),
            permutation.len(),
            matrix.n_rows()
        );
        let reordered = matrix.permute_symmetric(&permutation)?;
        commorder_sparse::debug_validate!(
            reordered.nnz() == matrix.nnz(),
            "{}: relabelling changed the entry count ({} -> {})",
            technique.name(),
            matrix.nnz(),
            reordered.nnz()
        );
        let run = self.simulate(&reordered);
        Ok(Evaluation {
            technique: technique.name().to_string(),
            reorder_seconds,
            permutation,
            run,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_reorder::{Original, Rabbit, RandomOrder};
    use commorder_synth::generators::PlantedPartition;

    fn strong_community_matrix() -> CsrMatrix {
        // Generated community-sorted, then scrambled: ORIGINAL is bad,
        // RABBIT should recover it.
        let g = PlantedPartition::uniform(2048, 32, 10.0, 0.03)
            .generate(51)
            .unwrap();
        let p = RandomOrder::new(9).reorder(&g).unwrap();
        g.permute_symmetric(&p).unwrap()
    }

    #[test]
    fn traffic_ratio_is_at_least_one_for_lru() {
        let m = strong_community_matrix();
        let run = Pipeline::new(GpuSpec::test_scale()).simulate(&m);
        assert!(run.traffic_ratio >= 0.99, "ratio = {}", run.traffic_ratio);
        assert!(run.time_ratio >= run.traffic_ratio * 0.99);
    }

    #[test]
    fn rabbit_beats_scrambled_original() {
        let m = strong_community_matrix();
        let pipeline = Pipeline::new(GpuSpec::test_scale());
        let original = pipeline.evaluate(&m, &Original).unwrap();
        let rabbit = pipeline.evaluate(&m, &Rabbit::new()).unwrap();
        assert!(
            rabbit.run.traffic_ratio < original.run.traffic_ratio,
            "rabbit {} vs original {}",
            rabbit.run.traffic_ratio,
            original.run.traffic_ratio
        );
        assert!(rabbit.reorder_seconds >= 0.0);
        assert_eq!(rabbit.technique, "RABBIT");
    }

    #[test]
    fn belady_never_exceeds_lru_traffic() {
        let m = strong_community_matrix();
        let lru = Pipeline::new(GpuSpec::test_scale()).simulate(&m);
        let opt = Pipeline::new(GpuSpec::test_scale())
            .with_policy(ReplacementPolicy::Belady)
            .simulate(&m);
        assert!(opt.dram_bytes <= lru.dram_bytes);
    }

    #[test]
    fn kernel_builder_changes_compulsory() {
        let m = strong_community_matrix();
        let csr = Pipeline::new(GpuSpec::test_scale()).simulate(&m);
        let coo = Pipeline::new(GpuSpec::test_scale())
            .with_kernel(Kernel::SpmvCoo)
            .simulate(&m);
        assert!(coo.compulsory_bytes > csr.compulsory_bytes);
    }

    #[test]
    fn interleaved_model_runs() {
        let m = strong_community_matrix();
        let run = Pipeline::new(GpuSpec::test_scale())
            .with_model(ExecutionModel::Interleaved { streams: 8 })
            .simulate(&m);
        assert!(run.traffic_ratio >= 0.99);
    }
}
