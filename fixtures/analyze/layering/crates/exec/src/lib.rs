//! Fixture: the other half of the crate cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eng;
