//! Quickstart: reorder one matrix with every technique and compare DRAM
//! traffic against the hardware limit.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use commorder::prelude::*;
use commorder::synth::generators::CommunityHub;

fn main() -> Result<(), commorder::sparse::SparseError> {
    // A web-crawl-like matrix: strong communities plus global hubs,
    // published with scrambled IDs (the usual messy real-world case).
    let matrix = CommunityHub {
        n: 16_384,
        communities: 128,
        intra_degree: 10.0,
        hub_fraction: 0.02,
        hub_degree: 24.0,
        mixing: 0.08,
        scramble_ids: true,
    }
    .generate(42)?;
    println!(
        "matrix: {} rows, {} non-zeros",
        matrix.n_rows(),
        matrix.nnz()
    );

    // Simulate cuSPARSE-style SpMV on a scaled A6000 L2 (see DESIGN.md).
    let pipeline = Pipeline::new(GpuSpec::test_scale());
    let mut table = Table::new(
        "SpMV on the simulated A6000 L2",
        vec![
            "technique".into(),
            "traffic/compulsory".into(),
            "time/ideal".into(),
            "L2 hit rate".into(),
            "reorder time".into(),
        ],
    );
    for technique in paper_suite(7) {
        let eval = pipeline.evaluate(&matrix, technique.as_ref())?;
        table.add_row(vec![
            eval.technique.clone(),
            Table::ratio(eval.run.traffic_ratio),
            Table::ratio(eval.run.time_ratio),
            Table::percent(eval.run.stats.hit_rate()),
            Table::seconds(eval.reorder_seconds),
        ]);
    }
    println!("{table}");
    println!("lower is better; 1.00x = hardware limit (compulsory traffic / ideal time)");
    Ok(())
}
