//! One call-graph edge below the seed, plus an unreachable control.

/// Reached from `replay` through `crate::helper::step`, so its loops
/// are hot too.
pub fn step(t: u32) -> usize {
    let mut n = 0;
    for i in 0..t {
        let owned = i.to_string();
        n += owned.len();
    }
    n
}

/// Never called from a seed: the same shapes must stay silent here.
pub fn cold(rows: &[u32]) -> String {
    let mut out = String::new();
    for &r in rows {
        let piece = format!("{r},");
        out.push_str(&piece);
    }
    out
}
