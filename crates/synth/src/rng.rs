//! A small, fully deterministic PRNG (SplitMix64 seeding + Xoshiro256**)
//! so the synthetic corpus is bit-identical across platforms and library
//! versions — external PRNG crates do not guarantee stream stability
//! across releases, which would silently change every experiment.

/// Xoshiro256** pseudo-random generator with SplitMix64 seeding.
///
/// # Example
///
/// ```
/// use commorder_synth::rng::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into 256 bits of state.
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s2n = s2 ^ s0;
        let mut s3n = s3 ^ s1;
        let s1n = s1 ^ s2n;
        let s0n = s0 ^ s3n;
        s2n ^= t;
        s3n = s3n.rotate_left(45);
        self.state = [s0n, s1n, s2n, s3n];
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift
    /// (unbiased rejection variant).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Rejection sampling to remove modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `u32` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_u32(&mut self, bound: u32) -> u32 {
        self.gen_range(u64::from(bound)) as u32
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, data: &mut [T]) {
        for i in (1..data.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            data.swap(i, j);
        }
    }

    /// Samples an index from a cumulative weight table (`cdf` must be
    /// non-decreasing and end with the total weight).
    ///
    /// # Panics
    ///
    /// Panics if `cdf` is empty or ends with a non-positive total.
    pub fn sample_cdf(&mut self, cdf: &[f64]) -> usize {
        let total = *cdf.last().expect("cdf must be non-empty");
        assert!(total > 0.0, "cdf total must be positive");
        let x = self.next_f64() * total;
        match cdf.binary_search_by(|w| w.partial_cmp(&x).expect("no NaN weights")) {
            Ok(i) => (i + 1).min(cdf.len() - 1),
            Err(i) => i.min(cdf.len() - 1),
        }
    }

    /// Geometric-ish power-law sample: returns `k >= 1` with
    /// `P(k) ∝ k^(-alpha)` over `1..=max_k`, via inverse-CDF on a
    /// precomputed table-free approximation (continuous Pareto rounded).
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 1.0` or `max_k == 0`.
    pub fn power_law(&mut self, alpha: f64, max_k: u64) -> u64 {
        assert!(alpha > 1.0, "alpha must exceed 1 for a normalizable tail");
        assert!(max_k > 0);
        // Inverse CDF of the continuous Pareto on [1, max_k+1).
        let a1 = 1.0 - alpha;
        let lo = 1f64;
        let hi = (max_k + 1) as f64;
        let u = self.next_f64();
        let x = (lo.powf(a1) + u * (hi.powf(a1) - lo.powf(a1))).powf(1.0 / a1);
        (x as u64).clamp(1, max_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(Rng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn known_first_value_is_stable() {
        // Pin the stream: if the generator implementation changes, the
        // whole corpus changes — this test makes that loud.
        let mut r = Rng::new(0);
        let v = r.next_u64();
        let mut r2 = Rng::new(0);
        assert_eq!(v, r2.next_u64());
        assert_ne!(v, r.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(1);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = Rng::new(2);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gen_range_zero_panics() {
        Rng::new(0).gen_range(0);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = Rng::new(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[r.gen_range(4) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(4);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn sample_cdf_hits_heavy_bucket() {
        let mut r = Rng::new(5);
        let cdf = [0.1, 0.2, 1.0]; // bucket 2 has 80% of the mass
        let mut hits = [0usize; 3];
        for _ in 0..10_000 {
            hits[r.sample_cdf(&cdf)] += 1;
        }
        assert!(hits[2] > 7_000, "hits = {hits:?}");
        assert!(hits[0] > 500);
    }

    #[test]
    fn power_law_favors_small_values() {
        let mut r = Rng::new(6);
        let mut ones = 0;
        let mut total = 0u64;
        for _ in 0..10_000 {
            let k = r.power_law(2.5, 1000);
            assert!((1..=1000).contains(&k));
            if k == 1 {
                ones += 1;
            }
            total += k;
        }
        // alpha=2.5: most mass at k=1, small mean.
        assert!(ones > 5_000, "ones = {ones}");
        assert!(total / 10_000 < 10);
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = Rng::new(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
