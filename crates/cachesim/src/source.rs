//! Replayable trace sources — the streaming backbone of the simulator.
//!
//! At paper scale (1.5M–226M rows) a materialized SpMV trace is billions
//! of [`Access`] records; no consumer may ever hold one. A
//! [`TraceSource`] is a *recipe* for a trace: calling
//! [`TraceSource::replay`] regenerates the identical access sequence on
//! demand, so multi-pass consumers (two-pass Belady) re-derive the trace
//! instead of buffering it, and single-pass consumers ([`LruCache`],
//! [`PlruCache`](crate::plru::PlruCache), classification) never see more
//! than one access at a time.
//!
//! Sources exist for every generator in the workspace:
//!
//! * [`KernelTrace`] — the SpMV/SpMM kernel traces of [`crate::trace`],
//! * [`PagerankTrace`] / [`BfsTrace`] — the graph-analytics traces of
//!   [`crate::graph_trace`],
//! * [`EllTrace`] / [`SellTrace`] — the padded-format traces of
//!   [`crate::format_trace`],
//! * `[Access]` and `Vec<Access>` — in-memory slices for tests.
//!
//! The provided [`TraceSource::collect_trace`] materializer is a test
//! convenience only; `xtask lint` (rule XT0007) rejects it, and
//! full-trace `Vec<Access>` buffers, outside tests and this module.

use commorder_sparse::{traffic::Kernel, CsrMatrix};

use crate::trace::{for_each_access, Access, ExecutionModel};
use crate::LruCache;

/// A replayable stream of cache accesses.
///
/// Implementations must be **deterministic**: every [`replay`] call on
/// the same source must emit the identical sequence (two-pass consumers
/// and the CHK1001/CHK1002 stream-equivalence validators rely on it).
///
/// [`replay`]: TraceSource::replay
pub trait TraceSource {
    /// Exact number of accesses a [`replay`] will emit, when the source
    /// can know it without generating the trace; `None` otherwise.
    ///
    /// [`replay`]: TraceSource::replay
    fn len_hint(&self) -> Option<u64> {
        None
    }

    /// Emits every access, in trace order, to `sink`.
    fn replay(&self, sink: &mut dyn FnMut(Access));

    /// Materializes the stream — a test convenience; production code
    /// streams via [`replay`](TraceSource::replay) (enforced by `xtask
    /// lint` rule XT0007).
    #[must_use]
    fn collect_trace(&self) -> Vec<Access> {
        let mut v = match self.len_hint() {
            Some(n) => Vec::with_capacity(usize::try_from(n).unwrap_or(0)),
            None => Vec::new(),
        };
        self.replay(&mut |acc| v.push(acc));
        v
    }
}

impl TraceSource for [Access] {
    fn len_hint(&self) -> Option<u64> {
        Some(self.len() as u64)
    }

    fn replay(&self, sink: &mut dyn FnMut(Access)) {
        for &acc in self {
            sink(acc);
        }
    }
}

impl TraceSource for Vec<Access> {
    fn len_hint(&self) -> Option<u64> {
        Some(self.len() as u64)
    }

    fn replay(&self, sink: &mut dyn FnMut(Access)) {
        self.as_slice().replay(sink);
    }
}

impl<T: TraceSource + ?Sized> TraceSource for &T {
    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }

    fn replay(&self, sink: &mut dyn FnMut(Access)) {
        (**self).replay(sink);
    }
}

/// The kernel address trace of [`for_each_access`] as a replayable
/// source: one matrix + kernel + execution model.
#[derive(Debug, Clone, Copy)]
pub struct KernelTrace<'a> {
    a: &'a CsrMatrix,
    kernel: Kernel,
    model: ExecutionModel,
}

impl<'a> KernelTrace<'a> {
    /// A source replaying `kernel` on `a` under `model`.
    #[must_use]
    pub fn new(a: &'a CsrMatrix, kernel: Kernel, model: ExecutionModel) -> Self {
        KernelTrace { a, kernel, model }
    }
}

impl TraceSource for KernelTrace<'_> {
    fn replay(&self, sink: &mut dyn FnMut(Access)) {
        for_each_access(self.a, self.kernel, self.model, sink);
    }
}

/// Streams `source` into a fresh [`LruCache`] and returns the finished
/// stats — the one-liner every analysis binary wants.
#[must_use]
pub fn simulate_lru<S: TraceSource + ?Sized>(
    config: crate::CacheConfig,
    source: &S,
) -> crate::CacheStats {
    let mut cache = LruCache::new(config);
    cache.consume(source);
    cache.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_sparse::traffic::Kernel;

    fn sample() -> CsrMatrix {
        CsrMatrix::new(4, 4, vec![0, 1, 3, 4, 4], vec![1, 0, 2, 1], vec![1.0; 4]).unwrap()
    }

    #[test]
    fn kernel_source_matches_direct_generation() {
        let a = sample();
        let direct = crate::trace::collect_trace(&a, Kernel::SpmvCsr, ExecutionModel::Sequential);
        let source = KernelTrace::new(&a, Kernel::SpmvCsr, ExecutionModel::Sequential);
        assert_eq!(source.collect_trace(), direct);
        // Replays are deterministic: a second pass emits the same stream.
        assert_eq!(source.collect_trace(), direct);
    }

    #[test]
    fn slice_source_roundtrips_and_hints_its_length() {
        let trace = [Access::read(0), Access::write(64), Access::read(4)];
        let slice: &[Access] = &trace;
        assert_eq!(slice.len_hint(), Some(3));
        assert_eq!(slice.collect_trace(), trace.to_vec());
        let owned = trace.to_vec();
        assert_eq!(owned.len_hint(), Some(3));
        assert_eq!(owned.collect_trace(), trace.to_vec());
        // Blanket reference impl: generic consumers accept &&[Access].
        assert_eq!((&slice).len_hint(), Some(3));
    }

    #[test]
    fn simulate_lru_equals_manual_streaming() {
        let a = sample();
        let source = KernelTrace::new(&a, Kernel::SpmvCsr, ExecutionModel::Sequential);
        let mut cache = LruCache::new(crate::CacheConfig::test_scale());
        source.replay(&mut |acc| {
            cache.access(acc);
        });
        let manual = cache.finish();
        assert_eq!(
            simulate_lru(crate::CacheConfig::test_scale(), &source),
            manual
        );
    }
}
