//! Property-based tests for the sparse substrate: format invariants,
//! kernel correctness against the dense reference, and permutation laws.

use commorder_sparse::{kernels, ops, stats, CooMatrix, CsrMatrix, CscMatrix, Permutation};
use proptest::prelude::*;

fn arb_matrix(max_n: u32) -> impl Strategy<Value = CsrMatrix> {
    (1..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, -8i32..=8), 0..150).prop_map(move |entries| {
            let coo = CooMatrix::from_entries(
                n,
                n,
                entries
                    .into_iter()
                    .map(|(r, c, v)| (r, c, v as f32 / 2.0))
                    .collect(),
            )
            .expect("coords in range");
            CsrMatrix::try_from(coo).expect("valid conversion")
        })
    })
}

proptest! {
    #[test]
    fn csr_invariants_hold_after_conversion(m in arb_matrix(30)) {
        // Row offsets monotone, columns strictly increasing per row.
        let offs = m.row_offsets();
        prop_assert_eq!(offs[0], 0);
        prop_assert_eq!(*offs.last().unwrap() as usize, m.nnz());
        for r in 0..m.n_rows() {
            let (cols, _) = m.row(r);
            for w in cols.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn spmv_matches_dense_reference(m in arb_matrix(25)) {
        let x: Vec<f32> = (0..m.n_cols()).map(|i| (i as f32).sin()).collect();
        let sparse = kernels::spmv_csr(&m, &x).expect("dims");
        let dense = kernels::dense_reference_spmv(&m, &x);
        for (a, b) in sparse.iter().zip(&dense) {
            prop_assert!((a - b).abs() <= 1e-4 * b.abs().max(1.0), "{} vs {}", a, b);
        }
    }

    #[test]
    fn coo_and_tiled_kernels_agree_with_csr(m in arb_matrix(25), tile in 1u32..40) {
        let x: Vec<f32> = (0..m.n_cols()).map(|i| 1.0 + (i % 3) as f32).collect();
        let reference = kernels::spmv_csr(&m, &x).expect("dims");
        let coo = kernels::spmv_coo(&CooMatrix::from(&m), &x).expect("dims");
        let tiled = kernels::spmv_csr_tiled(&m, &x, tile).expect("dims");
        for ((a, b), c) in reference.iter().zip(&coo).zip(&tiled) {
            prop_assert!((a - b).abs() <= 1e-4 * a.abs().max(1.0));
            prop_assert!((a - c).abs() <= 1e-4 * a.abs().max(1.0));
        }
    }

    #[test]
    fn csc_round_trip_preserves_matrix(m in arb_matrix(25)) {
        let csc = CscMatrix::from(&m);
        prop_assert_eq!(csc.to_csr(), m.clone());
        prop_assert_eq!(csc.nnz(), m.nnz());
        // Column degrees equal in-degrees.
        let in_deg = m.in_degrees();
        for c in 0..m.n_cols() {
            prop_assert_eq!(csc.col_degree(c), in_deg[c as usize]);
        }
    }

    #[test]
    fn permute_preserves_structure_metrics(m in arb_matrix(25), seed in 0u64..500) {
        // nnz and degree *multiset* are permutation invariants.
        let mut ids: Vec<u32> = (0..m.n_rows()).collect();
        let mut s = seed;
        for i in (1..ids.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ids.swap(i, ((s >> 33) % (i as u64 + 1)) as usize);
        }
        let p = Permutation::from_new_ids(ids).expect("bijection");
        let pm = m.permute_symmetric(&p).expect("square");
        prop_assert_eq!(pm.nnz(), m.nnz());
        let mut d1 = m.out_degrees();
        let mut d2 = pm.out_degrees();
        d1.sort_unstable();
        d2.sort_unstable();
        prop_assert_eq!(d1, d2);
        // Skew is invariant under symmetric permutation.
        let s1 = stats::skew_top10(&m);
        let s2 = stats::skew_top10(&pm);
        prop_assert!((s1 - s2).abs() < 1e-12);
    }

    #[test]
    fn self_loop_removal_and_symmetrize_compose(m in arb_matrix(25)) {
        let clean = ops::remove_self_loops(&m);
        prop_assert!(clean.iter().all(|(r, c, _)| r != c));
        let sym = ops::symmetrize(&clean).expect("square");
        prop_assert!(sym.is_symmetric());
        prop_assert!(sym.iter().all(|(r, c, _)| r != c));
    }

    #[test]
    fn connected_components_partition_vertices(m in arb_matrix(25)) {
        let (comp, count) = ops::connected_components(&m).expect("square");
        prop_assert_eq!(comp.len(), m.n_rows() as usize);
        prop_assert!(comp.iter().all(|&c| c < count));
        // Adjacent vertices share a component.
        for (r, c, _) in m.iter() {
            prop_assert_eq!(comp[r as usize], comp[c as usize]);
        }
    }

    #[test]
    fn compulsory_traffic_monotone_in_nnz(n in 1u64..10_000, nnz in 0u64..1_000_000) {
        use commorder_sparse::traffic::Kernel;
        for k in [Kernel::SpmvCsr, Kernel::SpmvCoo, Kernel::SpmmCsr { k: 4 }] {
            prop_assert!(k.compulsory_bytes(n, nnz + 1) > k.compulsory_bytes(n, nnz));
            prop_assert!(k.compulsory_bytes(n + 1, nnz) > k.compulsory_bytes(n, nnz));
        }
    }
}
