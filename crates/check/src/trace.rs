//! Validators for address traces, cache geometry, and the GPU spec.

use commorder_cachesim::{Access, CacheConfig};
use commorder_gpumodel::GpuSpec;
use commorder_sparse::ELEM_BYTES;

use crate::codes;
use crate::diag::{Diagnostic, Location};

/// Audits an address trace against the layout it was generated for.
///
/// Every access must be element-aligned (`CHK0601`), must not straddle a
/// `line_bytes` sector (`CHK0602` — impossible for aligned 4-byte
/// elements, but misaligned fixtures can exhibit it), and must fall
/// inside `[0, end)` when `end` is given (`CHK0603`, where `end` is the
/// exclusive byte bound of the operand address space, i.e.
/// [`ArrayLayout::end`]). An empty trace is flagged as a warning
/// (`CHK0604`) since every kernel on a non-empty matrix emits accesses.
///
/// [`ArrayLayout::end`]: commorder_cachesim::ArrayLayout::end
#[must_use]
pub fn check_trace(trace: &[Access], end: Option<u64>, line_bytes: u32) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if trace.is_empty() {
        out.push(Diagnostic::warning(
            codes::TRACE_EMPTY,
            Location::whole("trace"),
            "trace contains no accesses".to_string(),
        ));
        return out;
    }
    let line = u64::from(line_bytes.max(1));
    for (i, a) in trace.iter().enumerate() {
        if !a.addr().is_multiple_of(ELEM_BYTES) {
            out.push(Diagnostic::error(
                codes::TRACE_ALIGN,
                Location::at("trace", i as u64),
                format!("address {:#x} is not {ELEM_BYTES}-byte aligned", a.addr()),
            ));
        }
        if a.addr() / line != (a.addr() + ELEM_BYTES - 1) / line {
            out.push(Diagnostic::error(
                codes::TRACE_SECTOR,
                Location::at("trace", i as u64),
                format!(
                    "access at {:#x} straddles the {line}-byte sector boundary at {:#x}",
                    a.addr(),
                    (a.addr() / line + 1) * line
                ),
            ));
        }
        if let Some(end) = end {
            if a.addr() + ELEM_BYTES > end {
                out.push(Diagnostic::error(
                    codes::TRACE_BOUNDS,
                    Location::at("trace", i as u64),
                    format!("address {:#x} is beyond the layout end {end:#x}", a.addr()),
                ));
            }
        }
    }
    out
}

/// Audits cache geometry: positive line size and associativity
/// (`CHK0701`), capacity a whole number of sets (`CHK0702`), and — as a
/// warning — a non-power-of-two line size (`CHK0703`), which no modelled
/// hardware uses and which breaks the cheap addr/line arithmetic
/// assumptions elsewhere.
#[must_use]
pub fn check_cache_config(config: &CacheConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if config.line_bytes == 0 {
        out.push(Diagnostic::error(
            codes::CACHE_ZERO,
            Location::whole("cache.line_bytes"),
            "line size must be positive".to_string(),
        ));
    }
    if config.associativity == 0 {
        out.push(Diagnostic::error(
            codes::CACHE_ZERO,
            Location::whole("cache.associativity"),
            "associativity must be positive".to_string(),
        ));
    }
    if config.capacity_bytes == 0 {
        out.push(Diagnostic::error(
            codes::CACHE_ZERO,
            Location::whole("cache.capacity_bytes"),
            "capacity must be positive".to_string(),
        ));
    }
    if config.line_bytes > 0 && config.associativity > 0 {
        let set_bytes = u64::from(config.line_bytes) * u64::from(config.associativity);
        if !config.capacity_bytes.is_multiple_of(set_bytes) {
            out.push(Diagnostic::error(
                codes::CACHE_RAGGED,
                Location::whole("cache.capacity_bytes"),
                format!(
                    "capacity {} is not a multiple of the {set_bytes}-byte set",
                    config.capacity_bytes
                ),
            ));
        }
    }
    if config.line_bytes > 0 && !config.line_bytes.is_power_of_two() {
        out.push(Diagnostic::warning(
            codes::CACHE_LINE_POW2,
            Location::whole("cache.line_bytes"),
            format!("line size {} is not a power of two", config.line_bytes),
        ));
    }
    out
}

/// The calibrated bounds for [`GpuSpec::fine_grain_penalty`]; the paper's
/// Fig. 2 fit gives 0.9, and anything far outside `[0, 5]` no longer
/// describes a bandwidth-bound device.
pub const PENALTY_RANGE: (f64, f64) = (0.0, 5.0);

/// Audits a GPU spec: positive finite rate constants (`CHK0801`),
/// measured bandwidth at or below peak (`CHK0802`), the fine-grain
/// penalty inside its calibrated range (`CHK0803`), an L2 no larger than
/// main memory (`CHK0804`), plus the embedded cache geometry checks.
#[must_use]
pub fn check_gpu_spec(gpu: &GpuSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let rates = [
        ("gpu.peak_bandwidth", gpu.peak_bandwidth),
        ("gpu.measured_bandwidth", gpu.measured_bandwidth),
        ("gpu.peak_flops_sp", gpu.peak_flops_sp),
    ];
    for (object, value) in rates {
        if !(value.is_finite() && value > 0.0) {
            out.push(Diagnostic::error(
                codes::GPU_CONSTANTS,
                Location::whole(object),
                format!("rate constant is {value}, must be positive and finite"),
            ));
        }
    }
    if gpu.memory_capacity == 0 {
        out.push(Diagnostic::error(
            codes::GPU_CONSTANTS,
            Location::whole("gpu.memory_capacity"),
            "memory capacity must be positive".to_string(),
        ));
    }
    if gpu.measured_bandwidth > gpu.peak_bandwidth {
        out.push(Diagnostic::error(
            codes::GPU_BANDWIDTH_ORDER,
            Location::whole("gpu.measured_bandwidth"),
            format!(
                "measured bandwidth {} exceeds theoretical peak {}",
                gpu.measured_bandwidth, gpu.peak_bandwidth
            ),
        ));
    }
    if !(gpu.fine_grain_penalty.is_finite()
        && (PENALTY_RANGE.0..=PENALTY_RANGE.1).contains(&gpu.fine_grain_penalty))
    {
        out.push(Diagnostic::error(
            codes::GPU_PENALTY_RANGE,
            Location::whole("gpu.fine_grain_penalty"),
            format!(
                "penalty {} outside the calibrated range [{}, {}]",
                gpu.fine_grain_penalty, PENALTY_RANGE.0, PENALTY_RANGE.1
            ),
        ));
    }
    if gpu.l2.capacity_bytes > gpu.memory_capacity {
        out.push(Diagnostic::error(
            codes::GPU_L2_CAPACITY,
            Location::whole("gpu.l2.capacity_bytes"),
            format!(
                "L2 capacity {} exceeds memory capacity {}",
                gpu.l2.capacity_bytes, gpu.memory_capacity
            ),
        ));
    }
    out.extend(check_cache_config(&gpu.l2).into_iter().map(|mut d| {
        d.location.object = format!("gpu.l2.{}", d.location.object.trim_start_matches("cache."));
        d
    }));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(addr: u64) -> Access {
        Access::read(addr)
    }

    #[test]
    fn aligned_in_bounds_trace_is_clean() {
        let t = [acc(0), acc(4), acc(64)];
        assert!(check_trace(&t, Some(128), 32).is_empty());
    }

    #[test]
    fn misaligned_address_is_chk0601() {
        let d = check_trace(&[acc(6)], None, 32);
        assert!(d.iter().any(|d| d.code == codes::TRACE_ALIGN), "{d:?}");
    }

    #[test]
    fn sector_straddle_is_chk0602() {
        // 30..34 crosses the 32-byte boundary (and is misaligned too).
        let d = check_trace(&[acc(30)], None, 32);
        assert!(d.iter().any(|d| d.code == codes::TRACE_SECTOR), "{d:?}");
    }

    #[test]
    fn out_of_bounds_address_is_chk0603() {
        let d = check_trace(&[acc(128)], Some(128), 32);
        assert!(d.iter().any(|d| d.code == codes::TRACE_BOUNDS), "{d:?}");
        assert!(check_trace(&[acc(124)], Some(128), 32).is_empty());
    }

    #[test]
    fn empty_trace_is_chk0604_warning() {
        let d = check_trace(&[], Some(128), 32);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, codes::TRACE_EMPTY);
        assert_eq!(d[0].severity, crate::diag::Severity::Warning);
    }

    #[test]
    fn stock_cache_configs_are_clean() {
        for c in [
            CacheConfig::a6000(),
            CacheConfig::a6000_scaled(),
            CacheConfig::test_scale(),
        ] {
            assert!(check_cache_config(&c).is_empty(), "{c:?}");
        }
    }

    #[test]
    fn zero_geometry_is_chk0701() {
        let d = check_cache_config(&CacheConfig {
            capacity_bytes: 0,
            line_bytes: 0,
            associativity: 0,
        });
        assert_eq!(d.iter().filter(|d| d.code == codes::CACHE_ZERO).count(), 3);
    }

    #[test]
    fn ragged_capacity_is_chk0702() {
        let d = check_cache_config(&CacheConfig {
            capacity_bytes: 1000,
            line_bytes: 32,
            associativity: 16,
        });
        assert!(d.iter().any(|d| d.code == codes::CACHE_RAGGED), "{d:?}");
    }

    #[test]
    fn odd_line_size_is_chk0703_warning() {
        let d = check_cache_config(&CacheConfig {
            capacity_bytes: 48 * 16,
            line_bytes: 48,
            associativity: 16,
        });
        let hit = d
            .iter()
            .find(|d| d.code == codes::CACHE_LINE_POW2)
            .expect("finding");
        assert_eq!(hit.severity, crate::diag::Severity::Warning);
    }

    #[test]
    fn stock_gpu_specs_are_clean() {
        for g in [
            GpuSpec::a6000(),
            GpuSpec::a6000_scaled(),
            GpuSpec::test_scale(),
        ] {
            assert!(check_gpu_spec(&g).is_empty(), "{}", g.name);
        }
    }

    #[test]
    fn corrupted_gpu_spec_reports_each_code() {
        let mut g = GpuSpec::a6000();
        g.peak_flops_sp = f64::NAN;
        g.measured_bandwidth = 2.0 * g.peak_bandwidth;
        g.fine_grain_penalty = -1.0;
        g.memory_capacity = g.l2.capacity_bytes / 2;
        let d = check_gpu_spec(&g);
        for code in [
            codes::GPU_CONSTANTS,
            codes::GPU_BANDWIDTH_ORDER,
            codes::GPU_PENALTY_RANGE,
            codes::GPU_L2_CAPACITY,
        ] {
            assert!(d.iter().any(|d| d.code == code), "missing {code}: {d:?}");
        }
    }

    #[test]
    fn gpu_spec_embeds_cache_findings_with_prefix() {
        let mut g = GpuSpec::a6000();
        g.l2.capacity_bytes = 1000;
        let d = check_gpu_spec(&g);
        let hit = d
            .iter()
            .find(|d| d.code == codes::CACHE_RAGGED)
            .expect("finding");
        assert_eq!(hit.location.object, "gpu.l2.capacity_bytes");
    }
}
