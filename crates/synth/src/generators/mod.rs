//! Synthetic graph/matrix generators.
//!
//! Each generator family targets one of the structural regimes spanned by
//! the paper's 50-matrix corpus (§III: social networks, hyperlink graphs,
//! circuit simulation, optimization, CFD, road networks, protein k-mers,
//! knowledge bases, ...):
//!
//! | Generator | Stands in for | Key structural property |
//! |---|---|---|
//! | [`ErdosRenyi`] | random baseline | no structure at all |
//! | [`Rmat`] | social networks (com-LiveJournal, twitter) | power-law skew, weak communities |
//! | [`PlantedPartition`] | optimization / k-way structured problems | strong, clean communities |
//! | [`CommunityHub`] | web crawls (sk-2005, pld-arc) | communities **plus** global hubs |
//! | [`WattsStrogatz`] | small-world networks | high clustering, short paths |
//! | [`BarabasiAlbert`] | citation/knowledge graphs | preferential attachment skew |
//! | [`Grid2d`] / [`Grid3d`] | road networks / CFD meshes | bounded degree, huge diameter |
//! | [`Banded`] | circuit simulation / electromagnetics | diagonal concentration |
//! | [`HubAndSpoke`] | network traces (mawi) | a few mega-hubs, degenerate communities |
//! | [`KmerChain`] | protein k-mer / DNA graphs | near-degree-2 chains |
//!
//! All generators are deterministic in `(config, seed)` and produce
//! symmetric pattern matrices (value 1.0) with no self-loops, via
//! [`undirected_csr`]. The directed-input path is exercised separately in
//! tests using `commorder_sparse::ops::symmetrize`.

mod banded;
mod chain;
mod hub;
mod hybrid;
mod mesh;
mod preferential;
mod random;
mod rmat;
mod sbm;
mod small_world;

pub use banded::Banded;
pub use chain::KmerChain;
pub use hub::HubAndSpoke;
pub use hybrid::CommunityHub;
pub use mesh::{Grid2d, Grid3d};
pub use preferential::BarabasiAlbert;
pub use random::ErdosRenyi;
pub use rmat::Rmat;
pub use sbm::PlantedPartition;
pub use small_world::WattsStrogatz;

use commorder_sparse::{CooMatrix, CsrMatrix, SparseError};

/// Builds a symmetric pattern CSR matrix from an undirected edge set:
/// self-loops are dropped, duplicate edges collapse to a single entry with
/// value 1.0, and each edge `{u, v}` is stored in both triangles.
///
/// # Errors
///
/// Returns [`SparseError::IndexOutOfBounds`] if an endpoint is `>= n`.
pub fn undirected_csr(n: u32, edges: &[(u32, u32)]) -> Result<CsrMatrix, SparseError> {
    let mut entries = Vec::with_capacity(edges.len() * 2);
    for &(u, v) in edges {
        if u == v {
            continue;
        }
        entries.push((u, v, 1.0));
        entries.push((v, u, 1.0));
    }
    let coo = CooMatrix::from_entries(n, n, entries)?;
    let csr = CsrMatrix::try_from(coo)?;
    // Collapse summed duplicates back to pattern value 1.0.
    let values = vec![1.0f32; csr.nnz()];
    CsrMatrix::new(
        csr.n_rows(),
        csr.n_cols(),
        csr.row_offsets().to_vec(),
        csr.col_indices().to_vec(),
        values,
    )
}

#[cfg(test)]
pub(crate) fn assert_well_formed(m: &CsrMatrix) {
    assert!(m.is_square());
    assert!(m.is_symmetric(), "generator output must be symmetric");
    assert!(m.iter().all(|(r, c, _)| r != c), "no self loops");
    assert!(m.values().iter().all(|&v| v == 1.0), "pattern matrix");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undirected_csr_dedups_and_mirrors() {
        let m = undirected_csr(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]).unwrap();
        assert_eq!(m.nnz(), 2); // (0,1) and (1,0); self loop dropped
        assert_well_formed(&m);
    }

    #[test]
    fn undirected_csr_rejects_out_of_range() {
        assert!(undirected_csr(2, &[(0, 5)]).is_err());
    }
}
