//! Reference implementations of the sparse kernels the paper evaluates.
//!
//! These are functional stand-ins for the cuSPARSE kernels: `spmv_csr`
//! follows Algorithm 1 of the paper exactly, `spmv_coo` processes row-major
//! sorted triples, and `spmm_csr` multiplies by a dense row-major matrix
//! with `k` columns (the paper's `|N| x 4` and `|N| x 256` configurations).
//! The cache-trace generators in `commorder-cachesim` replay the same
//! array-level access patterns.

use crate::{CooMatrix, CsrMatrix, SparseError};

/// Sparse matrix times dense vector, CSR storage (Algorithm 1).
///
/// Computes `y = A * x`.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `x.len() != A.n_cols()`.
///
/// # Example
///
/// ```
/// use commorder_sparse::{CsrMatrix, kernels::spmv_csr};
///
/// # fn main() -> Result<(), commorder_sparse::SparseError> {
/// let a = CsrMatrix::new(2, 2, vec![0, 1, 2], vec![1, 0], vec![2.0, 3.0])?;
/// assert_eq!(spmv_csr(&a, &[1.0, 10.0])?, vec![20.0, 3.0]);
/// # Ok(())
/// # }
/// ```
pub fn spmv_csr(a: &CsrMatrix, x: &[f32]) -> Result<Vec<f32>, SparseError> {
    if x.len() != a.n_cols() as usize {
        return Err(SparseError::DimensionMismatch {
            expected: format!("x.len() == n_cols == {}", a.n_cols()),
            found: format!("x.len() == {}", x.len()),
        });
    }
    let mut y = vec![0f32; a.n_rows() as usize];
    for row in 0..a.n_rows() {
        let (cols, vals) = a.row(row);
        crate::debug_validate!(
            cols.windows(2).all(|w| w[0] < w[1]),
            "spmv_csr: row {row} columns must be strictly increasing"
        );
        let mut acc = 0f32;
        for (&c, &v) in cols.iter().zip(vals) {
            acc += v * x[c as usize];
        }
        y[row as usize] = acc;
    }
    Ok(y)
}

/// Sparse matrix times dense vector, COO storage.
///
/// Computes `y = A * x` by accumulating triples. Triples may be in any
/// order; the result is order-independent up to floating-point rounding.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `x.len() != A.n_cols()`.
pub fn spmv_coo(a: &CooMatrix, x: &[f32]) -> Result<Vec<f32>, SparseError> {
    if x.len() != a.n_cols() as usize {
        return Err(SparseError::DimensionMismatch {
            expected: format!("x.len() == n_cols == {}", a.n_cols()),
            found: format!("x.len() == {}", x.len()),
        });
    }
    let mut y = vec![0f32; a.n_rows() as usize];
    for &(r, c, v) in a.entries() {
        crate::debug_validate!(
            r < a.n_rows() && c < a.n_cols(),
            "spmv_coo: entry ({r}, {c}) outside {} x {}",
            a.n_rows(),
            a.n_cols()
        );
        y[r as usize] += v * x[c as usize];
    }
    Ok(y)
}

/// Sparse matrix times dense matrix (SpMM), CSR storage.
///
/// Computes `C = A * B` where `B` is dense row-major with `k` columns
/// (`b.len() == A.n_cols() * k`) and the returned `C` is dense row-major
/// with `A.n_rows() * k` elements.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `b.len() != A.n_cols() * k`
/// or `k == 0`.
pub fn spmm_csr(a: &CsrMatrix, b: &[f32], k: u32) -> Result<Vec<f32>, SparseError> {
    if k == 0 {
        return Err(SparseError::DimensionMismatch {
            expected: "k >= 1".to_string(),
            found: "k == 0".to_string(),
        });
    }
    let expect = a.n_cols() as usize * k as usize;
    if b.len() != expect {
        return Err(SparseError::DimensionMismatch {
            expected: format!("b.len() == n_cols * k == {expect}"),
            found: format!("b.len() == {}", b.len()),
        });
    }
    let k = k as usize;
    let mut c_out = vec![0f32; a.n_rows() as usize * k];
    for row in 0..a.n_rows() {
        let (cols, vals) = a.row(row);
        crate::debug_validate!(
            cols.last().is_none_or(|&c| c < a.n_cols()),
            "spmm_csr: row {row} column out of bounds"
        );
        let out = &mut c_out[row as usize * k..(row as usize + 1) * k];
        for (&c, &v) in cols.iter().zip(vals) {
            let b_row = &b[c as usize * k..(c as usize + 1) * k];
            for (o, &bv) in out.iter_mut().zip(b_row) {
                *o += v * bv;
            }
        }
    }
    Ok(c_out)
}

/// Column-tiled SpMV, CSR storage: `y = A * x` computed tile-by-tile so
/// that `X` accesses are bounded to `tile_cols` columns at a time (the
/// tiling optimization of the paper's §VII related work).
///
/// Numerically equivalent to [`spmv_csr`] up to floating-point
/// associativity (per-row partial sums accumulate across tiles).
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `x.len() != A.n_cols()`
/// or `tile_cols == 0`.
pub fn spmv_csr_tiled(a: &CsrMatrix, x: &[f32], tile_cols: u32) -> Result<Vec<f32>, SparseError> {
    if tile_cols == 0 {
        return Err(SparseError::DimensionMismatch {
            expected: "tile_cols >= 1".to_string(),
            found: "tile_cols == 0".to_string(),
        });
    }
    if x.len() != a.n_cols() as usize {
        return Err(SparseError::DimensionMismatch {
            expected: format!("x.len() == n_cols == {}", a.n_cols()),
            found: format!("x.len() == {}", x.len()),
        });
    }
    let mut y = vec![0f32; a.n_rows() as usize];
    let mut tile_start = 0u32;
    while tile_start < a.n_cols() {
        let tile_end = tile_start.saturating_add(tile_cols).min(a.n_cols());
        for row in 0..a.n_rows() {
            let (cols, vals) = a.row(row);
            // Rows are sorted: binary-search the tile's column range.
            let lo = cols.partition_point(|&c| c < tile_start);
            let hi = cols.partition_point(|&c| c < tile_end);
            crate::debug_validate!(
                lo <= hi && cols[lo..hi].iter().all(|&c| tile_start <= c && c < tile_end),
                "spmv_csr_tiled: row {row} tile [{tile_start}, {tile_end}) selected out-of-tile columns"
            );
            let mut acc = 0f32;
            for (&c, &v) in cols[lo..hi].iter().zip(&vals[lo..hi]) {
                acc += v * x[c as usize];
            }
            if hi > lo {
                y[row as usize] += acc;
            }
        }
        tile_start = tile_end;
    }
    Ok(y)
}

/// Propagation-blocking SpMV: `y = A * x` in two fully streaming phases
/// (the blocking optimization of the paper's §VII related work).
///
/// Phase 1 walks the matrix in CSC order so `x` is read sequentially,
/// multiplying each entry and appending `(row, partial)` to one of
/// `bins` buckets by destination-row range. Phase 2 drains each bucket,
/// accumulating into the corresponding bounded `y` range.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `x.len() != A.n_cols()`,
/// the matrix is not square, or `bins == 0`.
pub fn spmv_blocked(a: &CsrMatrix, x: &[f32], bins: u32) -> Result<Vec<f32>, SparseError> {
    if bins == 0 {
        return Err(SparseError::DimensionMismatch {
            expected: "bins >= 1".to_string(),
            found: "bins == 0".to_string(),
        });
    }
    if !a.is_square() {
        return Err(SparseError::DimensionMismatch {
            expected: "square matrix".to_string(),
            found: format!("{} x {}", a.n_rows(), a.n_cols()),
        });
    }
    if x.len() != a.n_cols() as usize {
        return Err(SparseError::DimensionMismatch {
            expected: format!("x.len() == n_cols == {}", a.n_cols()),
            found: format!("x.len() == {}", x.len()),
        });
    }
    let n = a.n_rows();
    let rows_per_bin = n.div_ceil(bins).max(1);
    let csc = crate::CscMatrix::from(a);
    let mut buckets: Vec<Vec<(u32, f32)>> = vec![Vec::new(); bins as usize];
    // Phase 1: stream columns, scatter partials into buckets.
    for c in 0..n {
        let xv = x[c as usize];
        let (rows, vals) = csc.col(c);
        for (&r, &v) in rows.iter().zip(vals) {
            crate::debug_validate!(
                r / rows_per_bin < bins,
                "spmv_blocked: row {r} maps past bin {bins}"
            );
            buckets[(r / rows_per_bin) as usize].push((r, v * xv));
        }
    }
    // Phase 2: drain buckets into bounded y ranges.
    let mut y = vec![0f32; n as usize];
    for bucket in &buckets {
        for &(r, contrib) in bucket {
            y[r as usize] += contrib;
        }
    }
    Ok(y)
}

/// Data-dependent cost profile of `C = A · B`, from one symbolic
/// Gustavson pass ([`spgemm_profile`]). These are the quantities the
/// SpGEMM trace generator and the compulsory-traffic accounting need:
/// the true multiply-add count, the output size, and the peak dense
/// accumulator occupancy per row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpGemmProfile {
    /// Multiply-add pairs (`Σ_r Σ_{k ∈ A_r} nnz(B_k)`); FLOPs are twice
    /// this.
    pub flops: u64,
    /// Stored entries of the result `C`.
    pub result_nnz: u64,
    /// Largest number of distinct result columns any single row
    /// produces — the per-row dense-accumulator peak.
    pub peak_row_nnz: u32,
}

/// Symbolic row-by-row Gustavson pass over `C = A · B`: counts
/// multiply-add pairs, result non-zeros, and the peak per-row
/// accumulator occupancy without materializing `C`. Runs in
/// `O(flops)` time with one `n_cols(B)`-length stamp array — the same
/// footprint the streaming trace generator models.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a.n_cols() != b.n_rows()`.
pub fn spgemm_profile(a: &CsrMatrix, b: &CsrMatrix) -> Result<SpGemmProfile, SparseError> {
    if a.n_cols() != b.n_rows() {
        return Err(SparseError::DimensionMismatch {
            expected: format!("b.n_rows() == a.n_cols() == {}", a.n_cols()),
            found: format!("b.n_rows() == {}", b.n_rows()),
        });
    }
    // Stamp array: stamp[j] == r+1 iff column j was already produced by
    // the current row r. One allocation, reused across all rows.
    let mut stamp = vec![0u32; b.n_cols() as usize];
    let mut flops = 0u64;
    let mut result_nnz = 0u64;
    let mut peak_row_nnz = 0u32;
    for r in 0..a.n_rows() {
        let (a_cols, _) = a.row(r);
        let mut row_nnz = 0u32;
        for &k in a_cols {
            let (b_cols, _) = b.row(k);
            flops += b_cols.len() as u64;
            for &j in b_cols {
                if stamp[j as usize] != r + 1 {
                    stamp[j as usize] = r + 1;
                    row_nnz += 1;
                }
            }
        }
        result_nnz += u64::from(row_nnz);
        peak_row_nnz = peak_row_nnz.max(row_nnz);
    }
    Ok(SpGemmProfile {
        flops,
        result_nnz,
        peak_row_nnz,
    })
}

/// Sparse × sparse multiply `C = A · B`, row-by-row Gustavson with a
/// dense accumulator (the reference numeric kernel behind the
/// [`crate::traffic::Kernel::SpGemmGustavson`] trace model). Each
/// output row is extracted in sorted column order, so the result is a
/// valid CSR matrix and is independent of `B`'s row traversal order up
/// to floating-point associativity.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a.n_cols() != b.n_rows()`
/// or the result's non-zero count overflows the CSR `u32` offset space.
pub fn spgemm(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix, SparseError> {
    let profile = spgemm_profile(a, b)?;
    if profile.result_nnz > u64::from(u32::MAX) {
        return Err(SparseError::DimensionMismatch {
            expected: "nnz(C) <= u32::MAX".to_string(),
            found: format!("nnz(C) == {}", profile.result_nnz),
        });
    }
    let n_out = b.n_cols() as usize;
    let mut acc = vec![0f32; n_out];
    let mut stamp = vec![0u32; n_out];
    let mut row_cols: Vec<u32> = Vec::new();
    let mut offsets = Vec::with_capacity(a.n_rows() as usize + 1);
    offsets.push(0u32);
    let mut out_cols = Vec::with_capacity(profile.result_nnz as usize);
    let mut out_vals = Vec::with_capacity(profile.result_nnz as usize);
    for r in 0..a.n_rows() {
        let (a_cols, a_vals) = a.row(r);
        row_cols.clear();
        for (&k, &av) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k);
            for (&j, &bv) in b_cols.iter().zip(b_vals) {
                if stamp[j as usize] != r + 1 {
                    stamp[j as usize] = r + 1;
                    acc[j as usize] = av * bv;
                    row_cols.push(j);
                } else {
                    acc[j as usize] += av * bv;
                }
            }
        }
        row_cols.sort_unstable();
        for &j in &row_cols {
            out_cols.push(j);
            out_vals.push(acc[j as usize]);
        }
        offsets.push(out_cols.len() as u32);
    }
    CsrMatrix::new(a.n_rows(), b.n_cols(), offsets, out_cols, out_vals)
}

/// Dense reference multiply used to validate the sparse kernels in tests:
/// interprets `a` as dense and computes `y = A * x` the naive way.
#[must_use]
pub fn dense_reference_spmv(a: &CsrMatrix, x: &[f32]) -> Vec<f32> {
    let mut dense = vec![0f32; a.n_rows() as usize * a.n_cols() as usize];
    for (r, c, v) in a.iter() {
        dense[r as usize * a.n_cols() as usize + c as usize] += v;
    }
    (0..a.n_rows() as usize)
        .map(|r| {
            (0..a.n_cols() as usize)
                .map(|c| dense[r * a.n_cols() as usize + c] * x[c])
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 3, 0],
        //  [4, 0, 5]]
        CsrMatrix::new(
            3,
            3,
            vec![0, 2, 3, 5],
            vec![0, 2, 1, 0, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn spmv_csr_matches_dense_reference() {
        let a = sample();
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(spmv_csr(&a, &x).unwrap(), dense_reference_spmv(&a, &x));
    }

    #[test]
    fn spmv_csr_rejects_bad_x() {
        assert!(spmv_csr(&sample(), &[1.0]).is_err());
    }

    #[test]
    fn spmv_coo_matches_csr() {
        let a = sample();
        let coo = CooMatrix::from(&a);
        let x = vec![1.0, -1.0, 0.5];
        assert_eq!(spmv_coo(&coo, &x).unwrap(), spmv_csr(&a, &x).unwrap());
    }

    #[test]
    fn spmv_coo_rejects_bad_x() {
        let coo = CooMatrix::from(&sample());
        assert!(spmv_coo(&coo, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn spmm_with_k1_matches_spmv() {
        let a = sample();
        let x = vec![2.0, 4.0, 8.0];
        assert_eq!(spmm_csr(&a, &x, 1).unwrap(), spmv_csr(&a, &x).unwrap());
    }

    #[test]
    fn spmm_k2_is_columnwise_spmv() {
        let a = sample();
        // B columns: [1,2,3] and [4,5,6], interleaved row-major.
        let b = vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0];
        let c = spmm_csr(&a, &b, 2).unwrap();
        let y0 = spmv_csr(&a, &[1.0, 2.0, 3.0]).unwrap();
        let y1 = spmv_csr(&a, &[4.0, 5.0, 6.0]).unwrap();
        for r in 0..3 {
            assert_eq!(c[r * 2], y0[r]);
            assert_eq!(c[r * 2 + 1], y1[r]);
        }
    }

    #[test]
    fn spmm_rejects_bad_dims() {
        let a = sample();
        assert!(spmm_csr(&a, &[1.0; 5], 2).is_err());
        assert!(spmm_csr(&a, &[], 0).is_err());
    }

    #[test]
    fn empty_matrix_yields_zero_vector() {
        let a = CsrMatrix::empty(4);
        assert_eq!(spmv_csr(&a, &[1.0; 4]).unwrap(), vec![0.0; 4]);
    }

    #[test]
    fn tiled_spmv_matches_untiled_for_every_tile_width() {
        let a = sample();
        let x = vec![1.5, -2.0, 4.0];
        let reference = spmv_csr(&a, &x).unwrap();
        for tile_cols in [1u32, 2, 3, 4, 100] {
            let y = spmv_csr_tiled(&a, &x, tile_cols).unwrap();
            for (got, want) in y.iter().zip(&reference) {
                assert!(
                    (got - want).abs() <= 1e-5 * want.abs().max(1.0),
                    "tile_cols {tile_cols}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn tiled_spmv_rejects_bad_args() {
        let a = sample();
        assert!(spmv_csr_tiled(&a, &[1.0; 3], 0).is_err());
        assert!(spmv_csr_tiled(&a, &[1.0; 2], 4).is_err());
    }

    #[test]
    fn blocked_spmv_matches_untiled_for_every_bin_count() {
        let a = sample();
        let x = vec![2.0, -1.0, 0.5];
        let reference = spmv_csr(&a, &x).unwrap();
        for bins in [1u32, 2, 3, 16] {
            let y = spmv_blocked(&a, &x, bins).unwrap();
            for (got, want) in y.iter().zip(&reference) {
                assert!(
                    (got - want).abs() <= 1e-5 * want.abs().max(1.0),
                    "bins {bins}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn blocked_spmv_rejects_bad_args() {
        let a = sample();
        assert!(spmv_blocked(&a, &[1.0; 3], 0).is_err());
        assert!(spmv_blocked(&a, &[1.0; 2], 4).is_err());
        let rect = CsrMatrix::new(1, 2, vec![0, 1], vec![1], vec![1.0]).unwrap();
        assert!(spmv_blocked(&rect, &[1.0; 2], 4).is_err());
    }

    /// `C = A · B` entry-by-entry against the dense triple loop.
    fn dense_reference_spgemm(a: &CsrMatrix, b: &CsrMatrix) -> Vec<f32> {
        let (n, m, p) = (
            a.n_rows() as usize,
            a.n_cols() as usize,
            b.n_cols() as usize,
        );
        let mut da = vec![0f32; n * m];
        for (r, c, v) in a.iter() {
            da[r as usize * m + c as usize] += v;
        }
        let mut db = vec![0f32; m * p];
        for (r, c, v) in b.iter() {
            db[r as usize * p + c as usize] += v;
        }
        let mut dc = vec![0f32; n * p];
        for i in 0..n {
            for k in 0..m {
                for j in 0..p {
                    dc[i * p + j] += da[i * m + k] * db[k * p + j];
                }
            }
        }
        dc
    }

    #[test]
    fn spgemm_matches_dense_reference() {
        let a = sample();
        let c = spgemm(&a, &a).unwrap();
        let dense = dense_reference_spgemm(&a, &a);
        let p = a.n_cols() as usize;
        let mut got = vec![0f32; dense.len()];
        for (r, j, v) in c.iter() {
            got[r as usize * p + j as usize] = v;
        }
        for (g, w) in got.iter().zip(&dense) {
            assert!((g - w).abs() <= 1e-5 * w.abs().max(1.0), "{g} vs {w}");
        }
    }

    #[test]
    fn spgemm_profile_matches_materialized_result() {
        let a = sample();
        let profile = spgemm_profile(&a, &a).unwrap();
        let c = spgemm(&a, &a).unwrap();
        assert_eq!(profile.result_nnz, c.nnz() as u64);
        let peak = (0..c.n_rows()).map(|r| c.row(r).0.len()).max().unwrap();
        assert_eq!(profile.peak_row_nnz as usize, peak);
        // flops = Σ over A entries of nnz(B row): rows of `sample` hold
        // {0,2}, {1}, {0,2} entries with B-row sizes 2,1,2 -> 2+2+1+2+2.
        assert_eq!(profile.flops, 9);
    }

    #[test]
    fn spgemm_rejects_shape_mismatch() {
        let a = CsrMatrix::new(1, 2, vec![0, 1], vec![1], vec![1.0]).unwrap();
        let b = CsrMatrix::new(3, 1, vec![0, 0, 1, 1], vec![0], vec![1.0]).unwrap();
        assert!(spgemm(&a, &b).is_err());
        assert!(spgemm_profile(&a, &b).is_err());
    }

    #[test]
    fn spgemm_handles_rectangular_operands() {
        // 2x3 times 3x2.
        let a = CsrMatrix::new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0]).unwrap();
        let b = CsrMatrix::new(3, 2, vec![0, 1, 2, 3], vec![1, 0, 0], vec![4.0, 5.0, 6.0]).unwrap();
        let c = spgemm(&a, &b).unwrap();
        assert_eq!((c.n_rows(), c.n_cols()), (2, 2));
        // Row 0: 1*B[0] + 2*B[2] = (12, 4); row 1: 3*B[1] = (15, 0).
        let entries: Vec<_> = c.iter().collect();
        assert_eq!(entries, vec![(0, 0, 12.0), (0, 1, 4.0), (1, 0, 15.0)]);
    }
}
