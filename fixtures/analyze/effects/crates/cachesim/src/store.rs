//! Cache store: reads its warm-start image straight from disk, which
//! a declared-pure crate must never do.

/// I/O in a pure crate: loads the warm-start image.
pub fn warm_start(path: &str) -> usize {
    match std::fs::read_to_string(path) {
        Ok(text) => text.len(),
        Err(_) => 0,
    }
}
