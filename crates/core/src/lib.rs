//! `commorder` — community-based matrix reordering for sparse linear
//! algebra optimization.
//!
//! A complete reproduction of *"Community-based Matrix Reordering for
//! Sparse Linear Algebra Optimization"* (Balaji, Crago, Jaleel, Keckler —
//! ISPASS 2023) as a reusable Rust library. The facade ties the
//! subsystem crates together:
//!
//! * [`sparse`] — formats, kernels, permutations, compulsory traffic,
//! * [`synth`] — the deterministic 50-matrix evaluation corpus,
//! * [`reorder`] — DEGSORT / DBG / GORDER / RCM / RABBIT / RABBIT++ and
//!   the community-quality metrics,
//! * [`cachesim`] — the A6000 L2 simulator (LRU + Belady, dead lines),
//! * [`gpumodel`] — ideal/estimated run times on the A6000,
//! * [`obs`] — zero-dependency structured telemetry (span timers,
//!   counters, JSONL/registry sinks) threaded through the pipeline,
//!   engine and cache simulator,
//! * [`srclint`] — the token-stream source analyzer behind
//!   `xtask lint` and `commorder-cli analyze --source`,
//!
//! and adds the experiment plumbing: [`Pipeline`] (matrix → reorder →
//! simulate → metrics), [`analysis`] helpers (insularity splits, means)
//! and [`report`] (plain-text tables shaped like the paper's).
//!
//! # Quickstart
//!
//! ```
//! use commorder::prelude::*;
//!
//! # fn main() -> Result<(), commorder::sparse::SparseError> {
//! // A small community-structured matrix, published in scrambled order.
//! let matrix = commorder::synth::generators::PlantedPartition::uniform(2048, 32, 10.0, 0.05)
//!     .generate(7)?;
//!
//! let pipeline = Pipeline::new(GpuSpec::test_scale());
//! let original = pipeline.evaluate(&matrix, &Original)?;
//! let rabbit = pipeline.evaluate(&matrix, &Rabbit::new())?;
//! assert!(rabbit.run.traffic_ratio <= original.run.traffic_ratio * 1.05);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use commorder_analyze as srclint;
pub use commorder_cachesim as cachesim;
pub use commorder_check as check;
pub use commorder_exec as exec;
pub use commorder_gpumodel as gpumodel;
pub use commorder_obs as obs;
pub use commorder_reorder as reorder;
pub use commorder_sparse as sparse;
pub use commorder_synth as synth;

pub mod analysis;
pub mod cli;
pub mod experiment;
pub mod pipeline;
pub mod report;
pub mod viz;

pub use experiment::{ExperimentResult, ExperimentSpec, NamedMatrix, RunRecord};
pub use pipeline::{Evaluation, KernelRun, Pipeline, PipelineBuilder, ReplacementPolicy};

/// One-stop imports for examples and experiment binaries.
pub mod prelude {
    pub use crate::analysis::{arith_mean_ratio, geo_mean_ratio, InsularitySplit};
    pub use crate::cachesim::{
        trace::ExecutionModel, CacheConfig, CacheStats, LruCache, TraceSource,
    };
    pub use crate::exec::{Engine, EngineStats, JobTiming};
    pub use crate::experiment::{ExperimentResult, ExperimentSpec, NamedMatrix, RunRecord};
    pub use crate::gpumodel::GpuSpec;
    pub use crate::obs::{JsonlSink, MemorySink, Registry, Sink};
    pub use crate::pipeline::{
        Evaluation, KernelRun, Pipeline, PipelineBuilder, ReplacementPolicy,
    };
    pub use crate::reorder::{
        paper_suite, parse_technique_list, technique_by_name, Boba, Dbg, DegSort, Gorder, HubGroup,
        HubPolicy, HubSort, Original, Rabbit, RabbitPlusPlus, RabbitPlusPlusConfig, RandomOrder,
        Rcm, RcmPlusPlus, ReorderContext, Reordering,
    };
    pub use crate::report::Table;
    pub use crate::sparse::{traffic::Kernel, CooMatrix, CsrMatrix, Permutation};
    pub use crate::synth::corpus;
}
