//! Matrix reordering techniques and community-quality metrics — the
//! algorithmic heart of the ISPASS'23 reproduction.
//!
//! Implements every ordering the paper evaluates (§IV-A):
//!
//! * [`Original`] — the publisher's ordering (identity permutation),
//! * [`RandomOrder`] — uniformly random IDs,
//! * [`DegSort`] — decreasing in-degree sort,
//! * [`Dbg`] — degree-based grouping (Faldu et al.),
//! * [`Gorder`] — greedy sliding-window locality maximization (Wei et al.),
//! * [`Rabbit`] — community-based ordering via incremental
//!   modularity-maximizing aggregation (Arai et al.),
//! * [`RabbitPlusPlus`] — the paper's contribution: RABBIT + insular-node
//!   grouping + hub grouping (§VI), with the full Table II design space,
//!
//! plus the referenced baselines [`HubSort`], [`HubGroup`], [`Rcm`]
//! (Reverse Cuthill–McKee), [`SlashBurn`] (the paper's \[31\]) and
//! [`Bisection`] (the partitioning family of \[24\]/\[39\]), and the
//! analysis metrics of §V
//! ([`quality::insularity`], [`quality::insular_nodes`],
//! [`quality::modularity`]).
//!
//! # Example
//!
//! ```
//! use commorder_reorder::{Rabbit, Reordering};
//! use commorder_synth::generators::PlantedPartition;
//!
//! # fn main() -> Result<(), commorder_sparse::SparseError> {
//! let g = PlantedPartition::uniform(512, 16, 8.0, 0.05).generate(7)?;
//! let perm = Rabbit::new().reorder(&g)?;
//! let reordered = g.permute_symmetric(&perm)?;
//! assert_eq!(reordered.nnz(), g.nnz());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bisect;
mod boba;
mod context;
mod degree;
mod gorder;
mod labelprop;
mod par;
mod rabbit;
mod rabbitpp;
mod rcm;
mod registry;
mod slashburn;

pub mod advisor;
pub mod community;
pub mod locality;
pub mod quality;

pub use bisect::Bisection;
pub use boba::Boba;
pub use context::ReorderContext;
pub use degree::{Dbg, DegSort, HubGroup, HubSort, Original, RandomOrder};
pub use gorder::Gorder;
pub use labelprop::LabelPropagation;
pub use rabbit::{FlatCommunity, Rabbit, RabbitResult};
pub use rabbitpp::{HubPolicy, RabbitPlusPlus, RabbitPlusPlusConfig};
pub use rcm::{Rcm, RcmPlusPlus};
pub use registry::{parse_technique_list, technique_by_name, TECHNIQUE_NAMES};
pub use slashburn::SlashBurn;

use commorder_sparse::{CsrMatrix, Permutation, SparseError};

/// A vertex/row reordering technique.
///
/// Implementations produce a [`Permutation`] mapping old IDs to new IDs;
/// apply it with [`CsrMatrix::permute_symmetric`] to obtain the reordered
/// matrix. Implementations must accept any square matrix (directed inputs
/// are symmetrized internally where the algorithm needs an undirected
/// view).
pub trait Reordering: Send + Sync {
    /// Short display name matching the paper's figures (e.g. `"RABBIT"`).
    fn name(&self) -> &str;

    /// Computes the permutation for `a`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `a` is not square;
    /// implementations may surface further sparse-layer errors.
    fn reorder(&self, a: &CsrMatrix) -> Result<Permutation, SparseError>;

    /// Computes the permutation for `a` with an execution context.
    ///
    /// Techniques with parallel phases (RABBIT, RABBIT++, BOBA) fan work
    /// out on `cx.engine()`; the result must be byte-identical to
    /// [`Reordering::reorder`] at any thread count. The default
    /// implementation ignores the context and delegates to the serial
    /// path, so purely sequential techniques need not opt in.
    ///
    /// # Errors
    ///
    /// Same contract as [`Reordering::reorder`].
    fn reorder_with(
        &self,
        a: &CsrMatrix,
        cx: &ReorderContext<'_>,
    ) -> Result<Permutation, SparseError> {
        let _ = cx;
        self.reorder(a)
    }
}

/// The six orderings of Fig. 2, in the paper's presentation order,
/// followed by RABBIT++ (Fig. 7 onward). `seed` feeds the RANDOM ordering.
///
/// A thin view over the technique [registry](technique_by_name): each
/// member is the registry's binding for that name.
#[must_use]
pub fn paper_suite(seed: u64) -> Vec<Box<dyn Reordering>> {
    [
        "random", "original", "degsort", "dbg", "gorder", "rabbit", "rabbit++",
    ]
    .iter()
    .map(|name| {
        technique_by_name(name, seed)
            .unwrap_or_else(|| unreachable!("paper suite names are registered"))
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_synth::generators::PlantedPartition;

    #[test]
    fn paper_suite_names_match_figure2_plus_rabbitpp() {
        let suite = paper_suite(1);
        let names: Vec<_> = suite.iter().map(|t| t.name().to_string()).collect();
        assert_eq!(
            names,
            vec!["RANDOM", "ORIGINAL", "DEGSORT", "DBG", "GORDER", "RABBIT", "RABBIT++"]
        );
    }

    #[test]
    fn every_suite_member_yields_a_valid_permutation() {
        let g = PlantedPartition::uniform(256, 8, 6.0, 0.1)
            .generate(3)
            .unwrap();
        for t in paper_suite(2) {
            let p = t.reorder(&g).unwrap();
            assert_eq!(p.len(), 256, "{} wrong length", t.name());
            // Permutation validity is enforced by construction; applying it
            // must preserve the non-zero count.
            let r = g.permute_symmetric(&p).unwrap();
            assert_eq!(r.nnz(), g.nnz(), "{} lost entries", t.name());
        }
    }

    #[test]
    fn reordering_is_object_safe() {
        fn takes_dyn(_: &dyn Reordering) {}
        takes_dyn(&Original);
    }
}
