//! The `struct Pipeline` seed with one hazard of its own.

/// Seed type: files defining `Pipeline` join the closure.
pub struct Pipeline {
    /// Wall-clock start.
    pub started: std::time::Instant,
}
