//! Microbenchmarks for the reordering techniques' own cost — the
//! pre-processing overhead axis of Fig. 9, at microbenchmark scale.

use commorder::prelude::*;
use commorder::reorder::{Bisection, FlatCommunity, LabelPropagation, SlashBurn};
use commorder::synth::generators::CommunityHub;
use commorder_bench::microbench::Runner;

fn fixture() -> CsrMatrix {
    CommunityHub {
        n: 4096,
        communities: 64,
        intra_degree: 10.0,
        hub_fraction: 0.02,
        hub_degree: 20.0,
        mixing: 0.08,
        scramble_ids: true,
    }
    .generate(88)
    .expect("valid generator config")
}

fn bench_reorderings(runner: &Runner) {
    let a = fixture();
    let techniques: Vec<Box<dyn Reordering>> = vec![
        Box::new(RandomOrder::new(1)),
        Box::new(DegSort),
        Box::new(Dbg::default()),
        Box::new(HubGroup),
        Box::new(Rcm),
        Box::new(Gorder::default()),
        Box::new(SlashBurn::default()),
        Box::new(Bisection::default()),
        Box::new(LabelPropagation::default()),
        Box::new(FlatCommunity::new(1)),
        Box::new(Rabbit::new()),
        Box::new(RabbitPlusPlus::new()),
    ];
    println!("== reorder ==");
    for technique in &techniques {
        runner.bench(technique.name(), Some(a.nnz() as u64), || {
            technique.reorder(&a).expect("square fixture")
        });
    }
}

fn bench_permute(runner: &Runner) {
    let a = fixture();
    let perm = Rabbit::new().reorder(&a).expect("square fixture");
    runner.bench("permute_symmetric", Some(a.nnz() as u64), || {
        a.permute_symmetric(&perm).expect("validated")
    });
}

fn main() {
    let runner = Runner::from_env();
    bench_reorderings(&runner);
    bench_permute(&runner);
}
