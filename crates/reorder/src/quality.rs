//! Community-quality metrics from §V of the paper: **modularity** (the
//! quantity RABBIT maximizes), **insularity** (the paper's visualizable
//! proxy), **insular nodes** (the basis of RABBIT++'s first modification)
//! and community-size summaries.

use commorder_exec::Engine;
use commorder_sparse::{CsrMatrix, SparseError};

/// Minimum rows per insular-scan chunk; below this the serial scan wins.
const ROWS_PER_CHUNK: usize = 4096;

fn validate(a: &CsrMatrix, assignment: &[u32]) -> Result<(), SparseError> {
    if !a.is_square() {
        return Err(SparseError::DimensionMismatch {
            expected: "square matrix".to_string(),
            found: format!("{} x {}", a.n_rows(), a.n_cols()),
        });
    }
    if assignment.len() != a.n_rows() as usize {
        return Err(SparseError::DimensionMismatch {
            expected: format!("assignment of length {}", a.n_rows()),
            found: format!("assignment of length {}", assignment.len()),
        });
    }
    Ok(())
}

/// **Insularity** (§V-A): the fraction of edges that connect members of
/// the same community. Ranges over `[0, 1]`; the paper's Fig. 1 example
/// evaluates to 20/24 ≈ 0.83. Returns 1.0 for an edgeless graph
/// (vacuously insular).
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] on a non-square matrix or a
/// wrong-length assignment.
pub fn insularity(a: &CsrMatrix, assignment: &[u32]) -> Result<f64, SparseError> {
    validate(a, assignment)?;
    if a.nnz() == 0 {
        return Ok(1.0);
    }
    let intra = a
        .iter()
        .filter(|&(r, c, _)| assignment[r as usize] == assignment[c as usize])
        .count();
    Ok(intra as f64 / a.nnz() as f64)
}

/// **Insular nodes** (§VI-A): `mask[v]` is `true` when every neighbour of
/// `v` (row *and* column entries — the full undirected neighbourhood)
/// belongs to `v`'s community. Isolated vertices are vacuously insular.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] on a non-square matrix or a
/// wrong-length assignment.
pub fn insular_nodes(a: &CsrMatrix, assignment: &[u32]) -> Result<Vec<bool>, SparseError> {
    insular_nodes_with(a, assignment, &Engine::serial())
}

/// [`insular_nodes`] fanned out on `engine`: each job scans a row range
/// and reports the vertices its cross-community entries clear (both
/// endpoints), and the sparse clear-lists are applied to one mask.
/// Clearing is commutative and idempotent, so the result is
/// byte-identical to the serial scan at any thread count.
///
/// # Errors
///
/// See [`insular_nodes`].
pub fn insular_nodes_with(
    a: &CsrMatrix,
    assignment: &[u32],
    engine: &Engine,
) -> Result<Vec<bool>, SparseError> {
    validate(a, assignment)?;
    let n = a.n_rows() as usize;
    let mut mask = vec![true; n];
    // Range count depends on the row count alone so the nested span
    // layout is identical at every thread count.
    let ranges = crate::par::fixed_chunks_u32(n, ROWS_PER_CHUNK);
    if ranges.len() <= 1 {
        for (r, c, _) in a.iter() {
            if assignment[r as usize] != assignment[c as usize] {
                mask[r as usize] = false;
                mask[c as usize] = false;
            }
        }
        return Ok(mask);
    }
    let cleared_lists = engine.map(&ranges, |_, &(start, end)| {
        let mut cleared = Vec::new();
        for r in start..end {
            let (cols, _) = a.row(r);
            for &c in cols {
                if assignment[r as usize] != assignment[c as usize] {
                    cleared.push(r);
                    cleared.push(c);
                }
            }
        }
        cleared
    });
    for cleared in cleared_lists {
        for v in cleared {
            mask[v as usize] = false;
        }
    }
    Ok(mask)
}

/// Fraction of nodes that are insular (Fig. 4's y-axis).
///
/// # Errors
///
/// See [`insular_nodes`].
pub fn insular_fraction(a: &CsrMatrix, assignment: &[u32]) -> Result<f64, SparseError> {
    let mask = insular_nodes(a, assignment)?;
    if mask.is_empty() {
        return Ok(1.0);
    }
    Ok(mask.iter().filter(|&&b| b).count() as f64 / mask.len() as f64)
}

/// Newman–Girvan **modularity** \[34\] of an assignment on the undirected
/// view of `a`:
/// `Q = Σ_c [ w_in(c)/m − (d(c)/(2m))² ]`, where `m` is the total edge
/// weight, `w_in(c)` the weight inside community `c` and `d(c)` its total
/// incident weight. `a` must already be symmetric (community detection
/// symmetrizes before calling this). Returns 0 for an edgeless graph.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] on a non-square matrix or a
/// wrong-length assignment.
pub fn modularity(a: &CsrMatrix, assignment: &[u32]) -> Result<f64, SparseError> {
    validate(a, assignment)?;
    let k = assignment
        .iter()
        .map(|&c| c as usize + 1)
        .max()
        .unwrap_or(0);
    let mut w_in = vec![0f64; k];
    let mut d = vec![0f64; k];
    let mut total = 0f64;
    for (r, c, v) in a.iter() {
        let v = f64::from(v);
        total += v;
        d[assignment[r as usize] as usize] += v;
        if assignment[r as usize] == assignment[c as usize] {
            w_in[assignment[r as usize] as usize] += v;
        }
    }
    if total == 0.0 {
        return Ok(0.0);
    }
    // `total` counted each undirected edge twice (symmetric storage), so
    // 2m = total, w_in and d likewise double-counted consistently.
    let two_m = total;
    let q: f64 = (0..k)
        .map(|c| w_in[c] / two_m - (d[c] / two_m).powi(2))
        .sum();
    Ok(q)
}

/// Summary of detected community sizes used in §V's analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityStats {
    /// Number of communities.
    pub count: usize,
    /// Mean community size in vertices.
    pub mean_size: f64,
    /// Largest community size.
    pub max_size: u32,
    /// Mean size normalized to the number of vertices (the paper's
    /// "average community size normalized to the number of nodes").
    pub mean_size_normalized: f64,
    /// Largest community as a fraction of all vertices (the mawi
    /// discussion: "the largest community ... corresponds to nearly 98%
    /// of the matrix").
    pub max_size_fraction: f64,
}

impl CommunityStats {
    /// Computes the summary from per-community sizes.
    #[must_use]
    pub fn from_sizes(sizes: &[u32]) -> CommunityStats {
        let n: u64 = sizes.iter().map(|&s| u64::from(s)).sum();
        let max = sizes.iter().copied().max().unwrap_or(0);
        let count = sizes.len();
        let mean = if count == 0 {
            0.0
        } else {
            n as f64 / count as f64
        };
        CommunityStats {
            count,
            mean_size: mean,
            max_size: max,
            mean_size_normalized: if n == 0 { 0.0 } else { mean / n as f64 },
            max_size_fraction: if n == 0 {
                0.0
            } else {
                f64::from(max) / n as f64
            },
        }
    }
}

/// Accumulator footprint of a Gustavson SpGEMM self-multiply `A x A`
/// under a community assignment: how many distinct result columns the
/// dense accumulator must hold per row, and per community when the rows
/// of each community execute as one block (cluster-wise execution).
///
/// A small `peak_cluster / peak_row` ratio is the structural signal that
/// cluster-wise execution keeps the accumulator cache-resident: the
/// block's rows share their result columns instead of multiplying them.
#[derive(Debug, Clone, PartialEq)]
pub struct AccumulatorStats {
    /// Largest per-row distinct-result-column count.
    pub peak_row: u64,
    /// Mean per-row distinct-result-column count.
    pub mean_row: f64,
    /// Largest per-community union of result columns.
    pub peak_cluster: u64,
    /// Mean per-community union size over populated communities.
    pub mean_cluster: f64,
}

/// Computes [`AccumulatorStats`] for the self-multiply `A x A` by two
/// stamp-array scans (per row, then per community block); no result is
/// materialized, so the cost is `O(flops)` time and `O(n)` space.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] on a non-square matrix or a
/// wrong-length assignment.
pub fn accumulator_working_set(
    a: &CsrMatrix,
    assignment: &[u32],
) -> Result<AccumulatorStats, SparseError> {
    validate(a, assignment)?;
    let n = a.n_rows();
    let mut stamp = vec![0u32; a.n_cols() as usize];
    let distinct_result_cols =
        |rows: &mut dyn Iterator<Item = u32>, epoch: u32, stamp: &mut [u32]| -> u64 {
            let mut distinct = 0u64;
            for r in rows {
                let (mids, _) = a.row(r);
                for &k in mids {
                    let (cols, _) = a.row(k);
                    for &j in cols {
                        if stamp[j as usize] != epoch {
                            stamp[j as usize] = epoch;
                            distinct += 1;
                        }
                    }
                }
            }
            distinct
        };

    let mut peak_row = 0u64;
    let mut total_row = 0u64;
    for r in 0..n {
        let d = distinct_result_cols(&mut std::iter::once(r), r + 1, &mut stamp);
        peak_row = peak_row.max(d);
        total_row += d;
    }

    // Community pass: rows grouped by assignment, one epoch per
    // populated community. A fresh stamp epoch space avoids collisions
    // with the per-row pass.
    stamp.fill(0);
    let n_comms = assignment
        .iter()
        .map(|&c| c as usize + 1)
        .max()
        .unwrap_or(0);
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_comms];
    for (r, &c) in assignment.iter().enumerate() {
        members[c as usize].push(r as u32);
    }
    let mut peak_cluster = 0u64;
    let mut total_cluster = 0u64;
    let mut populated = 0u64;
    for (c, rows) in members.iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        populated += 1;
        let d = distinct_result_cols(&mut rows.iter().copied(), c as u32 + 1, &mut stamp);
        peak_cluster = peak_cluster.max(d);
        total_cluster += d;
    }

    Ok(AccumulatorStats {
        peak_row,
        mean_row: if n == 0 {
            0.0
        } else {
            total_row as f64 / f64::from(n)
        },
        peak_cluster,
        mean_cluster: if populated == 0 {
            0.0
        } else {
            total_cluster as f64 / populated as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_sparse::CooMatrix;

    /// A Fig.-1-style example: 9 vertices in 3 triangle communities linked
    /// by 2 inter-community edges — 9 intra undirected edges (18 stored
    /// entries) and 2 inter (4 entries), so insularity is 18/22.
    fn fig1() -> (CsrMatrix, Vec<u32>) {
        let intra = [
            (0, 1),
            (1, 2),
            (0, 2), // community 0
            (3, 4),
            (4, 5),
            (3, 5), // community 1
            (6, 7),
            (7, 8),
            (6, 8), // community 2
        ];
        let inter = [(2, 3), (5, 6)];
        let entries: Vec<_> = intra
            .iter()
            .chain(inter.iter())
            .flat_map(|&(u, v)| [(u, v, 1.0), (v, u, 1.0)])
            .collect();
        let m = CsrMatrix::try_from(CooMatrix::from_entries(9, 9, entries).unwrap()).unwrap();
        let assignment = vec![0, 0, 0, 1, 1, 1, 2, 2, 2];
        (m, assignment)
    }

    #[test]
    fn insularity_matches_hand_count() {
        let (m, comm) = fig1();
        // 9 intra undirected edges -> 18 intra entries; 2 inter -> 4.
        let ins = insularity(&m, &comm).unwrap();
        assert!((ins - 18.0 / 22.0).abs() < 1e-12, "ins = {ins}");
    }

    #[test]
    fn insularity_bounds() {
        let (m, comm) = fig1();
        // One community: insularity 1.
        assert_eq!(insularity(&m, &[0; 9]).unwrap(), 1.0);
        // All singletons: insularity 0 (no self loops).
        let singletons: Vec<u32> = (0..9).collect();
        assert_eq!(insularity(&m, &singletons).unwrap(), 0.0);
        // Proper assignment in between.
        let ins = insularity(&m, &comm).unwrap();
        assert!(ins > 0.0 && ins < 1.0);
    }

    #[test]
    fn insular_nodes_are_the_untouched_interiors() {
        let (m, comm) = fig1();
        let mask = insular_nodes(&m, &comm).unwrap();
        // Vertices 2,3 and 5,6 sit on inter-community edges.
        assert!(!mask[2] && !mask[3] && !mask[5] && !mask[6]);
        assert!(mask[0] && mask[1] && mask[4] && mask[7] && mask[8]);
        let frac = insular_fraction(&m, &comm).unwrap();
        assert!((frac - 5.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_vertices_are_insular() {
        let m = CsrMatrix::empty(3);
        let mask = insular_nodes(&m, &[0, 1, 2]).unwrap();
        assert_eq!(mask, vec![true; 3]);
        assert_eq!(insularity(&m, &[0, 1, 2]).unwrap(), 1.0);
    }

    #[test]
    fn modularity_of_good_split_beats_single_blob() {
        let (m, comm) = fig1();
        let good = modularity(&m, &comm).unwrap();
        let blob = modularity(&m, &[0; 9]).unwrap();
        assert!(good > blob, "good {good} vs blob {blob}");
        // Single community has Q = w_in/2m - 1 = 0 when all edges internal.
        assert!(blob.abs() < 1e-12);
    }

    #[test]
    fn modularity_is_bounded() {
        let (m, comm) = fig1();
        let q = modularity(&m, &comm).unwrap();
        assert!((-0.5..=1.0).contains(&q));
    }

    #[test]
    fn dimension_mismatches_error() {
        let (m, _) = fig1();
        assert!(insularity(&m, &[0, 1]).is_err());
        assert!(modularity(&m, &[0, 1]).is_err());
        assert!(insular_nodes(&m, &[0, 1]).is_err());
    }

    #[test]
    fn community_stats_basics() {
        let s = CommunityStats::from_sizes(&[5, 3, 2]);
        assert_eq!(s.count, 3);
        assert_eq!(s.max_size, 5);
        assert!((s.mean_size - 10.0 / 3.0).abs() < 1e-12);
        assert!((s.max_size_fraction - 0.5).abs() < 1e-12);
        assert!((s.mean_size_normalized - (10.0 / 3.0) / 10.0).abs() < 1e-12);
    }

    #[test]
    fn community_stats_empty() {
        let s = CommunityStats::from_sizes(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_size, 0.0);
        assert_eq!(s.max_size_fraction, 0.0);
    }
}

/// Adjusted Rand Index between two community assignments over the same
/// vertex set — the standard chance-corrected agreement measure for
/// validating detection against planted ground truth (1.0 = identical
/// partitions up to relabelling, ~0.0 = chance agreement).
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if the assignments differ
/// in length.
pub fn adjusted_rand_index(a: &[u32], b: &[u32]) -> Result<f64, SparseError> {
    if a.len() != b.len() {
        return Err(SparseError::DimensionMismatch {
            expected: format!("assignments of equal length {}", a.len()),
            found: format!("lengths {} and {}", a.len(), b.len()),
        });
    }
    let n = a.len();
    if n < 2 {
        return Ok(1.0);
    }
    // Contingency table via a hash map (community ids may be sparse).
    let mut joint: std::collections::HashMap<(u32, u32), u64> = std::collections::HashMap::new();
    let mut rows: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    let mut cols: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        *joint.entry((x, y)).or_insert(0) += 1;
        *rows.entry(x).or_insert(0) += 1;
        *cols.entry(y).or_insert(0) += 1;
    }
    let choose2 = |k: u64| -> f64 { (k * k.saturating_sub(1)) as f64 / 2.0 };
    let sum_joint: f64 = joint.values().map(|&k| choose2(k)).sum();
    let sum_rows: f64 = rows.values().map(|&k| choose2(k)).sum();
    let sum_cols: f64 = cols.values().map(|&k| choose2(k)).sum();
    let total = choose2(n as u64);
    let expected = sum_rows * sum_cols / total;
    let max_index = (sum_rows + sum_cols) / 2.0;
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate (e.g. both partitions are single blobs): identical
        // by construction.
        return Ok(1.0);
    }
    Ok((sum_joint - expected) / (max_index - expected))
}

/// Normalized Mutual Information between two assignments (arithmetic
/// normalization), in `[0, 1]`; 1.0 = identical up to relabelling.
/// Returns 1.0 when both partitions are trivial (zero entropy).
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if the assignments differ
/// in length.
pub fn normalized_mutual_information(a: &[u32], b: &[u32]) -> Result<f64, SparseError> {
    if a.len() != b.len() {
        return Err(SparseError::DimensionMismatch {
            expected: format!("assignments of equal length {}", a.len()),
            found: format!("lengths {} and {}", a.len(), b.len()),
        });
    }
    let n = a.len() as f64;
    if a.is_empty() {
        return Ok(1.0);
    }
    let mut joint: std::collections::HashMap<(u32, u32), f64> = std::collections::HashMap::new();
    let mut pa: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    let mut pb: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        *joint.entry((x, y)).or_insert(0.0) += 1.0;
        *pa.entry(x).or_insert(0.0) += 1.0;
        *pb.entry(y).or_insert(0.0) += 1.0;
    }
    let entropy = |p: &std::collections::HashMap<u32, f64>| -> f64 {
        p.values()
            .map(|&c| {
                let q = c / n;
                -q * q.ln()
            })
            .sum()
    };
    let ha = entropy(&pa);
    let hb = entropy(&pb);
    if ha == 0.0 && hb == 0.0 {
        return Ok(1.0);
    }
    let mut mi = 0.0;
    for (&(x, y), &c) in &joint {
        let pxy = c / n;
        let px = pa[&x] / n;
        let py = pb[&y] / n;
        mi += pxy * (pxy / (px * py)).ln();
    }
    Ok((2.0 * mi / (ha + hb)).clamp(0.0, 1.0))
}

#[cfg(test)]
mod agreement_tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        // Relabelling does not matter.
        let b = vec![5, 5, 9, 9, 1, 1];
        assert!((adjusted_rand_index(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_score_near_zero() {
        // a splits by half, b alternates: statistically independent.
        let a: Vec<u32> = (0..400).map(|i| u32::from(i >= 200)).collect();
        let b: Vec<u32> = (0..400).map(|i| i % 2).collect();
        let ari = adjusted_rand_index(&a, &b).unwrap();
        assert!(ari.abs() < 0.05, "ari = {ari}");
        let nmi = normalized_mutual_information(&a, &b).unwrap();
        assert!(nmi < 0.05, "nmi = {nmi}");
    }

    #[test]
    fn partial_agreement_is_intermediate() {
        let a = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0, 0, 0, 1, 1, 1, 1, 1]; // one vertex moved
        let ari = adjusted_rand_index(&a, &b).unwrap();
        assert!(ari > 0.3 && ari < 1.0, "ari = {ari}");
    }

    #[test]
    fn length_mismatch_errors() {
        assert!(adjusted_rand_index(&[0, 1], &[0]).is_err());
        assert!(normalized_mutual_information(&[0], &[0, 1]).is_err());
    }

    #[test]
    fn accumulator_working_set_matches_hand_count() {
        // rows: 0 -> {1}, 1 -> {0, 2}, 2 -> {1}, 3 -> {}.
        // A x A result columns: row 0 -> {0, 2}; row 1 -> {1};
        // row 2 -> {0, 2}; row 3 -> {}.
        let m = commorder_sparse::CsrMatrix::new(
            4,
            4,
            vec![0, 1, 3, 4, 4],
            vec![1, 0, 2, 1],
            vec![1.0; 4],
        )
        .unwrap();
        let s = accumulator_working_set(&m, &[1, 0, 1, 0]).unwrap();
        assert_eq!(s.peak_row, 2);
        assert!((s.mean_row - 5.0 / 4.0).abs() < 1e-12, "{}", s.mean_row);
        // community 0 = rows {1, 3} -> {1}; community 1 = rows {0, 2}
        // -> {0, 2}.
        assert_eq!(s.peak_cluster, 2);
        assert!(
            (s.mean_cluster - 3.0 / 2.0).abs() < 1e-12,
            "{}",
            s.mean_cluster
        );
        // One blob unions every row: {0, 1, 2}.
        let blob = accumulator_working_set(&m, &[0; 4]).unwrap();
        assert_eq!(blob.peak_cluster, 3);
        // Singleton communities degenerate to the per-row footprint.
        let singles = accumulator_working_set(&m, &[0, 1, 2, 3]).unwrap();
        assert_eq!(singles.peak_cluster, singles.peak_row);
        assert!((singles.mean_cluster - singles.mean_row).abs() < 1e-12);
    }

    #[test]
    fn accumulator_working_set_validates_inputs() {
        let m = commorder_sparse::CsrMatrix::new(1, 2, vec![0, 1], vec![1], vec![1.0]).unwrap();
        assert!(accumulator_working_set(&m, &[0]).is_err());
        let sq = commorder_sparse::CsrMatrix::empty(3);
        assert!(accumulator_working_set(&sq, &[0, 1]).is_err());
        let s = accumulator_working_set(&sq, &[0, 1, 2]).unwrap();
        assert_eq!(s.peak_row, 0);
        assert_eq!(s.peak_cluster, 0);
    }

    #[test]
    fn rabbit_recovers_planted_blocks_with_high_ari() {
        use commorder_synth::generators::PlantedPartition;
        let g = PlantedPartition::uniform(1024, 16, 10.0, 0.02)
            .generate(44)
            .unwrap();
        let detected = crate::Rabbit::new().run(&g).unwrap().assignment;
        let planted: Vec<u32> = (0..1024).map(|v| v / 64).collect();
        let ari = adjusted_rand_index(&detected, &planted).unwrap();
        assert!(
            ari > 0.8,
            "rabbit should recover planted blocks: ari = {ari}"
        );
        let nmi = normalized_mutual_information(&detected, &planted).unwrap();
        assert!(nmi > 0.85, "nmi = {nmi}");
    }
}
