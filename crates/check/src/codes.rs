//! The stable `CHK` diagnostic-code table.
//!
//! Codes are grouped by hundreds per checked domain and are **append
//! only**: a published code never changes meaning, so golden files and
//! downstream tooling can match on them forever.
//!
//! | Range   | Domain                                  |
//! |---------|-----------------------------------------|
//! | CHK01xx | CSR/CSC offsets and index arrays        |
//! | CHK02xx | COO entry lists                         |
//! | CHK03xx | ELL / SELL-C-σ padded storage           |
//! | CHK04xx | Permutations                            |
//! | CHK05xx | Community assignments                   |
//! | CHK06xx | Address traces                          |
//! | CHK07xx | Cache configuration                     |
//! | CHK08xx | GPU specification                       |
//! | CHK09xx | Telemetry JSONL streams                 |
//! | CHK10xx | Streaming trace sources and next-use    |
//! | CHK11xx | Analyzer (`XT`) findings reports        |
//! | CHK12xx | Bench artifacts and profile invariants  |

/// One row of the code table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeInfo {
    /// The stable code, e.g. `CHK0101`.
    pub code: &'static str,
    /// One-line description of what the code means.
    pub title: &'static str,
}

/// Offsets array has the wrong length (`n + 1` expected).
pub const OFFSETS_LENGTH: &str = "CHK0101";
/// Offsets array does not start at zero.
pub const OFFSETS_START: &str = "CHK0102";
/// Offsets array is not monotonically non-decreasing.
pub const OFFSETS_MONOTONE: &str = "CHK0103";
/// Last offset disagrees with the index-array length.
pub const OFFSETS_LAST: &str = "CHK0104";
/// A column/row index exceeds the matrix dimension.
pub const INDEX_BOUNDS: &str = "CHK0105";
/// Indices within a row/column are not strictly increasing.
pub const INDEX_SORTED: &str = "CHK0106";
/// Values array length disagrees with the index-array length.
pub const VALUES_LENGTH: &str = "CHK0107";
/// A stored value is NaN or infinite.
pub const VALUE_NONFINITE: &str = "CHK0108";

/// COO row index out of bounds.
pub const COO_ROW_BOUNDS: &str = "CHK0201";
/// COO column index out of bounds.
pub const COO_COL_BOUNDS: &str = "CHK0202";
/// COO value is NaN or infinite.
pub const COO_VALUE_NONFINITE: &str = "CHK0203";
/// Duplicate COO coordinate (construction would merge by summing).
pub const COO_DUPLICATE: &str = "CHK0204";

/// ELL padded storage length disagrees with `n_rows * width`.
pub const ELL_STORAGE: &str = "CHK0301";
/// ELL non-pad column index out of bounds.
pub const ELL_COL_BOUNDS: &str = "CHK0302";
/// SELL slice descriptors are inconsistent with the padded storage.
pub const SELL_SLICES: &str = "CHK0303";

/// Permutation entry out of range.
pub const PERM_RANGE: &str = "CHK0401";
/// Permutation target id appears more than once (not injective).
pub const PERM_DUPLICATE: &str = "CHK0402";
/// Permutation length does not match the object it should act on.
pub const PERM_LENGTH: &str = "CHK0403";

/// Community assignment is not total (length differs from vertex count).
pub const COMM_TOTAL: &str = "CHK0501";
/// Community id out of the declared range.
pub const COMM_RANGE: &str = "CHK0502";
/// A declared community has no members.
pub const COMM_EMPTY: &str = "CHK0503";

/// Trace access not aligned to the element size.
pub const TRACE_ALIGN: &str = "CHK0601";
/// Trace access straddles an L2 sector (line) boundary.
pub const TRACE_SECTOR: &str = "CHK0602";
/// Trace access beyond the operand address-space bound.
pub const TRACE_BOUNDS: &str = "CHK0603";
/// Empty trace for a non-empty matrix.
pub const TRACE_EMPTY: &str = "CHK0604";

/// Cache geometry field is zero.
pub const CACHE_ZERO: &str = "CHK0701";
/// Cache capacity is not a whole number of sets.
pub const CACHE_RAGGED: &str = "CHK0702";
/// Cache line size is not a power of two.
pub const CACHE_LINE_POW2: &str = "CHK0703";

/// GPU bandwidth/compute constant is not positive and finite.
pub const GPU_CONSTANTS: &str = "CHK0801";
/// Measured bandwidth exceeds theoretical peak.
pub const GPU_BANDWIDTH_ORDER: &str = "CHK0802";
/// Fine-grain penalty outside the calibrated range.
pub const GPU_PENALTY_RANGE: &str = "CHK0803";
/// L2 capacity exceeds main-memory capacity.
pub const GPU_L2_CAPACITY: &str = "CHK0804";

/// Telemetry line is not a flat JSON object.
pub const TELEM_PARSE: &str = "CHK0901";
/// Telemetry event is missing a required field, or a field has the
/// wrong JSON type.
pub const TELEM_FIELD: &str = "CHK0902";
/// Telemetry event `type` is not one of the published discriminators.
pub const TELEM_TYPE: &str = "CHK0903";
/// Telemetry value is negative or non-finite where it must not be.
pub const TELEM_VALUE: &str = "CHK0904";
/// Span nesting violated: child interval escapes its parent, end
/// timestamps regress within a thread, or a span has no enclosing
/// parent at the next shallower depth.
pub const TELEM_NESTING: &str = "CHK0905";
/// Metric name is not declared in the `commorder-obs` registry, or the
/// event kind disagrees with the declared kind.
pub const TELEM_METRIC: &str = "CHK0906";
/// Span `path`, `depth`, and `name` fields are mutually inconsistent.
pub const TELEM_PATH: &str = "CHK0907";

/// A replayed access disagrees with its collected counterpart.
pub const STREAM_MISMATCH: &str = "CHK1001";
/// Replayed stream length disagrees with the collected trace or with the
/// source's `len_hint`.
pub const STREAM_LENGTH: &str = "CHK1002";
/// Belady next-use array is not monotone-consistent with its trace.
pub const NEXT_USE: &str = "CHK1003";

/// Analyzer findings report (`xtask lint --json` /
/// `commorder-cli analyze --source --json`) violates the published
/// schema: malformed JSON framing, a bad field value, findings out of
/// sorted order, or header counts that disagree with the finding list.
pub const ANALYZE_SCHEMA: &str = "CHK1101";
/// Analyzer call-graph section violates its contract: malformed
/// framing, an edge or seed referencing an undeclared node, unsorted
/// or duplicated edges, an empty seed set, overlapping SCC
/// components, a cycle the declared SCCs do not cover, or resolution
/// stats that do not add up.
pub const CALLGRAPH_SCHEMA: &str = "CHK1102";
/// Analyzer effects section violates its contract: malformed framing,
/// a wrong bit legend, rows out of order or referencing undeclared
/// nodes, a local mask escaping its effect mask, a witness hop that is
/// no call edge or whose target lacks the bit, a witness chain that
/// does not terminate at a local source, an effect mask that shrinks
/// over a call edge (monotonicity), or stats that do not add up.
pub const EFFECTS_SCHEMA: &str = "CHK1103";

/// Bench artifact (`xtask bench`) violates the published
/// `commorder-bench.v2` framing: bad header lines, a malformed machine
/// object or fingerprint row, or an empty metric list.
pub const BENCH_SCHEMA: &str = "CHK1201";
/// Bench metric row is invalid: wrong key sequence, unsorted or
/// duplicated names, a non-finite value, or an empty unit.
pub const BENCH_METRIC: &str = "CHK1202";
/// Exclusive self-time invariant violated: the summed inclusive time of
/// a span path's direct children exceeds the path's own inclusive time.
pub const SELF_TIME: &str = "CHK1203";
/// Histogram shape invariant violated: bucket counts disagree with the
/// total, quantiles are non-monotone, or min/max are inconsistent.
pub const HIST_SHAPE: &str = "CHK1204";

/// Every published code with its meaning, in code order.
pub const CODE_TABLE: &[CodeInfo] = &[
    CodeInfo {
        code: OFFSETS_LENGTH,
        title: "offsets array has the wrong length",
    },
    CodeInfo {
        code: OFFSETS_START,
        title: "offsets array does not start at zero",
    },
    CodeInfo {
        code: OFFSETS_MONOTONE,
        title: "offsets array is not non-decreasing",
    },
    CodeInfo {
        code: OFFSETS_LAST,
        title: "last offset disagrees with nnz",
    },
    CodeInfo {
        code: INDEX_BOUNDS,
        title: "index exceeds the matrix dimension",
    },
    CodeInfo {
        code: INDEX_SORTED,
        title: "indices within a row are not strictly increasing",
    },
    CodeInfo {
        code: VALUES_LENGTH,
        title: "values length disagrees with index length",
    },
    CodeInfo {
        code: VALUE_NONFINITE,
        title: "stored value is NaN or infinite",
    },
    CodeInfo {
        code: COO_ROW_BOUNDS,
        title: "COO row index out of bounds",
    },
    CodeInfo {
        code: COO_COL_BOUNDS,
        title: "COO column index out of bounds",
    },
    CodeInfo {
        code: COO_VALUE_NONFINITE,
        title: "COO value is NaN or infinite",
    },
    CodeInfo {
        code: COO_DUPLICATE,
        title: "duplicate COO coordinate",
    },
    CodeInfo {
        code: ELL_STORAGE,
        title: "ELL storage length mismatch",
    },
    CodeInfo {
        code: ELL_COL_BOUNDS,
        title: "ELL column index out of bounds",
    },
    CodeInfo {
        code: SELL_SLICES,
        title: "SELL slice descriptors inconsistent",
    },
    CodeInfo {
        code: PERM_RANGE,
        title: "permutation entry out of range",
    },
    CodeInfo {
        code: PERM_DUPLICATE,
        title: "permutation target id duplicated",
    },
    CodeInfo {
        code: PERM_LENGTH,
        title: "permutation length mismatch",
    },
    CodeInfo {
        code: COMM_TOTAL,
        title: "community assignment is not total",
    },
    CodeInfo {
        code: COMM_RANGE,
        title: "community id out of declared range",
    },
    CodeInfo {
        code: COMM_EMPTY,
        title: "declared community has no members",
    },
    CodeInfo {
        code: TRACE_ALIGN,
        title: "trace access not element-aligned",
    },
    CodeInfo {
        code: TRACE_SECTOR,
        title: "trace access straddles a sector boundary",
    },
    CodeInfo {
        code: TRACE_BOUNDS,
        title: "trace access beyond the address-space bound",
    },
    CodeInfo {
        code: TRACE_EMPTY,
        title: "empty trace for a non-empty matrix",
    },
    CodeInfo {
        code: CACHE_ZERO,
        title: "cache geometry field is zero",
    },
    CodeInfo {
        code: CACHE_RAGGED,
        title: "cache capacity is not a whole number of sets",
    },
    CodeInfo {
        code: CACHE_LINE_POW2,
        title: "cache line size is not a power of two",
    },
    CodeInfo {
        code: GPU_CONSTANTS,
        title: "GPU constant is not positive and finite",
    },
    CodeInfo {
        code: GPU_BANDWIDTH_ORDER,
        title: "measured bandwidth exceeds peak",
    },
    CodeInfo {
        code: GPU_PENALTY_RANGE,
        title: "fine-grain penalty outside calibrated range",
    },
    CodeInfo {
        code: GPU_L2_CAPACITY,
        title: "L2 capacity exceeds memory capacity",
    },
    CodeInfo {
        code: TELEM_PARSE,
        title: "telemetry line is not a flat JSON object",
    },
    CodeInfo {
        code: TELEM_FIELD,
        title: "telemetry event field missing or mistyped",
    },
    CodeInfo {
        code: TELEM_TYPE,
        title: "unknown telemetry event type",
    },
    CodeInfo {
        code: TELEM_VALUE,
        title: "telemetry value negative or non-finite",
    },
    CodeInfo {
        code: TELEM_NESTING,
        title: "span nesting or end-order violated",
    },
    CodeInfo {
        code: TELEM_METRIC,
        title: "metric name undeclared or kind mismatch",
    },
    CodeInfo {
        code: TELEM_PATH,
        title: "span path/depth/name inconsistent",
    },
    CodeInfo {
        code: STREAM_MISMATCH,
        title: "replayed access disagrees with collected trace",
    },
    CodeInfo {
        code: STREAM_LENGTH,
        title: "replayed stream length or len_hint mismatch",
    },
    CodeInfo {
        code: NEXT_USE,
        title: "next-use array inconsistent with its trace",
    },
    CodeInfo {
        code: ANALYZE_SCHEMA,
        title: "analyzer findings report violates the schema",
    },
    CodeInfo {
        code: CALLGRAPH_SCHEMA,
        title: "analyzer call-graph section violates its contract",
    },
    CodeInfo {
        code: EFFECTS_SCHEMA,
        title: "analyzer effects section violates its contract",
    },
    CodeInfo {
        code: BENCH_SCHEMA,
        title: "bench artifact violates the commorder-bench schema",
    },
    CodeInfo {
        code: BENCH_METRIC,
        title: "bench metric row is invalid",
    },
    CodeInfo {
        code: SELF_TIME,
        title: "children's inclusive time exceeds their parent's",
    },
    CodeInfo {
        code: HIST_SHAPE,
        title: "histogram shape invariant violated",
    },
];

/// Looks up the description of a code; `None` for unknown codes.
#[must_use]
pub fn describe(code: &str) -> Option<&'static str> {
    CODE_TABLE
        .iter()
        .find(|info| info.code == code)
        .map(|info| info.title)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_sorted_and_well_formed() {
        for w in CODE_TABLE.windows(2) {
            assert!(w[0].code < w[1].code, "{} !< {}", w[0].code, w[1].code);
        }
        for info in CODE_TABLE {
            assert_eq!(info.code.len(), 7, "{}", info.code);
            assert!(info.code.starts_with("CHK"), "{}", info.code);
            assert!(info.code[3..].chars().all(|c| c.is_ascii_digit()));
            assert!(!info.title.is_empty());
        }
    }

    #[test]
    fn describe_known_and_unknown() {
        assert_eq!(
            describe(OFFSETS_MONOTONE),
            Some("offsets array is not non-decreasing")
        );
        assert_eq!(describe("CHK9999"), None);
    }
}
