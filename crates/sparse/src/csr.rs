use crate::{CooMatrix, Permutation, SparseError};

/// A sparse matrix in Compressed Sparse Row format.
///
/// The CSR format stores, per Algorithm 1 of the paper, three arrays:
/// `row_offsets` (length `n_rows + 1`), `col_indices` (the paper's
/// `A.coords`, length `nnz`), and `values` (length `nnz`). Column indices
/// within each row are kept **sorted and unique**; construction enforces
/// this (deduplicating by summing values when converting from COO).
///
/// # Example
///
/// ```
/// use commorder_sparse::CsrMatrix;
///
/// # fn main() -> Result<(), commorder_sparse::SparseError> {
/// let m = CsrMatrix::new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0])?;
/// assert_eq!(m.nnz(), 3);
/// assert_eq!(m.row(0), (&[0u32, 2][..], &[1.0f32, 2.0][..]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n_rows: u32,
    n_cols: u32,
    row_offsets: Vec<u32>,
    col_indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Constructs a CSR matrix after validating every structural invariant.
    ///
    /// # Errors
    ///
    /// * [`SparseError::InvalidOffsets`] — `row_offsets` has the wrong
    ///   length, is not monotonically non-decreasing, does not start at 0,
    ///   or its last entry differs from `col_indices.len()`.
    /// * [`SparseError::DimensionMismatch`] — `values.len() != col_indices.len()`.
    /// * [`SparseError::IndexOutOfBounds`] — a column index is `>= n_cols`.
    /// * [`SparseError::InvalidOffsets`] — a row's column indices are not
    ///   strictly increasing (unsorted or duplicate entries).
    pub fn new(
        n_rows: u32,
        n_cols: u32,
        row_offsets: Vec<u32>,
        col_indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self, SparseError> {
        if row_offsets.len() != n_rows as usize + 1 {
            return Err(SparseError::InvalidOffsets {
                index: row_offsets.len(),
                value: row_offsets.len() as u64,
                message: format!(
                    "row_offsets.len() must be n_rows + 1 = {}",
                    n_rows as usize + 1
                ),
            });
        }
        if row_offsets[0] != 0 {
            return Err(SparseError::InvalidOffsets {
                index: 0,
                value: u64::from(row_offsets[0]),
                message: "row_offsets must start at 0".to_string(),
            });
        }
        if values.len() != col_indices.len() {
            return Err(SparseError::DimensionMismatch {
                expected: format!("values.len() == col_indices.len() == {}", col_indices.len()),
                found: format!("values.len() == {}", values.len()),
            });
        }
        let last = *row_offsets.last().expect("non-empty by construction");
        if last as usize != col_indices.len() {
            return Err(SparseError::InvalidOffsets {
                index: row_offsets.len() - 1,
                value: u64::from(last),
                message: format!("last offset must equal nnz = {}", col_indices.len()),
            });
        }
        for (i, w) in row_offsets.windows(2).enumerate() {
            if w[1] < w[0] {
                return Err(SparseError::InvalidOffsets {
                    index: i + 1,
                    value: u64::from(w[1]),
                    message: format!("offsets must be non-decreasing (previous was {})", w[0]),
                });
            }
        }
        for r in 0..n_rows as usize {
            let (lo, hi) = (row_offsets[r] as usize, row_offsets[r + 1] as usize);
            let row = &col_indices[lo..hi];
            for (k, &c) in row.iter().enumerate() {
                if c >= n_cols {
                    return Err(SparseError::IndexOutOfBounds {
                        index: c,
                        bound: n_cols,
                    });
                }
                if k > 0 && row[k - 1] >= c {
                    return Err(SparseError::InvalidOffsets {
                        index: lo + k,
                        value: u64::from(c),
                        message: format!(
                            "row {r} columns must be strictly increasing (previous was {})",
                            row[k - 1]
                        ),
                    });
                }
            }
        }
        Ok(CsrMatrix {
            n_rows,
            n_cols,
            row_offsets,
            col_indices,
            values,
        })
    }

    /// An `n x n` matrix with no stored entries.
    #[must_use]
    pub fn empty(n: u32) -> Self {
        CsrMatrix {
            n_rows: n,
            n_cols: n,
            row_offsets: vec![0; n as usize + 1],
            col_indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> u32 {
        self.n_rows
    }

    /// Number of columns.
    #[must_use]
    pub fn n_cols(&self) -> u32 {
        self.n_cols
    }

    /// `true` when the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.n_rows == self.n_cols
    }

    /// Number of stored (structurally non-zero) entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.col_indices.len()
    }

    /// The `row_offsets` array (length `n_rows + 1`).
    #[must_use]
    pub fn row_offsets(&self) -> &[u32] {
        &self.row_offsets
    }

    /// The column-index array (the paper's `A.coords`).
    #[must_use]
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    /// The stored values.
    #[must_use]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The column indices and values of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= n_rows`.
    #[must_use]
    pub fn row(&self, r: u32) -> (&[u32], &[f32]) {
        let lo = self.row_offsets[r as usize] as usize;
        let hi = self.row_offsets[r as usize + 1] as usize;
        (&self.col_indices[lo..hi], &self.values[lo..hi])
    }

    /// Number of stored entries in row `r` (the row's out-degree).
    ///
    /// # Panics
    ///
    /// Panics if `r >= n_rows`.
    #[must_use]
    pub fn row_degree(&self, r: u32) -> u32 {
        self.row_offsets[r as usize + 1] - self.row_offsets[r as usize]
    }

    /// Out-degree of every row.
    #[must_use]
    pub fn out_degrees(&self) -> Vec<u32> {
        (0..self.n_rows).map(|r| self.row_degree(r)).collect()
    }

    /// In-degree of every column (number of stored entries per column).
    ///
    /// The paper's degree-based techniques (DEGSORT, DBG, hub detection) use
    /// in-degrees: in SpMV the input vector `X` is indexed by column, so a
    /// column's in-degree is exactly how many times `X[col]` is read.
    #[must_use]
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.n_cols as usize];
        for &c in &self.col_indices {
            deg[c as usize] += 1;
        }
        deg
    }

    /// Iterates over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.n_rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// The transpose `Aᵀ` (CSR of the transpose, built by counting sort;
    /// `O(nnz + n)`).
    #[must_use]
    pub fn transpose(&self) -> CsrMatrix {
        let n = self.n_cols as usize;
        let mut counts = vec![0u32; n + 1];
        for &c in &self.col_indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let row_offsets = counts.clone();
        let mut cursor = counts;
        let mut col_indices = vec![0u32; self.nnz()];
        let mut values = vec![0f32; self.nnz()];
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let slot = cursor[c as usize] as usize;
                col_indices[slot] = r;
                values[slot] = v;
                cursor[c as usize] += 1;
            }
        }
        // Rows of the transpose come out sorted because we scan source rows
        // in increasing order.
        CsrMatrix {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            row_offsets,
            col_indices,
            values,
        }
    }

    /// `true` when the matrix is structurally and numerically symmetric.
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        let t = self.transpose();
        self.col_indices == t.col_indices
            && self.row_offsets == t.row_offsets
            && self
                .values
                .iter()
                .zip(&t.values)
                .all(|(a, b)| (a - b).abs() <= f32::EPSILON * a.abs().max(b.abs()).max(1.0))
    }

    /// Relabels rows and columns with `perm` (vertex `v` becomes
    /// `perm.new_of(v)`), preserving the stored values.
    ///
    /// This is how every reordering technique in the paper is applied to a
    /// matrix before running a kernel on it.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if the matrix is not
    /// square or `perm.len() != n_rows`.
    pub fn permute_symmetric(&self, perm: &Permutation) -> Result<CsrMatrix, SparseError> {
        if !self.is_square() {
            return Err(SparseError::DimensionMismatch {
                expected: "square matrix".to_string(),
                found: format!("{} x {}", self.n_rows, self.n_cols),
            });
        }
        if perm.len() != self.n_rows as usize {
            return Err(SparseError::DimensionMismatch {
                expected: format!("permutation of length {}", self.n_rows),
                found: format!("permutation of length {}", perm.len()),
            });
        }
        let inv = perm.inverse();
        let n = self.n_rows as usize;
        let mut row_offsets = Vec::with_capacity(n + 1);
        row_offsets.push(0u32);
        let mut col_indices = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        for new_r in 0..self.n_rows {
            let old_r = inv.new_of(new_r);
            let (cols, vals) = self.row(old_r);
            scratch.clear();
            scratch.extend(cols.iter().zip(vals).map(|(&c, &v)| (perm.new_of(c), v)));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                col_indices.push(c);
                values.push(v);
            }
            row_offsets.push(col_indices.len() as u32);
        }
        Ok(CsrMatrix {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            row_offsets,
            col_indices,
            values,
        })
    }

    /// Total footprint in bytes of the CSR arrays plus the SpMV input and
    /// output vectors — the paper's worst-case cache footprint discussion
    /// (§II) for an `n x n` matrix.
    #[must_use]
    pub fn spmv_footprint_bytes(&self) -> u64 {
        let n = self.n_rows as u64;
        let nnz = self.nnz() as u64;
        // X + Y + rowOffsets + coords + values
        (2 * n + (n + 1) + 2 * nnz) * crate::ELEM_BYTES
    }
}

impl TryFrom<CooMatrix> for CsrMatrix {
    type Error = SparseError;

    /// Converts from COO, sorting entries and **summing duplicates**.
    fn try_from(coo: CooMatrix) -> Result<Self, SparseError> {
        let (n_rows, n_cols) = (coo.n_rows(), coo.n_cols());
        let mut entries = coo.into_entries();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_offsets = vec![0u32; n_rows as usize + 1];
        let mut col_indices: Vec<u32> = Vec::with_capacity(entries.len());
        let mut values: Vec<f32> = Vec::with_capacity(entries.len());
        let mut last: Option<(u32, u32)> = None;
        for (r, c, v) in entries {
            if last == Some((r, c)) {
                *values.last_mut().expect("entry exists when last is Some") += v;
                continue;
            }
            col_indices.push(c);
            values.push(v);
            row_offsets[r as usize + 1] = col_indices.len() as u32;
            last = Some((r, c));
        }
        // Fill offsets for rows we never touched (prefix-max).
        for i in 1..row_offsets.len() {
            if row_offsets[i] < row_offsets[i - 1] {
                row_offsets[i] = row_offsets[i - 1];
            }
        }
        CsrMatrix::new(n_rows, n_cols, row_offsets, col_indices, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> CsrMatrix {
        // 0-1, 1-0, 1-2, 2-1
        CsrMatrix::new(
            3,
            3,
            vec![0, 1, 3, 4],
            vec![1, 0, 2, 1],
            vec![1.0, 1.0, 1.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn new_validates_offsets_length() {
        let err = CsrMatrix::new(2, 2, vec![0, 1], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::InvalidOffsets { .. }));
    }

    #[test]
    fn new_validates_first_offset_zero() {
        let err = CsrMatrix::new(1, 2, vec![1, 1], vec![], vec![]).unwrap_err();
        assert!(matches!(err, SparseError::InvalidOffsets { .. }));
    }

    #[test]
    fn new_validates_monotone_offsets() {
        let err = CsrMatrix::new(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).unwrap_err();
        assert!(matches!(err, SparseError::InvalidOffsets { .. }));
    }

    #[test]
    fn new_validates_last_offset() {
        let err = CsrMatrix::new(1, 2, vec![0, 2], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::InvalidOffsets { .. }));
    }

    #[test]
    fn new_validates_column_bounds() {
        let err = CsrMatrix::new(1, 2, vec![0, 1], vec![5], vec![1.0]).unwrap_err();
        assert!(matches!(
            err,
            SparseError::IndexOutOfBounds { index: 5, bound: 2 }
        ));
    }

    #[test]
    fn new_rejects_unsorted_rows() {
        let err = CsrMatrix::new(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).unwrap_err();
        assert!(matches!(err, SparseError::InvalidOffsets { .. }));
    }

    #[test]
    fn new_rejects_duplicate_columns() {
        let err = CsrMatrix::new(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).unwrap_err();
        assert!(matches!(err, SparseError::InvalidOffsets { .. }));
    }

    #[test]
    fn new_rejects_value_length_mismatch() {
        let err = CsrMatrix::new(1, 3, vec![0, 1], vec![1], vec![]).unwrap_err();
        assert!(matches!(err, SparseError::DimensionMismatch { .. }));
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::empty(4);
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.row(3), (&[][..], &[][..]));
    }

    #[test]
    fn degrees() {
        let m = path3();
        assert_eq!(m.out_degrees(), vec![1, 2, 1]);
        assert_eq!(m.in_degrees(), vec![1, 2, 1]);
        assert_eq!(m.row_degree(1), 2);
    }

    #[test]
    fn iter_yields_row_major_triples() {
        let m = path3();
        let triples: Vec<_> = m.iter().collect();
        assert_eq!(
            triples,
            vec![(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)]
        );
    }

    #[test]
    fn transpose_of_symmetric_is_equal() {
        let m = path3();
        assert_eq!(m.transpose(), m);
        assert!(m.is_symmetric());
    }

    #[test]
    fn transpose_rectangular() {
        let m = CsrMatrix::new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0]).unwrap();
        let t = m.transpose();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        let triples: Vec<_> = t.iter().collect();
        assert_eq!(triples, vec![(0, 0, 1.0), (1, 1, 3.0), (2, 0, 2.0)]);
        assert!(!t.is_symmetric());
    }

    #[test]
    fn double_transpose_round_trips() {
        let m = path3();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn permute_symmetric_relabels_vertices() {
        let m = path3();
        // Swap vertices 0 and 2; path stays a path.
        let p = Permutation::from_new_ids(vec![2, 1, 0]).unwrap();
        let pm = m.permute_symmetric(&p).unwrap();
        assert_eq!(pm, m); // path 0-1-2 relabelled as 2-1-0 is the same CSR
                           // A non-trivial relabelling: rotate.
        let p = Permutation::from_new_ids(vec![1, 2, 0]).unwrap();
        let pm = m.permute_symmetric(&p).unwrap();
        // old edges (0,1),(1,2) -> new edges (1,2),(2,0)
        let triples: Vec<_> = pm.iter().map(|(r, c, _)| (r, c)).collect();
        assert_eq!(triples, vec![(0, 2), (1, 2), (2, 0), (2, 1)]);
        assert!(pm.is_symmetric());
    }

    #[test]
    fn permute_rejects_wrong_length() {
        let m = path3();
        let p = Permutation::identity(2);
        assert!(m.permute_symmetric(&p).is_err());
    }

    #[test]
    fn permute_rejects_rectangular() {
        let m = CsrMatrix::new(1, 2, vec![0, 1], vec![1], vec![1.0]).unwrap();
        assert!(m.permute_symmetric(&Permutation::identity(1)).is_err());
    }

    #[test]
    fn permute_identity_is_noop() {
        let m = path3();
        let pm = m.permute_symmetric(&Permutation::identity(3)).unwrap();
        assert_eq!(pm, m);
    }

    #[test]
    fn from_coo_sorts_and_sums_duplicates() {
        let coo = CooMatrix::from_entries(
            2,
            2,
            vec![(1, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (0, 0, 1.0)],
        )
        .unwrap();
        let csr = CsrMatrix::try_from(coo).unwrap();
        assert_eq!(csr.nnz(), 3);
        let triples: Vec<_> = csr.iter().collect();
        assert_eq!(triples, vec![(0, 0, 1.0), (0, 1, 2.0), (1, 0, 4.0)]);
    }

    #[test]
    fn from_coo_handles_empty_rows() {
        let coo = CooMatrix::from_entries(4, 4, vec![(3, 0, 1.0)]).unwrap();
        let csr = CsrMatrix::try_from(coo).unwrap();
        assert_eq!(csr.row_offsets(), &[0, 0, 0, 0, 1]);
        assert_eq!(csr.row_degree(0), 0);
        assert_eq!(csr.row_degree(3), 1);
    }

    #[test]
    fn spmv_footprint_matches_formula() {
        let m = path3(); // n = 3, nnz = 4
        assert_eq!(m.spmv_footprint_bytes(), (2 * 3 + 4 + 2 * 4) * 4);
    }
}
