//! **Table IV**: generality across kernels — run time (normalized to the
//! per-kernel ideal) for SpMV-COO, SpMM-CSR-4 and SpMM-CSR-256 under
//! RANDOM / ORIGINAL / RABBIT / RABBIT++, split by insularity.

use commorder::prelude::*;
use commorder::reorder::quality;
use commorder_bench::Harness;

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let cases = harness.load();

    // Insularity per matrix (bucket key) and the per-technique
    // permutations, computed once and reused across the three kernels.
    let mut insularities = Vec::with_capacity(cases.len());
    let mut perms: Vec<Vec<Permutation>> = Vec::with_capacity(cases.len());
    let techniques: Vec<Box<dyn Reordering>> = vec![
        Box::new(RandomOrder::new(harness.random_seed)),
        Box::new(Original),
        Box::new(Rabbit::new()),
        Box::new(RabbitPlusPlus::new()),
    ];
    for case in &cases {
        eprintln!("[table4] reorder {}", case.entry.name);
        let r = Rabbit::new()
            .run(&case.matrix)
            .expect("square corpus matrix");
        insularities.push(quality::insularity(&case.matrix, &r.assignment).expect("validated"));
        perms.push(
            techniques
                .iter()
                .map(|t| t.reorder(&case.matrix).expect("square corpus matrix"))
                .collect(),
        );
    }

    let kernels = [
        Kernel::SpmvCoo,
        Kernel::SpmmCsr { k: 4 },
        Kernel::SpmmCsr { k: 256 },
    ];
    for kernel in kernels {
        let pipeline = Pipeline::new(harness.gpu).with_kernel(kernel);
        let mut table = Table::new(
            format!("Table IV ({}): run time normalized to ideal", kernel.name()),
            vec![
                "ordering".into(),
                "ALL".into(),
                "INS < 0.95".into(),
                "INS >= 0.95".into(),
            ],
        );
        for (ti, technique) in techniques.iter().enumerate() {
            eprintln!("[table4] {} x {}", kernel.name(), technique.name());
            let mut pairs = Vec::with_capacity(cases.len());
            for (ci, case) in cases.iter().enumerate() {
                let reordered = case
                    .matrix
                    .permute_symmetric(&perms[ci][ti])
                    .expect("validated");
                let run = pipeline.simulate(&reordered);
                pairs.push((insularities[ci], run.time_ratio));
            }
            let split = InsularitySplit::from_pairs(&pairs);
            table.add_row(vec![
                technique.name().to_string(),
                Table::ratio(split.all),
                Table::ratio(split.low),
                Table::ratio(split.high),
            ]);
        }
        println!("{table}");
    }
    println!(
        "Paper reference (ALL / <0.95 / >=0.95):\n\
         SpMV-COO:     RANDOM 5.37/4.94/5.97   ORIGINAL 1.84/2.10/1.55  RABBIT 1.49/1.73/1.23  RABBIT++ 1.40/1.55/1.23\n\
         SpMM-CSR-4:   RANDOM 29.3/32.2/26.1   ORIGINAL 5.97/8.92/3.58  RABBIT 4.31/7.39/2.18  RABBIT++ 3.79/5.85/2.18\n\
         SpMM-CSR-256: RANDOM 139/197/75       ORIGINAL 26.8/43.8/11.0  RABBIT 20.3/50.3/3.91  RABBIT++ 18.7/44.0/3.95\n\
         Shape: RABBIT++ <= RABBIT <= ORIGINAL << RANDOM for every kernel and bucket"
    );
}
