//! Address traces for the graph-analytics kernels (PageRank, BFS) —
//! the "graph analytics" half of the paper's framing.
//!
//! * **PageRank** (pull): per iteration, per vertex — transpose offsets,
//!   in-neighbour coords, the irregular `pr[u]` and `outdeg[u]` gathers,
//!   and the streaming `pr'[v]` store. Rank buffers ping-pong between
//!   iterations, so cross-iteration reuse is visible to the cache.
//! * **BFS** (push, level-synchronous): follows the *actual* frontier —
//!   per frontier vertex, its offsets and neighbour list, the irregular
//!   `level[v]` probe per edge, and a store for each newly discovered
//!   vertex. Data-dependent and sparse per level, unlike SpMV's full
//!   sweeps.

use commorder_sparse::{CsrMatrix, ELEM_BYTES};

use crate::trace::Access;

struct GraphLayout {
    offsets: u64,
    coords: u64,
    rank_a: u64,
    rank_b: u64,
    outdeg: u64,
    level: u64,
    frontier: u64,
    /// Exclusive end of the operand address space (strict-checks bound).
    end: u64,
}

fn graph_layout(n: u64, nnz: u64, line_bytes: u64) -> GraphLayout {
    let align = |addr: u64| addr.div_ceil(line_bytes) * line_bytes;
    let mut cursor = 0u64;
    let mut region = |elems: u64| {
        let base = cursor;
        cursor = align(cursor + elems * ELEM_BYTES);
        base
    };
    let offsets = region(n + 1);
    let coords = region(nnz);
    let rank_a = region(n);
    let rank_b = region(n);
    let outdeg = region(n);
    let level = region(n);
    let frontier = region(n);
    GraphLayout {
        offsets,
        coords,
        rank_a,
        rank_b,
        outdeg,
        level,
        frontier,
        end: cursor,
    }
}

/// Strict-mode audit of a finished graph trace: every access must be
/// element-aligned and inside the operand address space.
fn audit_trace(name: &str, t: &[Access], layout: &GraphLayout) {
    commorder_sparse::debug_validate!(
        t.iter()
            .all(|acc| acc.addr.is_multiple_of(ELEM_BYTES) && acc.addr + ELEM_BYTES <= layout.end),
        "{name}: trace escapes the operand address space (end {:#x})",
        layout.end
    );
}

/// Trace of `iterations` pull-PageRank rounds over the transpose of `a`
/// (for the symmetric corpus, `aᵀ = a`).
#[must_use]
pub fn pagerank_trace(a: &CsrMatrix, iterations: u32) -> Vec<Access> {
    let transpose = a.transpose();
    let n = u64::from(a.n_rows());
    let layout = graph_layout(n, a.nnz() as u64, 32);
    let mut t = Vec::new();
    for iter in 0..iterations {
        // Ping-pong: even iterations read rank_a / write rank_b.
        let (src, dst) = if iter % 2 == 0 {
            (layout.rank_a, layout.rank_b)
        } else {
            (layout.rank_b, layout.rank_a)
        };
        for v in 0..a.n_rows() {
            t.push(Access {
                addr: layout.offsets + u64::from(v) * ELEM_BYTES,
                write: false,
            });
            t.push(Access {
                addr: layout.offsets + (u64::from(v) + 1) * ELEM_BYTES,
                write: false,
            });
            let (in_neighbours, _) = transpose.row(v);
            let base = transpose.row_offsets()[v as usize] as u64;
            for (k, &u) in in_neighbours.iter().enumerate() {
                t.push(Access {
                    addr: layout.coords + (base + k as u64) * ELEM_BYTES,
                    write: false,
                });
                // Irregular gathers: pr[u] and outdeg[u].
                t.push(Access {
                    addr: src + u64::from(u) * ELEM_BYTES,
                    write: false,
                });
                t.push(Access {
                    addr: layout.outdeg + u64::from(u) * ELEM_BYTES,
                    write: false,
                });
            }
            t.push(Access {
                addr: dst + u64::from(v) * ELEM_BYTES,
                write: true,
            });
        }
    }
    audit_trace("pagerank_trace", &t, &layout);
    t
}

/// Trace of a push BFS from `source`, following the real frontier.
///
/// # Panics
///
/// Panics if `source >= n_rows`.
#[must_use]
pub fn bfs_trace(a: &CsrMatrix, source: u32) -> Vec<Access> {
    assert!(source < a.n_rows(), "source out of range");
    let n = u64::from(a.n_rows());
    let layout = graph_layout(n, a.nnz() as u64, 32);
    let mut t = Vec::new();
    let mut visited = vec![false; a.n_rows() as usize];
    visited[source as usize] = true;
    let mut frontier = vec![source];
    let mut frontier_cursor = 0u64; // streaming frontier array writes
    t.push(Access {
        addr: layout.frontier,
        write: true,
    });
    frontier_cursor += 1;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            t.push(Access {
                addr: layout.offsets + u64::from(u) * ELEM_BYTES,
                write: false,
            });
            t.push(Access {
                addr: layout.offsets + (u64::from(u) + 1) * ELEM_BYTES,
                write: false,
            });
            let (neighbours, _) = a.row(u);
            let base = a.row_offsets()[u as usize] as u64;
            for (k, &v) in neighbours.iter().enumerate() {
                t.push(Access {
                    addr: layout.coords + (base + k as u64) * ELEM_BYTES,
                    write: false,
                });
                // Irregular probe of level[v]; write on first discovery.
                t.push(Access {
                    addr: layout.level + u64::from(v) * ELEM_BYTES,
                    write: false,
                });
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    t.push(Access {
                        addr: layout.level + u64::from(v) * ELEM_BYTES,
                        write: true,
                    });
                    t.push(Access {
                        addr: layout.frontier + frontier_cursor * ELEM_BYTES,
                        write: true,
                    });
                    frontier_cursor += 1;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    audit_trace("bfs_trace", &t, &layout);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_sparse::CooMatrix;

    fn path4() -> CsrMatrix {
        let entries: Vec<_> = (0..3u32)
            .flat_map(|v| [(v, v + 1, 1.0), (v + 1, v, 1.0)])
            .collect();
        CsrMatrix::try_from(CooMatrix::from_entries(4, 4, entries).unwrap()).unwrap()
    }

    #[test]
    fn pagerank_trace_per_iteration_shape() {
        let a = path4();
        let one = pagerank_trace(&a, 1);
        let two = pagerank_trace(&a, 2);
        // Per iteration: 2 offset reads + 1 store per vertex, 3 reads per
        // edge entry.
        let per_iter = 4 * 3 + a.nnz() * 3;
        assert_eq!(one.len(), per_iter);
        assert_eq!(two.len(), 2 * per_iter);
        assert_eq!(one.iter().filter(|x| x.write).count(), 4);
    }

    #[test]
    fn pagerank_iterations_ping_pong_buffers() {
        let a = path4();
        let t = pagerank_trace(&a, 2);
        let writes: Vec<u64> = t.iter().filter(|x| x.write).map(|x| x.addr).collect();
        // First iteration's 4 writes target one buffer, second's another.
        assert_eq!(writes.len(), 8);
        assert!(writes[..4]
            .iter()
            .all(|&w| w >= writes[0] && w < writes[0] + 16));
        assert!(writes[4] != writes[0]);
    }

    #[test]
    fn bfs_trace_discovers_every_vertex_once() {
        let a = path4();
        let t = bfs_trace(&a, 0);
        // Frontier writes = n (every vertex enters the frontier once on a
        // connected graph).
        let layout_frontier_writes = t.iter().filter(|x| x.write).count();
        // level writes (3 discoveries) + frontier writes (4 including src).
        assert_eq!(layout_frontier_writes, 3 + 4);
    }

    #[test]
    fn bfs_trace_on_disconnected_graph_stays_in_component() {
        let a = CsrMatrix::try_from(
            CooMatrix::from_entries(4, 4, vec![(0, 1, 1.0), (1, 0, 1.0)]).unwrap(),
        )
        .unwrap();
        let t = bfs_trace(&a, 0);
        // Only vertex 1 is discovered: 1 level write + 2 frontier writes.
        assert_eq!(t.iter().filter(|x| x.write).count(), 3);
    }
}
