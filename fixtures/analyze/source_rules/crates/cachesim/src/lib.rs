//! Fixture: the crate-level pragmas are missing.

/// Documented, so only the header findings anchor here.
pub fn quiet() {}
