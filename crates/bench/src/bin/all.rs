//! Runs every figure/table binary in sequence by invoking their `main`
//! logic through the shell-visible binaries would be wasteful; instead
//! this binary simply documents the experiment index and tells the user
//! how to run each one.

fn main() {
    println!("commorder experiment index (see DESIGN.md / EXPERIMENTS.md):\n");
    let experiments = [
        ("fig2", "SpMV DRAM traffic, 6 orderings x 50 matrices"),
        ("fig3", "RABBIT run time vs insularity + correlations"),
        ("fig4", "% insular nodes per matrix"),
        ("fig6", "insular sub-matrix traffic after grouping"),
        ("fig7", "RABBIT++ traffic reduction over RABBIT"),
        ("fig8", "LRU vs Belady headroom per technique"),
        ("fig9", "reordering time scaling + amortization"),
        ("table2", "design space of RABBIT modifications"),
        ("table3", "average % dead lines per technique"),
        ("table4", "SpMV-COO / SpMM-4 / SpMM-256 generality"),
        (
            "ablation_tiling",
            "does RABBIT++ subsume tiling? (paper §VII)",
        ),
        (
            "ablation_interleave",
            "robustness to GPU-style interleaving",
        ),
        ("ablation_cache", "sensitivity to L2 geometry"),
        ("ablation_resolution", "RABBIT resolution parameter sweep"),
        (
            "ablation_hierarchy",
            "dendrogram hierarchy vs flat communities (L1+L2)",
        ),
        ("extended_suite", "all 14 orderings + locality scorecard"),
        ("format_study", "CSR vs ELL vs SELL-C-sigma x reordering"),
        (
            "spgemm_study",
            "cluster-wise SpGEMM win vs insularity (A x A)",
        ),
        ("energy_study", "energy accounting per ordering"),
        ("graph_study", "PageRank + BFS under reordering"),
        (
            "ablation_missclass",
            "Three-C miss classification per ordering",
        ),
    ];
    for (bin, what) in experiments {
        println!("  cargo run --release -p commorder-bench --bin {bin:7} # {what}");
    }
    println!(
        "\nEnvironment: COMMORDER_CORPUS=standard|mini, COMMORDER_MAX_MATRICES=N,\n\
         COMMORDER_THREADS=N (engine workers; default: available parallelism —\n\
         results are identical for any value).\n\
         The standard corpus takes minutes per experiment; mini takes seconds.\n\
         For the headline grid with a machine-readable report, run:\n\
         cargo run --release -p commorder --bin commorder-cli -- suite --json report.json"
    );
}
