//! Streaming SpGEMM (Gustavson) address-trace generation — the
//! two-operand workload layer.
//!
//! `C = A · B` is traced row by row (Gustavson's algorithm): for each
//! row `r` of `A`, every stored entry `(r, k)` streams row `k` of `B`
//! and scatters partial products into a dense accumulator of
//! `n_cols(B)` elements; the row epilogue reads each distinct result
//! column back out of the accumulator and appends it to the `C` output
//! cursor. Nothing is materialized: the trace is regenerated on every
//! [`TraceSource::replay`], and the only scratch state is the
//! `n_cols(B)`-element stamp array the symbolic kernel itself needs —
//! the same streaming discipline the CI `ulimit -v` tripwire enforces
//! for the one-operand traces.
//!
//! [`Kernel::SpGemmClusterWise`] replays the identical per-row access
//! pattern but processes rows **grouped by community** (communities in
//! ascending id order, rows ascending within each) — the cluster-wise
//! execution of arXiv 2507.21253. When consecutive rows of one
//! community share column structure, their `B`-row and accumulator
//! lines are still resident, which is exactly the locality win the
//! cache simulator measures.

use commorder_sparse::kernels::{spgemm_profile, SpGemmProfile};
use commorder_sparse::{traffic::Kernel, CsrMatrix, SparseError, ELEM_BYTES};

use crate::layout::ArrayLayout;
use crate::source::TraceSource;
use crate::trace::Access;

/// A replayable SpGEMM trace over an `(A, B)` operand pair.
///
/// Construction runs one symbolic Gustavson pass to pin the operand
/// layout, the exact trace length, and the accumulator footprint;
/// replays then stream the access sequence without ever holding it.
#[derive(Debug, Clone)]
pub struct SpGemmTrace<'a> {
    a: &'a CsrMatrix,
    b: &'a CsrMatrix,
    /// Cluster-wise execution order (`None` = natural row order).
    row_order: Option<Vec<u32>>,
    profile: SpGemmProfile,
    layout: ArrayLayout,
    accumulator_peak: u64,
}

impl<'a> SpGemmTrace<'a> {
    /// A source replaying `kernel` over `a · b`. For
    /// [`Kernel::SpGemmClusterWise`], `assignment` maps each row of `a`
    /// to its community; rows of one community execute as a block.
    /// Without an assignment the cluster-wise kernel degenerates to
    /// plain Gustavson. [`Kernel::SpGemmGustavson`] ignores the
    /// assignment.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when `kernel` is not
    /// an SpGEMM kernel, `a.n_cols() != b.n_rows()`, or the assignment
    /// length is not `a.n_rows()`.
    pub fn new(
        a: &'a CsrMatrix,
        b: &'a CsrMatrix,
        kernel: Kernel,
        assignment: Option<&[u32]>,
    ) -> Result<Self, SparseError> {
        if !kernel.is_spgemm() {
            return Err(SparseError::DimensionMismatch {
                expected: "an SpGEMM kernel".to_string(),
                found: kernel.name(),
            });
        }
        let profile = spgemm_profile(a, b)?;
        let clustered = match (kernel, assignment) {
            (Kernel::SpGemmClusterWise, Some(assignment)) => {
                if assignment.len() != a.n_rows() as usize {
                    return Err(SparseError::DimensionMismatch {
                        expected: format!("assignment of length {}", a.n_rows()),
                        found: format!("assignment of length {}", assignment.len()),
                    });
                }
                Some(assignment)
            }
            _ => None,
        };
        let row_order = clustered.map(cluster_row_order);
        let accumulator_peak = match clustered {
            Some(assignment) => cluster_accumulator_peak(a, b, assignment),
            None => u64::from(profile.peak_row_nnz),
        };
        Ok(SpGemmTrace {
            a,
            b,
            row_order,
            profile,
            layout: ArrayLayout::for_pair(a, b, kernel, 32),
            accumulator_peak,
        })
    }

    /// The self-multiply source (`B = A`, the corpus default) in
    /// natural row order.
    ///
    /// # Errors
    ///
    /// See [`SpGemmTrace::new`]; self-multiply requires a square matrix.
    pub fn self_multiply(a: &'a CsrMatrix, kernel: Kernel) -> Result<Self, SparseError> {
        SpGemmTrace::new(a, a, kernel, None)
    }

    /// The symbolic profile (multiply-adds, `nnz(C)`, per-row peak)
    /// computed at construction.
    #[must_use]
    pub fn profile(&self) -> SpGemmProfile {
        self.profile
    }

    /// Peak accumulator footprint in elements: the largest number of
    /// distinct result columns produced by one execution block — a
    /// single row for Gustavson, one community for cluster-wise
    /// execution (the quantity cluster-wise computation shrinks).
    #[must_use]
    pub fn accumulator_peak(&self) -> u64 {
        self.accumulator_peak
    }

    /// The operand layout replays emit against.
    #[must_use]
    pub fn layout(&self) -> &ArrayLayout {
        &self.layout
    }

    /// Emits every access of one row: offsets prologue, per-`A`-entry
    /// `B`-row stream with accumulator scatter, then the sorted
    /// accumulator extraction into the `C` cursor.
    fn row_accesses(
        &self,
        r: u32,
        stamp: &mut [u32],
        row_cols: &mut Vec<u32>,
        out_cursor: &mut u64,
        sink: &mut dyn FnMut(Access),
    ) {
        let layout = &self.layout;
        sink(Access::read(ArrayLayout::elem(
            layout.row_offsets,
            u64::from(r),
        )));
        sink(Access::read(ArrayLayout::elem(
            layout.row_offsets,
            u64::from(r) + 1,
        )));
        let (a_cols, _) = self.a.row(r);
        let a_lo = u64::from(self.a.row_offsets()[r as usize]);
        row_cols.clear();
        for (i, &k) in a_cols.iter().enumerate() {
            let pos = a_lo + i as u64;
            sink(Access::read(ArrayLayout::elem(layout.coords, pos)));
            sink(Access::read(ArrayLayout::elem(layout.values, pos)));
            sink(Access::read(ArrayLayout::elem(
                layout.b_row_offsets,
                u64::from(k),
            )));
            sink(Access::read(ArrayLayout::elem(
                layout.b_row_offsets,
                u64::from(k) + 1,
            )));
            let (b_cols, _) = self.b.row(k);
            let b_lo = u64::from(self.b.row_offsets()[k as usize]);
            for (p, &j) in b_cols.iter().enumerate() {
                let b_pos = b_lo + p as u64;
                sink(Access::read(ArrayLayout::elem(layout.b_coords, b_pos)));
                sink(Access::read(ArrayLayout::elem(layout.b_values, b_pos)));
                // The scatter accumulates in place; the modeled cost is
                // one store per product (the read side is covered by
                // the epilogue extraction below).
                sink(Access::write(ArrayLayout::elem(layout.acc, u64::from(j))));
                if stamp[j as usize] != r + 1 {
                    stamp[j as usize] = r + 1;
                    row_cols.push(j);
                }
            }
        }
        // Epilogue: extract the row in sorted column order (the CSR
        // output convention of the numeric kernel).
        row_cols.sort_unstable();
        for &j in row_cols.iter() {
            sink(Access::read(ArrayLayout::elem(layout.acc, u64::from(j))));
            sink(Access::write(ArrayLayout::elem(
                layout.c_coords,
                *out_cursor,
            )));
            sink(Access::write(ArrayLayout::elem(
                layout.c_values,
                *out_cursor,
            )));
            *out_cursor += 1;
        }
    }
}

impl TraceSource for SpGemmTrace<'_> {
    fn len_hint(&self) -> Option<u64> {
        // Per row: 2 offset reads; per A entry: coords + values + 2 B
        // offsets; per multiply-add: B coords + B values + acc store;
        // per result entry: acc read + 2 C stores. Exact by
        // construction — CHK1002 and the determinism tests pin it.
        Some(
            2 * u64::from(self.a.n_rows())
                + 4 * self.a.nnz() as u64
                + 3 * self.profile.flops
                + 3 * self.profile.result_nnz,
        )
    }

    fn replay(&self, sink: &mut dyn FnMut(Access)) {
        let end = self.layout.end;
        let mut audited = |acc: Access| {
            commorder_sparse::debug_validate!(
                acc.addr().is_multiple_of(ELEM_BYTES) && acc.addr() + ELEM_BYTES <= end,
                "spgemm access {:#x} misaligned or beyond operand end {end:#x}",
                acc.addr()
            );
            sink(acc);
        };
        let mut stamp = vec![0u32; self.b.n_cols() as usize];
        let mut row_cols: Vec<u32> = Vec::new();
        let mut out_cursor = 0u64;
        match &self.row_order {
            Some(order) => {
                for &r in order {
                    self.row_accesses(r, &mut stamp, &mut row_cols, &mut out_cursor, &mut audited);
                }
            }
            None => {
                for r in 0..self.a.n_rows() {
                    self.row_accesses(r, &mut stamp, &mut row_cols, &mut out_cursor, &mut audited);
                }
            }
        }
    }
}

/// Cluster-wise execution order: rows grouped by community id
/// (communities ascending, rows ascending within each), via a stable
/// counting sort.
fn cluster_row_order(assignment: &[u32]) -> Vec<u32> {
    let clusters = assignment
        .iter()
        .map(|&c| c as usize + 1)
        .max()
        .unwrap_or(0);
    let mut offsets = vec![0u32; clusters + 1];
    for &c in assignment {
        offsets[c as usize + 1] += 1;
    }
    for i in 0..clusters {
        offsets[i + 1] += offsets[i];
    }
    let mut order = vec![0u32; assignment.len()];
    for (r, &c) in assignment.iter().enumerate() {
        order[offsets[c as usize] as usize] = r as u32;
        offsets[c as usize] += 1;
    }
    order
}

/// Peak accumulator footprint of cluster-wise execution: the largest
/// number of distinct result columns produced by the rows of any one
/// community (the footprint of a per-cluster accumulator).
fn cluster_accumulator_peak(a: &CsrMatrix, b: &CsrMatrix, assignment: &[u32]) -> u64 {
    let mut stamp = vec![0u32; b.n_cols() as usize];
    let mut epoch = 0u32;
    let mut peak = 0u64;
    let mut current = u32::MAX;
    let mut footprint = 0u64;
    for &r in &cluster_row_order(assignment) {
        let cluster = assignment[r as usize];
        if cluster != current {
            current = cluster;
            epoch += 1;
            peak = peak.max(footprint);
            footprint = 0;
        }
        let (a_cols, _) = a.row(r);
        for &k in a_cols {
            let (b_cols, _) = b.row(k);
            for &j in b_cols {
                if stamp[j as usize] != epoch {
                    stamp[j as usize] = epoch;
                    footprint += 1;
                }
            }
        }
    }
    peak.max(footprint)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[. 1 .], [1 . 1], [. 1 .]] plus an isolated 4th row.
        CsrMatrix::new(4, 4, vec![0, 1, 3, 4, 4], vec![1, 0, 2, 1], vec![1.0; 4]).unwrap()
    }

    #[test]
    fn len_hint_is_exact_for_both_kernels() {
        let a = sample();
        for kernel in [Kernel::SpGemmGustavson, Kernel::SpGemmClusterWise] {
            let t = SpGemmTrace::self_multiply(&a, kernel).unwrap();
            let collected = t.collect_trace();
            assert_eq!(t.len_hint(), Some(collected.len() as u64), "{kernel:?}");
        }
        let clustered =
            SpGemmTrace::new(&a, &a, Kernel::SpGemmClusterWise, Some(&[1, 0, 1, 0])).unwrap();
        let collected = clustered.collect_trace();
        assert_eq!(clustered.len_hint(), Some(collected.len() as u64));
    }

    #[test]
    fn replay_is_deterministic() {
        let a = sample();
        let t = SpGemmTrace::new(&a, &a, Kernel::SpGemmClusterWise, Some(&[1, 0, 1, 0])).unwrap();
        assert_eq!(t.collect_trace(), t.collect_trace());
    }

    #[test]
    fn cluster_wise_is_a_permutation_of_gustavson_rows() {
        // Grouping rows by community reorders whole row segments but
        // every access multiset (up to the streamed C cursor positions)
        // covers the same operand elements.
        let a = sample();
        let plain = SpGemmTrace::self_multiply(&a, Kernel::SpGemmGustavson)
            .unwrap()
            .collect_trace();
        let clustered =
            SpGemmTrace::new(&a, &a, Kernel::SpGemmClusterWise, Some(&[1, 0, 1, 0])).unwrap();
        let cw = clustered.collect_trace();
        assert_eq!(plain.len(), cw.len());
        assert_ne!(plain, cw, "cluster order {{1,3}},{{0,2}} must differ");
        let norm = |t: &[Access]| {
            let mut v: Vec<(u64, bool)> = t.iter().map(|a| (a.addr(), a.is_write())).collect();
            v.sort_unstable();
            v
        };
        // C-cursor stores aside (same region, same count), the operand
        // access multisets agree.
        let layout = *clustered.layout();
        let operand = |t: &[Access]| {
            norm(
                &t.iter()
                    .copied()
                    .filter(|a| a.addr() < layout.c_coords)
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(operand(&plain), operand(&cw));
    }

    #[test]
    fn cluster_wise_without_assignment_degenerates_to_gustavson() {
        let a = sample();
        let plain = SpGemmTrace::self_multiply(&a, Kernel::SpGemmGustavson).unwrap();
        let cw = SpGemmTrace::self_multiply(&a, Kernel::SpGemmClusterWise).unwrap();
        assert_eq!(plain.collect_trace(), cw.collect_trace());
        assert_eq!(plain.accumulator_peak(), cw.accumulator_peak());
    }

    #[test]
    fn accumulator_peaks_match_hand_count() {
        let a = sample();
        // Rows of A·A: row 0 -> B_1 = {0,2}; row 1 -> B_0 ∪ B_2 = {1};
        // row 2 -> {0,2}; row 3 -> {}. Per-row peak = 2.
        let plain = SpGemmTrace::self_multiply(&a, Kernel::SpGemmGustavson).unwrap();
        assert_eq!(plain.accumulator_peak(), 2);
        // Clusters {0,2} and {1,3}: cluster 0 produces {0,2} ∪ {0,2} =
        // {0,2} (footprint 2); cluster 1 produces {1} (footprint 1).
        let cw = SpGemmTrace::new(&a, &a, Kernel::SpGemmClusterWise, Some(&[0, 1, 0, 1])).unwrap();
        assert_eq!(cw.accumulator_peak(), 2);
        // One blob cluster: union of all rows = {0, 1, 2} (footprint 3).
        let blob =
            SpGemmTrace::new(&a, &a, Kernel::SpGemmClusterWise, Some(&[0, 0, 0, 0])).unwrap();
        assert_eq!(blob.accumulator_peak(), 3);
    }

    #[test]
    fn construction_rejects_bad_inputs() {
        let a = sample();
        let rect = CsrMatrix::new(1, 2, vec![0, 1], vec![1], vec![1.0]).unwrap();
        assert!(SpGemmTrace::self_multiply(&rect, Kernel::SpGemmGustavson).is_err());
        assert!(SpGemmTrace::new(&a, &a, Kernel::SpmvCsr, None).is_err());
        assert!(
            SpGemmTrace::new(&a, &a, Kernel::SpGemmClusterWise, Some(&[0, 1])).is_err(),
            "wrong-length assignment must be rejected"
        );
    }

    #[test]
    fn accesses_stay_inside_the_operand_space() {
        let a = sample();
        let t = SpGemmTrace::self_multiply(&a, Kernel::SpGemmGustavson).unwrap();
        let end = t.layout().end;
        t.replay(&mut |acc| {
            assert!(acc.addr() + commorder_sparse::ELEM_BYTES <= end);
        });
    }

    #[test]
    fn output_cursor_streams_sequentially() {
        let a = sample();
        let t = SpGemmTrace::self_multiply(&a, Kernel::SpGemmGustavson).unwrap();
        let layout = *t.layout();
        let mut coord_writes = Vec::new();
        t.replay(&mut |acc| {
            if acc.is_write() && acc.addr() >= layout.c_coords && acc.addr() < layout.c_values {
                coord_writes.push((acc.addr() - layout.c_coords) / u64::from(ELEM_BYTES as u32));
            }
        });
        let expect: Vec<u64> = (0..t.profile().result_nnz).collect();
        assert_eq!(coord_writes, expect);
    }
}
