//! The metric-name registry.
//!
//! Counter/gauge/histogram names are declared here, once, so that the
//! `CHK09xx` telemetry validators in `commorder-check` can flag typos
//! and undeclared metrics in emitted JSONL streams, and so `profile`
//! output can attach a one-line meaning to every number. The table is
//! **append only**: a published name never changes meaning.

/// How a metric aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic sum of non-negative deltas.
    Counter,
    /// Point-in-time sample; last write wins.
    Gauge,
    /// Distribution of raw observations (power-of-two buckets in the
    /// registry sink).
    Histogram,
}

impl MetricKind {
    /// Lowercase stable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One registry row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricInfo {
    /// The stable metric name, e.g. `cachesim.hits`.
    pub name: &'static str,
    /// How the metric aggregates.
    pub kind: MetricKind,
    /// Measurement unit of the recorded value (e.g. `seconds`, `bytes`).
    /// Mandatory for histograms — percentile exports are meaningless
    /// without one (enforced statically by `commorder-analyze` rule
    /// XT0605).
    pub unit: &'static str,
    /// One-line meaning.
    pub help: &'static str,
}

/// Every declared metric, in name order.
pub const METRICS: &[MetricInfo] = &[
    MetricInfo {
        name: "cachesim.accesses",
        kind: MetricKind::Counter,
        unit: "accesses",
        help: "cache accesses simulated",
    },
    MetricInfo {
        name: "cachesim.compulsory_misses",
        kind: MetricKind::Counter,
        unit: "misses",
        help: "first-touch (compulsory) misses",
    },
    MetricInfo {
        name: "cachesim.dead_lines",
        kind: MetricKind::Counter,
        unit: "lines",
        help: "lines evicted or flushed without a single reuse",
    },
    MetricInfo {
        name: "cachesim.dram_bytes",
        kind: MetricKind::Counter,
        unit: "bytes",
        help: "simulated DRAM traffic in bytes (fills + write-backs)",
    },
    MetricInfo {
        name: "cachesim.evictions",
        kind: MetricKind::Counter,
        unit: "lines",
        help: "lines evicted to make room",
    },
    MetricInfo {
        name: "cachesim.fill_misses",
        kind: MetricKind::Counter,
        unit: "misses",
        help: "read misses that fetched a line from DRAM",
    },
    MetricInfo {
        name: "cachesim.fills",
        kind: MetricKind::Counter,
        unit: "lines",
        help: "lines filled or allocated",
    },
    MetricInfo {
        name: "cachesim.hits",
        kind: MetricKind::Counter,
        unit: "accesses",
        help: "cache hits",
    },
    MetricInfo {
        name: "cachesim.miss.capacity",
        kind: MetricKind::Counter,
        unit: "misses",
        help: "Three-C capacity misses (classify runs only)",
    },
    MetricInfo {
        name: "cachesim.miss.compulsory",
        kind: MetricKind::Counter,
        unit: "misses",
        help: "Three-C compulsory misses (classify runs only)",
    },
    MetricInfo {
        name: "cachesim.miss.conflict",
        kind: MetricKind::Counter,
        unit: "misses",
        help: "Three-C conflict misses (classify runs only)",
    },
    MetricInfo {
        name: "cachesim.trace.peak_bytes",
        kind: MetricKind::Gauge,
        unit: "bytes",
        help: "peak per-trace buffer bytes of the last simulation (0 for streaming LRU)",
    },
    MetricInfo {
        name: "cachesim.write_alloc_misses",
        kind: MetricKind::Counter,
        unit: "misses",
        help: "write misses allocated without fetch",
    },
    MetricInfo {
        name: "cachesim.writebacks",
        kind: MetricKind::Counter,
        unit: "lines",
        help: "dirty lines written back to DRAM",
    },
    MetricInfo {
        name: "exec.jobs",
        kind: MetricKind::Counter,
        unit: "jobs",
        help: "jobs executed by the engine",
    },
    MetricInfo {
        name: "exec.queue_wait_seconds",
        kind: MetricKind::Histogram,
        unit: "seconds",
        help: "per-job seconds between batch submission and job start",
    },
    MetricInfo {
        name: "exec.steals",
        kind: MetricKind::Counter,
        unit: "jobs",
        help: "jobs stolen from a sibling worker's queue",
    },
    MetricInfo {
        name: "exec.utilization",
        kind: MetricKind::Gauge,
        unit: "ratio",
        help: "busy_seconds / (threads * wall_seconds) of the last batch",
    },
    MetricInfo {
        name: "grid.cells",
        kind: MetricKind::Counter,
        unit: "cells",
        help: "experiment grid cells simulated",
    },
    MetricInfo {
        name: "pipeline.spgemm_acc_peak",
        kind: MetricKind::Gauge,
        unit: "elements",
        help: "peak SpGEMM accumulator footprint (distinct result columns) of the last simulated execution block",
    },
    MetricInfo {
        name: "reorder.community.merges",
        kind: MetricKind::Counter,
        unit: "merges",
        help: "aggregate merges performed during community detection",
    },
    MetricInfo {
        name: "reorder.community.passes",
        kind: MetricKind::Counter,
        unit: "sweeps",
        help: "aggregation sweeps performed during community detection",
    },
    MetricInfo {
        name: "reorder.community.shards",
        kind: MetricKind::Counter,
        unit: "shards",
        help: "detection shards (islands or label-prop groups) aggregated",
    },
];

/// Looks up a metric's registry row; `None` for undeclared names.
#[must_use]
pub fn lookup(name: &str) -> Option<&'static MetricInfo> {
    METRICS
        .binary_search_by(|info| info.name.cmp(name))
        .ok()
        .map(|i| &METRICS[i])
}

/// One span-registry row.
///
/// Spans are declared separately from metrics because they never
/// aggregate: a span name keys timed scopes in the JSONL stream, so
/// the only invariant is that every `span!` call site uses a declared
/// name (enforced statically by `commorder-analyze` rule XT0601 and
/// dynamically by the `CHK09xx` validators).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanInfo {
    /// The stable span name, e.g. `pipeline.simulate`.
    pub name: &'static str,
    /// One-line meaning.
    pub help: &'static str,
}

/// Every declared span, in name order.
pub const SPANS: &[SpanInfo] = &[
    SpanInfo {
        name: "community.detect",
        help: "full community-detection run over one matrix",
    },
    SpanInfo {
        name: "community.islands",
        help: "sharding the graph ahead of parallel community detection",
    },
    SpanInfo {
        name: "community.pass",
        help: "one aggregation sweep inside community detection",
    },
    SpanInfo {
        name: "community.shard",
        help: "aggregation over one detection shard",
    },
    SpanInfo {
        name: "exec.job",
        help: "one job executed by the work-stealing engine",
    },
    SpanInfo {
        name: "grid.cell",
        help: "one experiment-grid cell (matrix x technique x config)",
    },
    SpanInfo {
        name: "grid.job",
        help: "one grid job from dispatch to result",
    },
    SpanInfo {
        name: "grid.permute",
        help: "applying a computed permutation inside a grid job",
    },
    SpanInfo {
        name: "grid.reorder",
        help: "computing a reordering inside a grid job",
    },
    SpanInfo {
        name: "pipeline.model",
        help: "analytic cost-model stage of the pipeline",
    },
    SpanInfo {
        name: "pipeline.simulate",
        help: "cache-simulation stage of the pipeline",
    },
    SpanInfo {
        name: "pipeline.spgemm",
        help: "SpGEMM two-operand simulation (trace + cache + model)",
    },
    SpanInfo {
        name: "pipeline.trace_gen",
        help: "trace-generation stage of the pipeline",
    },
    SpanInfo {
        name: "rabbit.order",
        help: "hierarchy flattening inside rabbit ordering",
    },
    SpanInfo {
        name: "reorder.boba",
        help: "full boba first-touch reordering over one matrix",
    },
    SpanInfo {
        name: "reorder.rabbit",
        help: "full rabbit-order run over one matrix",
    },
    SpanInfo {
        name: "suite",
        help: "one full suite invocation",
    },
    SpanInfo {
        name: "suite.generate",
        help: "corpus generation ahead of a suite run",
    },
];

/// Looks up a span's registry row; `None` for undeclared names.
#[must_use]
pub fn lookup_span(name: &str) -> Option<&'static SpanInfo> {
    SPANS
        .binary_search_by(|info| info.name.cmp(name))
        .ok()
        .map(|i| &SPANS[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_unique_and_documented() {
        for w in METRICS.windows(2) {
            assert!(w[0].name < w[1].name, "{} !< {}", w[0].name, w[1].name);
        }
        for info in METRICS {
            assert!(!info.help.is_empty(), "{}", info.name);
            assert!(
                !info.unit.is_empty(),
                "{} must declare a measurement unit",
                info.name
            );
            assert!(
                info.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c)),
                "{}",
                info.name
            );
        }
    }

    #[test]
    fn span_table_is_sorted_unique_and_documented() {
        for w in SPANS.windows(2) {
            assert!(w[0].name < w[1].name, "{} !< {}", w[0].name, w[1].name);
        }
        for info in SPANS {
            assert!(!info.help.is_empty(), "{}", info.name);
            assert!(
                info.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c)),
                "{}",
                info.name
            );
        }
    }

    #[test]
    fn lookup_span_known_and_unknown() {
        assert_eq!(
            lookup_span("pipeline.simulate").map(|i| i.name),
            Some("pipeline.simulate")
        );
        assert!(lookup_span("pipeline.simulated").is_none());
    }

    #[test]
    fn lookup_known_and_unknown() {
        assert_eq!(
            lookup("exec.steals").map(|i| i.kind),
            Some(MetricKind::Counter)
        );
        assert_eq!(
            lookup("exec.queue_wait_seconds").map(|i| i.kind),
            Some(MetricKind::Histogram)
        );
        assert!(lookup("exec.stolen").is_none());
    }
}
