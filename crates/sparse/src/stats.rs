//! Structural statistics the paper's analysis is built on: degree
//! distributions, the top-10% **skew** metric (§V-B), and classic
//! bandwidth/profile measures of non-zero concentration near the diagonal.

use crate::CsrMatrix;

/// Summary of a degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: u32,
    /// Largest degree.
    pub max: u32,
    /// Arithmetic mean degree (the paper's "average row length").
    pub mean: f64,
    /// Median degree.
    pub median: u32,
    /// 90th-percentile degree.
    pub p90: u32,
    /// Number of vertices with degree zero (empty rows — the paper's
    /// wiki-Talk footnote notes 93% empty rows distort ideal-traffic
    /// estimates).
    pub zero_count: u32,
}

impl DegreeStats {
    /// Computes summary statistics from a degree vector.
    ///
    /// Returns an all-zero summary for an empty input.
    #[must_use]
    pub fn from_degrees(degrees: &[u32]) -> DegreeStats {
        if degrees.is_empty() {
            return DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                median: 0,
                p90: 0,
                zero_count: 0,
            };
        }
        let mut sorted = degrees.to_vec();
        sorted.sort_unstable();
        let sum: u64 = sorted.iter().map(|&d| u64::from(d)).sum();
        let pct = |p: f64| -> u32 {
            let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
            sorted[idx]
        };
        DegreeStats {
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            mean: sum as f64 / sorted.len() as f64,
            median: pct(0.5),
            p90: pct(0.9),
            zero_count: sorted.iter().take_while(|&&d| d == 0).count() as u32,
        }
    }
}

/// The paper's degree-**skew** metric (§V-B): the fraction of non-zeros
/// owned by the top 10% most-connected rows, in `[0, 1]`.
///
/// "High skew values indicate a stronger power-law behavior where the hub
/// vertices are even more disproportionately connected." The paper reports
/// it as a percentage; multiply by 100 to match.
///
/// Returns 0 for an empty matrix.
#[must_use]
pub fn skew_top10(a: &CsrMatrix) -> f64 {
    skew_top_fraction(a, 0.10)
}

/// Generalization of [`skew_top10`]: fraction of non-zeros owned by the
/// top `frac` (by row degree) of rows.
///
/// # Panics
///
/// Panics if `frac` is not in `(0, 1]`.
#[must_use]
pub fn skew_top_fraction(a: &CsrMatrix, frac: f64) -> f64 {
    assert!(frac > 0.0 && frac <= 1.0, "frac must be in (0, 1]");
    if a.nnz() == 0 || a.n_rows() == 0 {
        return 0.0;
    }
    let mut degrees = a.out_degrees();
    degrees.sort_unstable_by(|x, y| y.cmp(x));
    let top = ((a.n_rows() as f64 * frac).ceil() as usize).max(1);
    let top_nnz: u64 = degrees.iter().take(top).map(|&d| u64::from(d)).sum();
    top_nnz as f64 / a.nnz() as f64
}

/// Matrix bandwidth: `max |r - c|` over stored entries (0 for an empty
/// matrix). Reordering for locality tends to shrink it (Fig. 1's
/// "non-zeros close to the main diagonal").
#[must_use]
pub fn bandwidth(a: &CsrMatrix) -> u32 {
    a.iter().map(|(r, c, _)| r.abs_diff(c)).max().unwrap_or(0)
}

/// Mean |r - c| over stored entries (0 for an empty matrix) — a smoother
/// locality proxy than [`bandwidth`], which only sees the worst entry.
#[must_use]
pub fn mean_index_distance(a: &CsrMatrix) -> f64 {
    if a.nnz() == 0 {
        return 0.0;
    }
    let sum: u64 = a.iter().map(|(r, c, _)| u64::from(r.abs_diff(c))).sum();
    sum as f64 / a.nnz() as f64
}

/// Matrix profile (a.k.a. envelope size): `Σ_r (r - min_col(r))` over
/// non-empty rows with `min_col(r) <= r`, the quantity RCM minimizes.
#[must_use]
pub fn profile(a: &CsrMatrix) -> u64 {
    (0..a.n_rows())
        .filter_map(|r| {
            let (cols, _) = a.row(r);
            cols.first()
                .map(|&first| u64::from(r.saturating_sub(first)))
        })
        .sum()
}

/// Pearson correlation coefficient between two equal-length samples.
///
/// Used for the paper's §V-B correlations (insularity vs. community size:
/// −0.472; insularity vs. skew: −0.721). Returns `None` when either input
/// has zero variance or fewer than two points.
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// Geometric mean of strictly positive samples; `None` if empty or any
/// sample is `<= 0`. Ratio summaries across matrices (the "mean DRAM
/// traffic" numbers under Fig. 2) are aggregated this way.
#[must_use]
pub fn geometric_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

/// Arithmetic mean; `None` if empty.
#[must_use]
pub fn arithmetic_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    fn star5() -> CsrMatrix {
        // Hub 0 connected to 1..4 (symmetric star).
        let mut entries = Vec::new();
        for v in 1..5u32 {
            entries.push((0, v, 1.0));
            entries.push((v, 0, 1.0));
        }
        CsrMatrix::try_from(crate::CooMatrix::from_entries(5, 5, entries).unwrap()).unwrap()
    }

    #[test]
    fn degree_stats_basics() {
        let s = DegreeStats::from_degrees(&[0, 1, 1, 2, 4]);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 4);
        assert!((s.mean - 1.6).abs() < 1e-12);
        assert_eq!(s.median, 1);
        assert_eq!(s.zero_count, 1);
    }

    #[test]
    fn degree_stats_empty() {
        let s = DegreeStats::from_degrees(&[]);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn skew_of_star_is_hub_dominated() {
        let a = star5();
        // Top 10% of 5 rows = 1 row = the hub with 4 of 8 nnz.
        assert!((skew_top10(&a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn skew_of_uniform_matrix_is_proportional() {
        // Ring: every row degree 2; top 10% of rows hold ~10% of nnz.
        let n = 100u32;
        let entries: Vec<_> = (0..n)
            .flat_map(|v| {
                let next = (v + 1) % n;
                [(v, next, 1.0), (next, v, 1.0)]
            })
            .collect();
        let a =
            CsrMatrix::try_from(crate::CooMatrix::from_entries(n, n, entries).unwrap()).unwrap();
        let skew = skew_top10(&a);
        assert!((skew - 0.10).abs() < 0.01, "skew = {skew}");
    }

    #[test]
    fn skew_panics_outside_range() {
        let a = star5();
        let result = std::panic::catch_unwind(|| skew_top_fraction(&a, 0.0));
        assert!(result.is_err());
    }

    #[test]
    fn bandwidth_and_profile() {
        let a = star5();
        assert_eq!(bandwidth(&a), 4);
        // Rows 1..4 each reach back to column 0: profile = 1+2+3+4 = 10.
        assert_eq!(profile(&a), 10);
        assert!(mean_index_distance(&a) > 0.0);
    }

    #[test]
    fn bandwidth_empty() {
        assert_eq!(bandwidth(&CsrMatrix::empty(3)), 0);
        assert_eq!(profile(&CsrMatrix::empty(3)), 0);
        assert_eq!(mean_index_distance(&CsrMatrix::empty(3)), 0.0);
    }

    #[test]
    fn pearson_perfect_correlations() {
        let xs = [1.0, 2.0, 3.0];
        assert!((pearson(&xs, &[2.0, 4.0, 6.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &[3.0, 2.0, 1.0]).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[2.0, 3.0, 4.0]), None);
    }

    #[test]
    fn means() {
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[1.0, -2.0]), None);
        assert!((geometric_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!((arithmetic_mean(&[2.0, 8.0]).unwrap() - 5.0).abs() < 1e-12);
        assert_eq!(arithmetic_mean(&[]), None);
    }
}

/// Gini coefficient of a degree distribution — a single-number
/// inequality measure complementing [`skew_top10`] (0 = perfectly
/// uniform, →1 = one vertex owns everything). `None` for empty or
/// all-zero inputs.
#[must_use]
pub fn gini(degrees: &[u32]) -> Option<f64> {
    if degrees.is_empty() {
        return None;
    }
    let mut sorted: Vec<u64> = degrees.iter().map(|&d| u64::from(d)).collect();
    sorted.sort_unstable();
    let total: u64 = sorted.iter().sum();
    if total == 0 {
        return None;
    }
    let n = sorted.len() as f64;
    // G = (2 * Σ i·x_i) / (n * Σ x_i) − (n + 1)/n, with 1-based ranks i.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    Some((2.0 * weighted) / (n * total as f64) - (n + 1.0) / n)
}

#[cfg(test)]
mod gini_tests {
    use super::gini;

    #[test]
    fn uniform_distribution_has_zero_gini() {
        let g = gini(&[5; 100]).unwrap();
        assert!(g.abs() < 1e-12, "gini = {g}");
    }

    #[test]
    fn single_owner_approaches_one() {
        let mut degrees = vec![0u32; 99];
        degrees.push(1000);
        let g = gini(&degrees).unwrap();
        assert!(g > 0.95, "gini = {g}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(gini(&[]), None);
        assert_eq!(gini(&[0, 0, 0]), None);
    }

    #[test]
    fn skewed_beats_uniform() {
        let uniform = gini(&[4; 50]).unwrap();
        let skewed = gini(&(1..=50u32).collect::<Vec<_>>()).unwrap();
        assert!(skewed > uniform + 0.2);
    }
}
