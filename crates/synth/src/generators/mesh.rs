use commorder_sparse::{CsrMatrix, SparseError};

use crate::generators::undirected_csr;
use crate::rng::Rng;

/// 2D grid/mesh graph with optional diagonal links and random perturbation.
///
/// Stands in for road networks and 2D CFD meshes: bounded degree (≤ 8),
/// enormous diameter, and — when `scramble_ids` is false — a generated
/// order that is already strongly diagonal (row-major scan order), like
/// mesh matrices published by solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grid2d {
    /// Grid width (number of columns of vertices).
    pub width: u32,
    /// Grid height (number of rows of vertices).
    pub height: u32,
    /// Also connect diagonal neighbours (8-point stencil).
    pub diagonals: bool,
    /// Probability per vertex of one extra random long-range edge
    /// (models bridges/tunnels in road networks).
    pub shortcut_p: f64,
    /// Shuffle vertex IDs after generation.
    pub scramble_ids: bool,
}

impl Grid2d {
    /// Generates the mesh.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the sparse layer.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the vertex count overflows
    /// `u32`.
    pub fn generate(&self, seed: u64) -> Result<CsrMatrix, SparseError> {
        assert!(
            self.width > 0 && self.height > 0,
            "dimensions must be positive"
        );
        let n_u64 = u64::from(self.width) * u64::from(self.height);
        assert!(n_u64 <= u64::from(u32::MAX), "grid too large for u32 ids");
        let n = n_u64 as u32;
        let mut rng = Rng::new(seed);
        let at = |x: u32, y: u32| y * self.width + x;
        let mut edges = Vec::with_capacity(n as usize * 2);
        for y in 0..self.height {
            for x in 0..self.width {
                let u = at(x, y);
                if x + 1 < self.width {
                    edges.push((u, at(x + 1, y)));
                }
                if y + 1 < self.height {
                    edges.push((u, at(x, y + 1)));
                }
                if self.diagonals && x + 1 < self.width && y + 1 < self.height {
                    edges.push((u, at(x + 1, y + 1)));
                    edges.push((at(x + 1, y), at(x, y + 1)));
                }
                if self.shortcut_p > 0.0 && rng.gen_bool(self.shortcut_p) {
                    let v = rng.gen_u32(n);
                    if v != u {
                        edges.push((u, v));
                    }
                }
            }
        }
        if self.scramble_ids {
            let mut relabel: Vec<u32> = (0..n).collect();
            rng.shuffle(&mut relabel);
            for e in &mut edges {
                e.0 = relabel[e.0 as usize];
                e.1 = relabel[e.1 as usize];
            }
        }
        undirected_csr(n, &edges)
    }
}

/// 3D grid graph (7-point stencil), standing in for 3D CFD /
/// electromagnetic solver matrices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grid3d {
    /// Extent along x.
    pub nx: u32,
    /// Extent along y.
    pub ny: u32,
    /// Extent along z.
    pub nz: u32,
    /// Shuffle vertex IDs after generation.
    pub scramble_ids: bool,
}

impl Grid3d {
    /// Generates the mesh.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the sparse layer.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero or the vertex count overflows `u32`.
    pub fn generate(&self, seed: u64) -> Result<CsrMatrix, SparseError> {
        assert!(
            self.nx > 0 && self.ny > 0 && self.nz > 0,
            "dimensions must be positive"
        );
        let n_u64 = u64::from(self.nx) * u64::from(self.ny) * u64::from(self.nz);
        assert!(n_u64 <= u64::from(u32::MAX), "grid too large for u32 ids");
        let n = n_u64 as u32;
        let at = |x: u32, y: u32, z: u32| (z * self.ny + y) * self.nx + x;
        let mut edges = Vec::with_capacity(n as usize * 3);
        for z in 0..self.nz {
            for y in 0..self.ny {
                for x in 0..self.nx {
                    let u = at(x, y, z);
                    if x + 1 < self.nx {
                        edges.push((u, at(x + 1, y, z)));
                    }
                    if y + 1 < self.ny {
                        edges.push((u, at(x, y + 1, z)));
                    }
                    if z + 1 < self.nz {
                        edges.push((u, at(x, y, z + 1)));
                    }
                }
            }
        }
        if self.scramble_ids {
            let mut rng = Rng::new(seed);
            let mut relabel: Vec<u32> = (0..n).collect();
            rng.shuffle(&mut relabel);
            for e in &mut edges {
                e.0 = relabel[e.0 as usize];
                e.1 = relabel[e.1 as usize];
            }
        }
        undirected_csr(n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_well_formed;
    use commorder_sparse::stats::{bandwidth, DegreeStats};

    #[test]
    fn grid2d_has_bounded_degree_and_small_bandwidth() {
        let g = Grid2d {
            width: 30,
            height: 20,
            diagonals: false,
            shortcut_p: 0.0,
            scramble_ids: false,
        }
        .generate(1)
        .unwrap();
        assert_well_formed(&g);
        assert_eq!(g.n_rows(), 600);
        let s = DegreeStats::from_degrees(&g.out_degrees());
        assert_eq!(s.max, 4);
        assert_eq!(s.min, 2);
        // Row-major order keeps bandwidth == width.
        assert_eq!(bandwidth(&g), 30);
    }

    #[test]
    fn diagonals_raise_degree_to_eight() {
        let g = Grid2d {
            width: 10,
            height: 10,
            diagonals: true,
            shortcut_p: 0.0,
            scramble_ids: false,
        }
        .generate(1)
        .unwrap();
        let s = DegreeStats::from_degrees(&g.out_degrees());
        assert_eq!(s.max, 8);
    }

    #[test]
    fn scrambling_destroys_bandwidth() {
        let tidy = Grid2d {
            width: 50,
            height: 50,
            diagonals: false,
            shortcut_p: 0.0,
            scramble_ids: false,
        }
        .generate(2)
        .unwrap();
        let messy = Grid2d {
            width: 50,
            height: 50,
            diagonals: false,
            shortcut_p: 0.0,
            scramble_ids: true,
        }
        .generate(2)
        .unwrap();
        assert!(bandwidth(&messy) > bandwidth(&tidy) * 10);
        assert_eq!(messy.nnz(), tidy.nnz());
    }

    #[test]
    fn shortcuts_add_edges() {
        let base = Grid2d {
            width: 40,
            height: 40,
            diagonals: false,
            shortcut_p: 0.0,
            scramble_ids: false,
        }
        .generate(3)
        .unwrap();
        let with = Grid2d {
            width: 40,
            height: 40,
            diagonals: false,
            shortcut_p: 0.5,
            scramble_ids: false,
        }
        .generate(3)
        .unwrap();
        assert!(with.nnz() > base.nnz());
    }

    #[test]
    fn grid3d_seven_point_stencil() {
        let g = Grid3d {
            nx: 8,
            ny: 8,
            nz: 8,
            scramble_ids: false,
        }
        .generate(1)
        .unwrap();
        assert_well_formed(&g);
        assert_eq!(g.n_rows(), 512);
        let s = DegreeStats::from_degrees(&g.out_degrees());
        assert_eq!(s.max, 6);
        assert_eq!(s.min, 3);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = Grid2d {
            width: 12,
            height: 12,
            diagonals: false,
            shortcut_p: 0.3,
            scramble_ids: true,
        };
        assert_eq!(cfg.generate(6).unwrap(), cfg.generate(6).unwrap());
    }
}
