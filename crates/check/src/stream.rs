//! Validators for streaming trace sources and next-use arrays
//! (`CHK10xx`).
//!
//! The cachesim layer replays traces instead of materializing them
//! (`TraceSource`); these checks audit that a replayable source is
//! faithful — every replay yields the collected counterpart
//! access-for-access — and that a Belady next-use array is monotone
//! consistent with the trace it was derived from. Both validators hold
//! no per-access state beyond what they are handed: the stream check
//! compares against a caller-provided slice during a single replay.

use std::collections::HashMap;

use commorder_cachesim::{Access, CacheConfig, TraceSource};

use crate::codes;
use crate::diag::{Diagnostic, Location};

/// How many per-access mismatches are reported before the stream check
/// stops attaching diagnostics (the count is still exact in the summary).
const MISMATCH_LIMIT: usize = 8;

/// Audits a replayable source against its collected counterpart.
///
/// Every replayed access must equal `collected` at the same position
/// (`CHK1001`); the replayed length must equal `collected.len()`, and a
/// non-`None` [`TraceSource::len_hint`] must agree too (`CHK1002`).
#[must_use]
pub fn check_stream_equivalence<S: TraceSource + ?Sized>(
    source: &S,
    collected: &[Access],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut mismatches = 0u64;
    source.replay(&mut |acc| {
        if let Some(&want) = collected.get(i) {
            if acc != want {
                mismatches += 1;
                if out.len() < MISMATCH_LIMIT {
                    out.push(Diagnostic::error(
                        codes::STREAM_MISMATCH,
                        Location::at("stream", i as u64),
                        format!("replayed {acc:?} but the collected trace holds {want:?}"),
                    ));
                }
            }
        }
        i += 1;
    });
    if mismatches as usize > out.len() {
        out.push(Diagnostic::error(
            codes::STREAM_MISMATCH,
            Location::whole("stream"),
            format!("{mismatches} replayed accesses disagree with the collected trace"),
        ));
    }
    if i != collected.len() {
        out.push(Diagnostic::error(
            codes::STREAM_LENGTH,
            Location::whole("stream"),
            format!(
                "replay produced {i} accesses but the collected trace holds {}",
                collected.len()
            ),
        ));
    }
    if let Some(hint) = source.len_hint() {
        if hint != i as u64 {
            out.push(Diagnostic::error(
                codes::STREAM_LENGTH,
                Location::whole("stream.len_hint"),
                format!("len_hint promises {hint} accesses but replay produced {i}"),
            ));
        }
    }
    out
}

/// Audits a Belady next-use array against the trace it was derived from
/// (`CHK1003`).
///
/// For every position `i`, `next[i]` must be the index of the *next*
/// access to the same cache line (strictly greater than `i`, same tag,
/// no intermediate touch of that tag), or `u64::MAX` when the line is
/// never touched again. The expected value is recomputed here from a
/// per-tag position index — an algorithm independent of the forward
/// patch pass in `commorder_cachesim::belady` — so the two
/// implementations cross-validate. A length mismatch between `trace`
/// and `next` is also `CHK1003`.
#[must_use]
pub fn check_next_use(trace: &[Access], next: &[u64], config: &CacheConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if trace.len() != next.len() {
        out.push(Diagnostic::error(
            codes::NEXT_USE,
            Location::whole("next_use"),
            format!(
                "next-use array has {} entries for a {}-access trace",
                next.len(),
                trace.len()
            ),
        ));
        return out;
    }
    let line = u64::from(config.line_bytes.max(1));
    let mut positions: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, a) in trace.iter().enumerate() {
        positions.entry(a.addr() / line).or_default().push(i);
    }
    for (i, a) in trace.iter().enumerate() {
        let pos = &positions[&(a.addr() / line)];
        let at = pos.binary_search(&i).expect("index recorded above");
        let expected = pos.get(at + 1).map_or(u64::MAX, |&j| j as u64);
        if next[i] != expected {
            if out.len() >= MISMATCH_LIMIT {
                out.push(Diagnostic::error(
                    codes::NEXT_USE,
                    Location::whole("next_use"),
                    "further next-use mismatches suppressed".to_string(),
                ));
                break;
            }
            out.push(Diagnostic::error(
                codes::NEXT_USE,
                Location::at("next_use", i as u64),
                format!(
                    "entry is {} but the next touch of line {:#x} is at {expected}",
                    next[i],
                    a.addr() / line
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propcheck::{arb_trace, run_cases, DEFAULT_CASES};
    use commorder_cachesim::belady::next_use_indices;
    use commorder_synth::rng::Rng;

    fn cfg() -> CacheConfig {
        CacheConfig {
            capacity_bytes: 256,
            line_bytes: 32,
            associativity: 2,
        }
    }

    struct LyingSource {
        truth: Vec<Access>,
        lie_at: Option<usize>,
        drop_last: bool,
        hint: Option<u64>,
    }

    impl TraceSource for LyingSource {
        fn len_hint(&self) -> Option<u64> {
            self.hint
        }

        fn replay(&self, sink: &mut dyn FnMut(Access)) {
            let end = self.truth.len() - usize::from(self.drop_last);
            for (i, &a) in self.truth[..end].iter().enumerate() {
                if self.lie_at == Some(i) {
                    sink(Access::write(a.addr() ^ 64));
                } else {
                    sink(a);
                }
            }
        }
    }

    #[test]
    fn faithful_source_is_clean() {
        let truth: Vec<Access> = (0..100u64).map(|i| Access::read(i % 13 * 4)).collect();
        let source = LyingSource {
            truth: truth.clone(),
            lie_at: None,
            drop_last: false,
            hint: Some(100),
        };
        assert!(check_stream_equivalence(&source, &truth).is_empty());
        // Slices are faithful sources of themselves by construction.
        assert!(check_stream_equivalence(&truth[..], &truth).is_empty());
    }

    #[test]
    fn mismatched_access_is_chk1001() {
        let truth: Vec<Access> = (0..10u64).map(|i| Access::read(i * 4)).collect();
        let source = LyingSource {
            truth: truth.clone(),
            lie_at: Some(3),
            drop_last: false,
            hint: None,
        };
        let d = check_stream_equivalence(&source, &truth);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, codes::STREAM_MISMATCH);
        assert_eq!(d[0].location.index, Some(3));
    }

    #[test]
    fn short_replay_and_bad_hint_are_chk1002() {
        let truth: Vec<Access> = (0..10u64).map(|i| Access::read(i * 4)).collect();
        let source = LyingSource {
            truth: truth.clone(),
            lie_at: None,
            drop_last: true,
            hint: Some(10),
        };
        let d = check_stream_equivalence(&source, &truth);
        assert_eq!(
            d.iter().filter(|d| d.code == codes::STREAM_LENGTH).count(),
            2,
            "{d:?}"
        );
    }

    #[test]
    fn consistent_next_use_is_clean() {
        let trace = vec![
            Access::read(0),
            Access::read(64),
            Access::write(4), // same line as 0
            Access::read(64),
        ];
        let next = next_use_indices(&trace, &cfg());
        assert!(check_next_use(&trace, &next, &cfg()).is_empty());
    }

    #[test]
    fn corrupted_next_use_is_chk1003() {
        let trace = vec![Access::read(0), Access::read(4), Access::read(64)];
        let mut next = next_use_indices(&trace, &cfg());
        next[0] = 2; // the true next touch of line 0 is index 1
        let d = check_next_use(&trace, &next, &cfg());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, codes::NEXT_USE);
        let short = check_next_use(&trace, &next[..2], &cfg());
        assert_eq!(short[0].code, codes::NEXT_USE);
    }

    #[test]
    fn next_use_property_holds_on_random_traces() {
        run_cases("next-use-monotone", DEFAULT_CASES, |rng: &mut Rng| {
            let len = 1 + rng.gen_range(400) as usize;
            let trace = arb_trace(rng, len, 4096);
            let next = next_use_indices(&trace, &cfg());
            let d = check_next_use(&trace, &next, &cfg());
            assert!(d.is_empty(), "{d:?}");
        });
    }

    #[test]
    fn stream_equivalence_property_on_random_traces() {
        run_cases("stream-slice-faithful", DEFAULT_CASES, |rng: &mut Rng| {
            let trace = arb_trace(rng, 200, 2048);
            let collected = TraceSource::collect_trace(&trace[..]);
            assert!(check_stream_equivalence(&trace[..], &collected).is_empty());
        });
    }

    #[test]
    fn spgemm_sources_stream_faithfully_on_random_operands() {
        use crate::propcheck::arb_csr;
        use commorder_cachesim::SpGemmTrace;
        use commorder_sparse::traffic::Kernel;
        run_cases("spgemm-stream-faithful", DEFAULT_CASES, |rng: &mut Rng| {
            let a = arb_csr(rng, 24, 3);
            let source = SpGemmTrace::new(&a, &a, Kernel::SpGemmGustavson, None)
                .expect("square self-multiply always constructs");
            let collected = source.collect_trace();
            let d = check_stream_equivalence(&source, &collected);
            assert!(d.is_empty(), "{d:?}");
        });
    }

    #[test]
    fn cluster_wise_spgemm_streams_faithfully_under_random_assignments() {
        use crate::propcheck::arb_csr;
        use commorder_cachesim::SpGemmTrace;
        use commorder_sparse::traffic::Kernel;
        run_cases("spgemm-cluster-stream-faithful", DEFAULT_CASES, |rng| {
            let a = arb_csr(rng, 24, 3);
            let n_comms = 1 + rng.gen_u32(4);
            let assignment: Vec<u32> = (0..a.n_rows()).map(|_| rng.gen_u32(n_comms)).collect();
            let plain = SpGemmTrace::new(&a, &a, Kernel::SpGemmGustavson, None)
                .expect("square self-multiply always constructs");
            let clustered = SpGemmTrace::new(&a, &a, Kernel::SpGemmClusterWise, Some(&assignment))
                .expect("matching assignment length always constructs");
            let collected = clustered.collect_trace();
            let d = check_stream_equivalence(&clustered, &collected);
            assert!(d.is_empty(), "{d:?}");
            // The row schedule changes; the access count does not.
            assert_eq!(plain.len_hint(), clustered.len_hint());
            assert_eq!(plain.len_hint(), Some(collected.len() as u64));
        });
    }
}
