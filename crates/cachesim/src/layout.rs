//! Address-space layout of the kernel operands.
//!
//! The trace generator places each array (CSR components, vectors, dense
//! matrices) in its own line-aligned region of a flat address space, so
//! distinct arrays never alias a cache line — matching a real allocator's
//! behaviour for multi-megabyte buffers.

use commorder_sparse::{traffic::Kernel, CsrMatrix, ELEM_BYTES};

/// Base addresses (bytes) of every operand region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayLayout {
    /// CSR `rowOffsets` (length `n + 1`).
    pub row_offsets: u64,
    /// CSR/COO column indices (`A.coords`, length `nnz`).
    pub coords: u64,
    /// Non-zero values (length `nnz`).
    pub values: u64,
    /// COO row indices (length `nnz`).
    pub coo_rows: u64,
    /// Dense input vector `X` (length `n`).
    pub x: u64,
    /// Dense output vector `Y` (length `n`).
    pub y: u64,
    /// Dense input matrix `B` (row-major `n x k`).
    pub b: u64,
    /// Dense output matrix `C` (row-major `n x k`).
    pub c: u64,
    /// Propagation-blocking bin storage (`2·nnz` elements: destination
    /// row + partial value per non-zero).
    pub bins: u64,
    /// Exclusive end (bytes) of the operand address space: every valid
    /// access satisfies `addr + ELEM_BYTES <= end`.
    pub end: u64,
    /// Line size the layout was aligned to.
    pub line_bytes: u32,
}

impl ArrayLayout {
    /// Lays out the operands of `kernel` on an `a`-shaped problem.
    #[must_use]
    pub fn new(a: &CsrMatrix, kernel: Kernel, line_bytes: u32) -> Self {
        let n = u64::from(a.n_rows());
        let nnz = a.nnz() as u64;
        let k = match kernel {
            Kernel::SpmmCsr { k } => u64::from(k),
            _ => 1,
        };
        let line = u64::from(line_bytes);
        let align = |addr: u64| addr.div_ceil(line) * line;
        let mut cursor = 0u64;
        let mut region = |elems: u64| {
            let base = cursor;
            cursor = align(cursor + elems * ELEM_BYTES);
            base
        };
        // Tiled kernels carry one offsets array per tile.
        let row_offsets = region(kernel.tiles(n) * (n + 1));
        let coords = region(nnz);
        let values = region(nnz);
        let coo_rows = region(nnz);
        let x = region(n);
        let y = region(n);
        let b = region(n * k);
        let c = region(n * k);
        let bins = region(2 * nnz);
        ArrayLayout {
            row_offsets,
            coords,
            values,
            coo_rows,
            x,
            y,
            b,
            c,
            bins,
            end: cursor,
            line_bytes,
        }
    }

    /// Byte address of element `i` of a region starting at `base`.
    #[must_use]
    pub fn elem(base: u64, i: u64) -> u64 {
        base + i * ELEM_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::new(3, 3, vec![0, 1, 2, 2], vec![1, 0], vec![1.0, 1.0]).unwrap()
    }

    #[test]
    fn regions_are_disjoint_and_line_aligned() {
        let l = ArrayLayout::new(&sample(), Kernel::SpmvCsr, 32);
        let bases = [
            l.row_offsets,
            l.coords,
            l.values,
            l.coo_rows,
            l.x,
            l.y,
            l.b,
            l.c,
            l.bins,
        ];
        for w in bases.windows(2) {
            assert!(w[0] < w[1], "regions must ascend: {bases:?}");
            assert_eq!(w[1] % 32, 0, "regions must be line aligned");
        }
    }

    #[test]
    fn spmm_reserves_k_columns() {
        let small = ArrayLayout::new(&sample(), Kernel::SpmmCsr { k: 4 }, 32);
        let big = ArrayLayout::new(&sample(), Kernel::SpmmCsr { k: 256 }, 32);
        assert!(big.c - big.b > small.c - small.b);
    }

    #[test]
    fn elem_addressing_is_4_bytes() {
        assert_eq!(ArrayLayout::elem(64, 3), 64 + 12);
    }

    #[test]
    fn end_bounds_every_region() {
        let a = sample();
        let l = ArrayLayout::new(&a, Kernel::SpmvCsr, 32);
        let nnz = a.nnz() as u64;
        assert_eq!(l.end % 32, 0, "end must be line aligned");
        assert!(ArrayLayout::elem(l.bins, 2 * nnz - 1) + ELEM_BYTES <= l.end);
        assert!(l.bins + 2 * nnz * ELEM_BYTES <= l.end);
    }
}
