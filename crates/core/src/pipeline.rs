//! The evaluation pipeline: matrix → reordering → kernel trace → cache
//! simulation → traffic and run-time metrics.
//!
//! This is the measurement loop behind every figure and table of the
//! paper, with the real GPU and Nsight Compute replaced by the validated
//! cache simulator (§VI-B) and the analytic A6000 model.
//!
//! A [`Pipeline`] is built through [`Pipeline::builder`], which validates
//! the whole configuration (cache geometry, kernel parameters, execution
//! model) up front, so a misconfigured experiment fails with a
//! [`SparseError::InvalidConfig`] at construction instead of panicking
//! thousands of accesses into a simulation. Wall-clock timing of the
//! reordering pre-processing lives in the execution engine's job wrapper
//! (see `commorder::experiment`), not here, so measured times never
//! include scheduler queue wait.

use commorder_cachesim::belady::simulate_belady;
use commorder_cachesim::source::KernelTrace;
use commorder_cachesim::spgemm::SpGemmTrace;
use commorder_cachesim::trace::ExecutionModel;
use commorder_cachesim::{CacheStats, LruCache, TraceSource};
use commorder_gpumodel::GpuSpec;
use commorder_obs as obs;
use commorder_reorder::{Rabbit, ReorderContext, Reordering};
use commorder_sparse::traffic::Kernel;
use commorder_sparse::{CsrMatrix, Permutation, SparseError};

/// Cache replacement policy to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// True LRU ("closely models A6000's L2 cache").
    #[default]
    Lru,
    /// Belady's optimal policy (Fig. 8's idealized headroom analysis).
    Belady,
}

impl ReplacementPolicy {
    /// Lower-case stable name (report JSON, CLI parsing).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Belady => "belady",
        }
    }
}

/// Result of simulating one kernel execution on one (reordered) matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRun {
    /// Raw cache counters.
    pub stats: CacheStats,
    /// Simulated DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Compulsory traffic for this kernel/matrix (§IV-B).
    pub compulsory_bytes: u64,
    /// `dram_bytes / compulsory_bytes` — the y-axis of Figs. 2/6/7/8.
    pub traffic_ratio: f64,
    /// Estimated execution time in seconds.
    pub time_seconds: f64,
    /// Time normalized to ideal — the y-axis of Fig. 3, Tables II/IV.
    pub time_ratio: f64,
}

/// A [`KernelRun`] together with the reordering that produced it.
///
/// Pre-processing wall-clock time is *not* measured here: per-job
/// `reorder_seconds` is recorded by the experiment engine's job wrapper
/// (`commorder::experiment::RunRecord`), where it provably excludes
/// queue wait.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Display name of the technique.
    pub technique: String,
    /// The permutation the technique produced.
    pub permutation: Permutation,
    /// Simulation results on the reordered matrix.
    pub run: KernelRun,
}

/// Experiment configuration: platform, kernel, execution model and
/// replacement policy — validated at construction.
///
/// Build with [`Pipeline::builder`]; [`Pipeline::new`] is shorthand for
/// the all-defaults configuration (SpMV-CSR, sequential trace, LRU).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pipeline {
    gpu: GpuSpec,
    kernel: Kernel,
    model: ExecutionModel,
    policy: ReplacementPolicy,
}

/// One degenerate-kernel-parameter rule: the parameter extracted by
/// `value` must be positive when present.
struct ParamRule {
    /// `InvalidConfig::what` field name (e.g. `kernel.k`).
    field: &'static str,
    /// Human requirement, shared by every violation's error text.
    requirement: &'static str,
    /// Extracts the checked parameter (`None` when the kernel does not
    /// carry it).
    value: fn(Kernel) -> Option<u32>,
}

/// Every parameterized kernel's positivity requirement in one table —
/// the single validation path for all kernel variants. Parameterless
/// kernels (SpMV-CSR/COO and both SpGEMM variants) return `None` from
/// every extractor and pass through.
const KERNEL_PARAM_RULES: &[ParamRule] = &[
    ParamRule {
        field: "kernel.k",
        requirement: "SpMM needs at least one dense column",
        value: |kernel| match kernel {
            Kernel::SpmmCsr { k } => Some(k),
            _ => None,
        },
    },
    ParamRule {
        field: "kernel.tile_cols",
        requirement: "tile width must be positive",
        value: |kernel| match kernel {
            Kernel::SpmvCsrTiled { tile_cols } => Some(tile_cols),
            _ => None,
        },
    },
    ParamRule {
        field: "kernel.bins",
        requirement: "blocking needs at least one bin",
        value: |kernel| match kernel {
            Kernel::SpmvBlocked { bins } => Some(bins),
            _ => None,
        },
    },
];

/// Validating builder for [`Pipeline`]. Obtained from
/// [`Pipeline::builder`].
///
/// # Example
///
/// ```
/// use commorder::prelude::*;
///
/// let pipeline = Pipeline::builder(GpuSpec::test_scale())
///     .kernel(Kernel::SpmmCsr { k: 4 })
///     .policy(ReplacementPolicy::Belady)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(pipeline.kernel(), Kernel::SpmmCsr { k: 4 });
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "call .build() to obtain the validated Pipeline"]
pub struct PipelineBuilder {
    gpu: GpuSpec,
    kernel: Kernel,
    model: ExecutionModel,
    policy: ReplacementPolicy,
}

impl PipelineBuilder {
    /// Selects the kernel whose trace is simulated.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Selects the trace linearization model.
    pub fn model(mut self, model: ExecutionModel) -> Self {
        self.model = model;
        self
    }

    /// Selects the cache replacement policy.
    pub fn policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Validates the configuration and produces the [`Pipeline`].
    ///
    /// # Errors
    ///
    /// [`SparseError::InvalidConfig`] when the cache geometry is
    /// degenerate (zero capacity/line/associativity, capacity not a whole
    /// number of sets), a bandwidth constant is non-positive, or a
    /// parameterized kernel/model has a zero parameter.
    pub fn build(self) -> Result<Pipeline, SparseError> {
        let invalid = |what: &str, message: String| {
            Err(SparseError::InvalidConfig {
                what: what.to_string(),
                message,
            })
        };
        let l2 = self.gpu.l2;
        if l2.capacity_bytes == 0 {
            return invalid(
                "l2.capacity_bytes",
                "cache capacity must be positive".into(),
            );
        }
        if l2.line_bytes == 0 {
            return invalid("l2.line_bytes", "cache line size must be positive".into());
        }
        if l2.associativity == 0 {
            return invalid("l2.associativity", "associativity must be positive".into());
        }
        let set_bytes = u64::from(l2.line_bytes) * u64::from(l2.associativity);
        if !l2.capacity_bytes.is_multiple_of(set_bytes) {
            return invalid(
                "l2.capacity_bytes",
                format!(
                    "capacity {} is not a whole number of {}-byte sets",
                    l2.capacity_bytes, set_bytes
                ),
            );
        }
        if !self.gpu.measured_bandwidth.is_finite() || self.gpu.measured_bandwidth <= 0.0 {
            return invalid(
                "gpu.measured_bandwidth",
                "measured bandwidth must be positive".into(),
            );
        }
        if !self.gpu.peak_bandwidth.is_finite() || self.gpu.peak_bandwidth <= 0.0 {
            return invalid(
                "gpu.peak_bandwidth",
                "peak bandwidth must be positive".into(),
            );
        }
        for rule in KERNEL_PARAM_RULES {
            if (rule.value)(self.kernel) == Some(0) {
                return invalid(rule.field, format!("{} (got 0)", rule.requirement));
            }
        }
        if let ExecutionModel::Interleaved { streams: 0 } = self.model {
            return invalid(
                "model.streams",
                "interleaved execution needs at least one stream".into(),
            );
        }
        Ok(Pipeline {
            gpu: self.gpu,
            kernel: self.kernel,
            model: self.model,
            policy: self.policy,
        })
    }
}

impl Pipeline {
    /// Starts a builder with the given platform and the Fig. 2–7
    /// defaults: SpMV-CSR, sequential trace, LRU.
    pub fn builder(gpu: GpuSpec) -> PipelineBuilder {
        PipelineBuilder {
            gpu,
            kernel: Kernel::SpmvCsr,
            model: ExecutionModel::Sequential,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// SpMV-CSR, sequential trace, LRU — the default for Figs. 2–7.
    ///
    /// # Panics
    ///
    /// Panics when `gpu` fails builder validation (the built-in
    /// [`GpuSpec`] constructors never do); use [`Pipeline::builder`] for
    /// fallible construction of custom platforms.
    #[must_use]
    pub fn new(gpu: GpuSpec) -> Self {
        Pipeline::builder(gpu)
            .build()
            .expect("built-in GpuSpec configurations are valid")
    }

    /// Simulated platform (L2 geometry + bandwidth model).
    #[must_use]
    pub fn gpu(&self) -> GpuSpec {
        self.gpu
    }

    /// Kernel whose trace is simulated.
    #[must_use]
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Trace linearization model.
    #[must_use]
    pub fn model(&self) -> ExecutionModel {
        self.model
    }

    /// Replacement policy.
    #[must_use]
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Simulates the configured kernel on `matrix` as-is (no reordering).
    ///
    /// Both policies consume the kernel trace as a replayable stream
    /// ([`KernelTrace`] / [`SpGemmTrace`]); no full `Vec<Access>` is ever
    /// materialized. With telemetry enabled an extra counting replay is
    /// timed under `pipeline.trace_gen` so trace generation and cache
    /// simulation still profile as separate phases — the replay feeds
    /// the simulator the identical access sequence either way, so
    /// `CacheStats` (and therefore the deterministic JSON report) is
    /// unchanged by telemetry (the workspace golden test enforces this).
    ///
    /// The SpGEMM kernels simulate the corpus-default self-multiply
    /// `A·A`; [`Kernel::SpGemmClusterWise`] detects the RABBIT community
    /// assignment of `matrix` (a serial, thread-count-independent pass)
    /// and executes the rows of each community as a block. Use
    /// [`Pipeline::simulate_pair`] for an explicit `(A, B)` pair.
    #[must_use]
    pub fn simulate(&self, matrix: &CsrMatrix) -> KernelRun {
        if self.kernel.is_spgemm() {
            return self.simulate_self_multiply(matrix);
        }
        let source = KernelTrace::new(matrix, self.kernel, self.model);
        let stats = self.consume_source(&source);
        let _span = obs::span!("pipeline.model");
        self.run_from_stats(matrix, stats)
    }

    /// The SpGEMM arm of [`Pipeline::simulate`]: self-multiply with the
    /// community assignment resolved on the fly for cluster-wise
    /// execution.
    fn simulate_self_multiply(&self, matrix: &CsrMatrix) -> KernelRun {
        let _span = obs::span!("pipeline.spgemm");
        let assignment = if self.kernel == Kernel::SpGemmClusterWise && matrix.is_square() {
            Rabbit::new().run(matrix).ok().map(|r| r.assignment)
        } else {
            None
        };
        match SpGemmTrace::new(matrix, matrix, self.kernel, assignment.as_deref()) {
            Ok(source) => {
                obs::gauge!("pipeline.spgemm_acc_peak", source.accumulator_peak() as f64);
                let stats = self.consume_source(&source);
                let _span = obs::span!("pipeline.model");
                self.run_from_stats(matrix, stats)
            }
            Err(_) => {
                // A non-square matrix cannot self-multiply: the trace is
                // empty (matching `for_each_access`) and the metrics
                // fall back to the shape-only compulsory bound.
                // Explicit pairs go through `simulate_pair`, which
                // surfaces the error instead.
                self.run_from_stats(matrix, LruCache::new(self.gpu.l2).finish())
            }
        }
    }

    /// Simulates the configured SpGEMM kernel on an explicit operand
    /// pair `C = A·B`. For [`Kernel::SpGemmClusterWise`] with a square
    /// `A`, the row clustering is the RABBIT community assignment of
    /// `A`; rectangular left operands execute in natural row order.
    ///
    /// # Errors
    ///
    /// [`SparseError::DimensionMismatch`] when the configured kernel is
    /// not an SpGEMM kernel or `a.n_cols() != b.n_rows()`; propagates
    /// community-detection errors.
    pub fn simulate_pair(&self, a: &CsrMatrix, b: &CsrMatrix) -> Result<KernelRun, SparseError> {
        let assignment = if self.kernel == Kernel::SpGemmClusterWise && a.is_square() {
            Some(Rabbit::new().run(a)?.assignment)
        } else {
            None
        };
        self.simulate_pair_clustered(a, b, assignment.as_deref())
    }

    /// [`Pipeline::simulate_pair`] with a caller-provided row clustering
    /// (e.g. a community assignment already computed by a reordering
    /// pass), bypassing the built-in RABBIT detection.
    ///
    /// # Errors
    ///
    /// As [`Pipeline::simulate_pair`], plus
    /// [`SparseError::DimensionMismatch`] when the assignment length is
    /// not `a.n_rows()`.
    pub fn simulate_pair_clustered(
        &self,
        a: &CsrMatrix,
        b: &CsrMatrix,
        assignment: Option<&[u32]>,
    ) -> Result<KernelRun, SparseError> {
        let _span = obs::span!("pipeline.spgemm");
        let source = SpGemmTrace::new(a, b, self.kernel, assignment)?;
        obs::gauge!("pipeline.spgemm_acc_peak", source.accumulator_peak() as f64);
        let compulsory_bytes = self.kernel.compulsory_bytes_pair(a, b)?;
        let stats = self.consume_source(&source);
        let _span = obs::span!("pipeline.model");
        Ok(self.run_from_compulsory(compulsory_bytes, stats))
    }

    /// Streams `source` through the configured replacement policy (with
    /// the telemetry phases of [`Pipeline::simulate`]) and returns the
    /// cache counters.
    fn consume_source<S: TraceSource>(&self, source: &S) -> CacheStats {
        if obs::enabled() {
            let _span = obs::span!("pipeline.trace_gen");
            let mut generated = 0u64;
            source.replay(&mut |_| generated += 1);
            std::hint::black_box(generated);
        }
        let stats = {
            let _span = obs::span!("pipeline.simulate");
            match self.policy {
                ReplacementPolicy::Lru => {
                    let mut cache = LruCache::new(self.gpu.l2);
                    cache.consume(source);
                    cache.finish()
                }
                ReplacementPolicy::Belady => simulate_belady(self.gpu.l2, source),
            }
        };
        commorder_cachesim::telemetry::record_cache_stats(&stats);
        stats
    }

    /// Wraps raw cache counters into traffic/time metrics for `matrix`
    /// (for SpGEMM kernels, the exact self-multiply compulsory figure).
    #[must_use]
    pub fn run_from_stats(&self, matrix: &CsrMatrix, stats: CacheStats) -> KernelRun {
        let compulsory_bytes = self.kernel.compulsory_bytes_for(matrix);
        commorder_sparse::debug_validate!(
            matrix.n_rows() == 0 || compulsory_bytes > 0,
            "compulsory traffic must be positive for a non-empty matrix (n = {}, nnz = {})",
            matrix.n_rows(),
            matrix.nnz()
        );
        self.run_from_compulsory(compulsory_bytes, stats)
    }

    /// Traffic/time metrics from a precomputed compulsory-traffic figure
    /// (the workload-agnostic core shared by the one- and two-operand
    /// paths).
    fn run_from_compulsory(&self, compulsory_bytes: u64, stats: CacheStats) -> KernelRun {
        let dram_bytes = stats.dram_traffic_bytes();
        KernelRun {
            stats,
            dram_bytes,
            compulsory_bytes,
            traffic_ratio: dram_bytes as f64 / compulsory_bytes as f64,
            time_seconds: self
                .gpu
                .estimate_time_from_compulsory(compulsory_bytes, dram_bytes),
            time_ratio: self
                .gpu
                .normalized_time_from_compulsory(compulsory_bytes, dram_bytes),
        }
    }

    /// Reorders `matrix` with `technique`, then simulates the kernel on
    /// the reordered matrix.
    ///
    /// # Errors
    ///
    /// Propagates reordering/permutation errors (non-square input).
    pub fn evaluate(
        &self,
        matrix: &CsrMatrix,
        technique: &dyn Reordering,
    ) -> Result<Evaluation, SparseError> {
        self.evaluate_with(matrix, technique, &ReorderContext::serial(0xC0DE))
    }

    /// [`Pipeline::evaluate`] with an execution context: techniques with
    /// parallel phases fan out on `cx.engine()`. The evaluation is
    /// byte-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Propagates reordering/permutation errors (non-square input).
    pub fn evaluate_with(
        &self,
        matrix: &CsrMatrix,
        technique: &dyn Reordering,
        cx: &ReorderContext<'_>,
    ) -> Result<Evaluation, SparseError> {
        let permutation = technique.reorder_with(matrix, cx)?;
        commorder_sparse::debug_validate!(
            permutation.len() == matrix.n_rows() as usize,
            "{}: permutation length {} does not match n = {}",
            technique.name(),
            permutation.len(),
            matrix.n_rows()
        );
        let reordered = matrix.permute_symmetric(&permutation)?;
        commorder_sparse::debug_validate!(
            reordered.nnz() == matrix.nnz(),
            "{}: relabelling changed the entry count ({} -> {})",
            technique.name(),
            matrix.nnz(),
            reordered.nnz()
        );
        let run = self.simulate(&reordered);
        Ok(Evaluation {
            technique: technique.name().to_string(),
            permutation,
            run,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_cachesim::CacheConfig;
    use commorder_reorder::{Original, Rabbit, RandomOrder};
    use commorder_synth::generators::PlantedPartition;

    fn strong_community_matrix() -> CsrMatrix {
        // Generated community-sorted, then scrambled: ORIGINAL is bad,
        // RABBIT should recover it.
        let g = PlantedPartition::uniform(2048, 32, 10.0, 0.03)
            .generate(51)
            .unwrap();
        let p = RandomOrder::new(9).reorder(&g).unwrap();
        g.permute_symmetric(&p).unwrap()
    }

    #[test]
    fn traffic_ratio_is_at_least_one_for_lru() {
        let m = strong_community_matrix();
        let run = Pipeline::new(GpuSpec::test_scale()).simulate(&m);
        assert!(run.traffic_ratio >= 0.99, "ratio = {}", run.traffic_ratio);
        assert!(run.time_ratio >= run.traffic_ratio * 0.99);
    }

    #[test]
    fn rabbit_beats_scrambled_original() {
        let m = strong_community_matrix();
        let pipeline = Pipeline::new(GpuSpec::test_scale());
        let original = pipeline.evaluate(&m, &Original).unwrap();
        let rabbit = pipeline.evaluate(&m, &Rabbit::new()).unwrap();
        assert!(
            rabbit.run.traffic_ratio < original.run.traffic_ratio,
            "rabbit {} vs original {}",
            rabbit.run.traffic_ratio,
            original.run.traffic_ratio
        );
        assert_eq!(rabbit.technique, "RABBIT");
    }

    #[test]
    fn belady_never_exceeds_lru_traffic() {
        let m = strong_community_matrix();
        let lru = Pipeline::new(GpuSpec::test_scale()).simulate(&m);
        let opt = Pipeline::builder(GpuSpec::test_scale())
            .policy(ReplacementPolicy::Belady)
            .build()
            .unwrap()
            .simulate(&m);
        assert!(opt.dram_bytes <= lru.dram_bytes);
    }

    #[test]
    fn kernel_builder_changes_compulsory() {
        let m = strong_community_matrix();
        let csr = Pipeline::new(GpuSpec::test_scale()).simulate(&m);
        let coo = Pipeline::builder(GpuSpec::test_scale())
            .kernel(Kernel::SpmvCoo)
            .build()
            .unwrap()
            .simulate(&m);
        assert!(coo.compulsory_bytes > csr.compulsory_bytes);
    }

    #[test]
    fn interleaved_model_runs() {
        let m = strong_community_matrix();
        let run = Pipeline::builder(GpuSpec::test_scale())
            .model(ExecutionModel::Interleaved { streams: 8 })
            .build()
            .unwrap()
            .simulate(&m);
        assert!(run.traffic_ratio >= 0.99);
    }

    #[test]
    fn builder_rejects_zero_capacity_cache() {
        let gpu = GpuSpec {
            l2: CacheConfig {
                capacity_bytes: 0,
                line_bytes: 32,
                associativity: 16,
            },
            ..GpuSpec::test_scale()
        };
        let err = Pipeline::builder(gpu).build().unwrap_err();
        assert!(
            matches!(err, SparseError::InvalidConfig { ref what, .. } if what == "l2.capacity_bytes")
        );
    }

    #[test]
    fn builder_rejects_ragged_capacity_and_zero_params() {
        let ragged = GpuSpec {
            l2: CacheConfig {
                capacity_bytes: 1000,
                line_bytes: 32,
                associativity: 16,
            },
            ..GpuSpec::test_scale()
        };
        assert!(Pipeline::builder(ragged).build().is_err());
        assert!(Pipeline::builder(GpuSpec::test_scale())
            .kernel(Kernel::SpmmCsr { k: 0 })
            .build()
            .is_err());
        assert!(Pipeline::builder(GpuSpec::test_scale())
            .kernel(Kernel::SpmvCsrTiled { tile_cols: 0 })
            .build()
            .is_err());
        assert!(Pipeline::builder(GpuSpec::test_scale())
            .model(ExecutionModel::Interleaved { streams: 0 })
            .build()
            .is_err());
    }

    #[test]
    fn builder_accepts_all_builtin_specs() {
        for gpu in [
            GpuSpec::a6000(),
            GpuSpec::a6000_scaled(),
            GpuSpec::test_scale(),
        ] {
            let p = Pipeline::builder(gpu).build().unwrap();
            assert_eq!(p.kernel(), Kernel::SpmvCsr);
            assert_eq!(p.policy(), ReplacementPolicy::Lru);
            assert_eq!(p.model(), ExecutionModel::Sequential);
            assert_eq!(p.gpu().l2, gpu.l2);
        }
    }

    #[test]
    fn policy_names() {
        assert_eq!(ReplacementPolicy::Lru.name(), "lru");
        assert_eq!(ReplacementPolicy::Belady.name(), "belady");
    }

    fn spgemm_pipeline(kernel: Kernel) -> Pipeline {
        Pipeline::builder(GpuSpec::test_scale())
            .kernel(kernel)
            .build()
            .unwrap()
    }

    #[test]
    fn spgemm_simulation_runs_and_is_deterministic() {
        let m = strong_community_matrix();
        let p = spgemm_pipeline(Kernel::SpGemmGustavson);
        let run = p.simulate(&m);
        assert_eq!(
            run.compulsory_bytes,
            Kernel::SpGemmGustavson.compulsory_bytes_for(&m)
        );
        assert!(run.dram_bytes > 0);
        assert!(run.time_ratio > 0.0);
        assert_eq!(p.simulate(&m), run, "repeat simulation must be identical");
    }

    #[test]
    fn cluster_wise_spgemm_shares_the_access_multiset() {
        // Cluster-wise execution permutes whole row blocks; the work
        // (and hence the trace length and compulsory traffic) is
        // unchanged — only the reuse structure moves.
        let m = strong_community_matrix();
        let gus = spgemm_pipeline(Kernel::SpGemmGustavson).simulate(&m);
        let cw = spgemm_pipeline(Kernel::SpGemmClusterWise).simulate(&m);
        assert_eq!(gus.compulsory_bytes, cw.compulsory_bytes);
        assert_eq!(gus.stats.accesses, cw.stats.accesses);
        assert_eq!(gus.stats.compulsory_misses, cw.stats.compulsory_misses);
    }

    #[test]
    fn spgemm_evaluates_through_reordering_techniques() {
        let m = strong_community_matrix();
        let p = spgemm_pipeline(Kernel::SpGemmClusterWise);
        let eval = p.evaluate(&m, &Rabbit::new()).unwrap();
        assert_eq!(eval.technique, "RABBIT");
        assert!(eval.run.dram_bytes > 0);
    }

    #[test]
    fn simulate_pair_rejects_bad_configurations() {
        let m = strong_community_matrix();
        let rect = CsrMatrix::new(1, 2, vec![0, 1], vec![1], vec![1.0]).unwrap();
        let p = spgemm_pipeline(Kernel::SpGemmGustavson);
        assert!(p.simulate_pair(&m, &rect).is_err(), "shape mismatch");
        assert!(
            Pipeline::new(GpuSpec::test_scale())
                .simulate_pair(&m, &m)
                .is_err(),
            "pair simulation requires an SpGEMM kernel"
        );
        let pair = p.simulate_pair(&m, &m).unwrap();
        assert_eq!(pair, p.simulate(&m), "explicit self-pair matches simulate");
    }

    #[test]
    fn spgemm_kernels_pass_the_param_table() {
        for kernel in [Kernel::SpGemmGustavson, Kernel::SpGemmClusterWise] {
            let p = Pipeline::builder(GpuSpec::test_scale())
                .kernel(kernel)
                .build()
                .unwrap();
            assert_eq!(p.kernel(), kernel);
        }
    }

    #[test]
    fn param_table_errors_name_the_field() {
        let err = Pipeline::builder(GpuSpec::test_scale())
            .kernel(Kernel::SpmvBlocked { bins: 0 })
            .build()
            .unwrap_err();
        assert!(
            matches!(err, SparseError::InvalidConfig { ref what, .. } if what == "kernel.bins")
        );
    }
}
