//! Cache-behaviour explorer: sweep the L2 capacity and watch reordering
//! payoff appear exactly when the input-vector footprint outgrows the
//! cache (§II of the paper), then compare LRU against Belady headroom
//! (Fig. 8) at one point.
//!
//! ```sh
//! cargo run --release --example cache_explorer
//! ```

use commorder::cachesim::CacheConfig;
use commorder::prelude::*;
use commorder::synth::generators::PlantedPartition;

fn main() -> Result<(), commorder::sparse::SparseError> {
    let matrix = PlantedPartition::uniform(8192, 64, 12.0, 0.05).generate(21)?;
    let scramble = RandomOrder::new(2).reorder(&matrix)?;
    let messy = matrix.permute_symmetric(&scramble)?;
    let rabbit = messy.permute_symmetric(&Rabbit::new().reorder(&messy)?)?;
    println!(
        "matrix: {} rows => X footprint {} KiB",
        messy.n_rows(),
        messy.n_rows() * 4 / 1024
    );

    let mut table = Table::new(
        "SpMV traffic/compulsory vs L2 capacity (scrambled vs RABBIT order)",
        vec![
            "L2 capacity".into(),
            "scrambled".into(),
            "RABBIT".into(),
            "RABBIT advantage".into(),
        ],
    );
    for kib in [2u64, 4, 8, 16, 32, 64, 128] {
        let gpu = GpuSpec {
            l2: CacheConfig {
                capacity_bytes: kib * 1024,
                line_bytes: 32,
                associativity: 16,
            },
            ..GpuSpec::a6000()
        };
        let pipeline = Pipeline::new(gpu);
        let bad = pipeline.simulate(&messy).traffic_ratio;
        let good = pipeline.simulate(&rabbit).traffic_ratio;
        table.add_row(vec![
            format!("{kib} KiB"),
            Table::ratio(bad),
            Table::ratio(good),
            Table::ratio(bad / good),
        ]);
    }
    println!("{table}");
    println!(
        "X fits entirely once capacity >= {} KiB — both orders reach compulsory there;\n\
         reordering matters exactly while the footprint exceeds the cache.\n",
        messy.n_rows() * 4 / 1024
    );

    // One Fig.-8-style headroom probe at the interesting point.
    let gpu = GpuSpec::test_scale();
    let lru = Pipeline::new(gpu).simulate(&rabbit);
    let opt = Pipeline::builder(gpu)
        .policy(ReplacementPolicy::Belady)
        .build()?
        .simulate(&rabbit);
    println!(
        "RABBIT order @ 8 KiB L2: LRU {} vs Belady {} => replacement headroom {}",
        Table::ratio(lru.traffic_ratio),
        Table::ratio(opt.traffic_ratio),
        Table::percent(lru.traffic_ratio / opt.traffic_ratio - 1.0),
    );
    Ok(())
}
