//! **Extension**: the full technique zoo — every reordering implemented
//! in this workspace (the paper's six plus the §VII-referenced baselines
//! RCM, SlashBurn, label propagation, recursive bisection and the
//! RABBIT-FLAT hierarchy ablation) on the corpus, with the simulator-free
//! locality scorecard alongside simulated traffic.

use commorder::prelude::*;
use commorder::reorder::locality::LocalityScore;
use commorder::reorder::{Bisection, FlatCommunity, LabelPropagation, SlashBurn};
use commorder_bench::Harness;

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let cases = harness.load();
    let pipeline = Pipeline::new(harness.gpu);

    let techniques: Vec<Box<dyn Reordering>> = vec![
        Box::new(RandomOrder::new(harness.random_seed)),
        Box::new(Original),
        Box::new(DegSort),
        Box::new(Dbg::default()),
        Box::new(HubSort),
        Box::new(HubGroup),
        Box::new(Rcm),
        Box::new(SlashBurn::default()),
        Box::new(Bisection::default()),
        Box::new(LabelPropagation::default()),
        Box::new(Gorder::default()),
        Box::new(FlatCommunity::new(harness.random_seed)),
        Box::new(Rabbit::new()),
        Box::new(RabbitPlusPlus::new()),
    ];

    let mut table = Table::new(
        "Extended suite: mean SpMV traffic + locality scorecard across the corpus",
        vec![
            "technique".into(),
            "traffic/compulsory".into(),
            "time/ideal".into(),
            "line util".into(),
            "windowed reuse".into(),
            "reorder time (mean)".into(),
        ],
    );
    for technique in &techniques {
        eprintln!("[extended] {}", technique.name());
        let mut traffic = Vec::new();
        let mut time = Vec::new();
        let mut util = Vec::new();
        let mut reuse = Vec::new();
        let mut seconds = Vec::new();
        for case in &cases {
            let eval = pipeline
                .evaluate(&case.matrix, technique.as_ref())
                .expect("square corpus matrix");
            let reordered = case
                .matrix
                .permute_symmetric(&eval.permutation)
                .expect("validated");
            let score = LocalityScore::measure(&reordered, 64);
            traffic.push(eval.run.traffic_ratio);
            time.push(eval.run.time_ratio);
            util.push(score.line_utilization);
            reuse.push(score.windowed_reuse);
            seconds.push(eval.reorder_seconds);
        }
        table.add_row(vec![
            technique.name().to_string(),
            Table::ratio(arith_mean_ratio(&traffic).unwrap_or(f64::NAN)),
            Table::ratio(arith_mean_ratio(&time).unwrap_or(f64::NAN)),
            Table::percent(arith_mean_ratio(&util).unwrap_or(f64::NAN)),
            Table::percent(arith_mean_ratio(&reuse).unwrap_or(f64::NAN)),
            Table::seconds(arith_mean_ratio(&seconds).unwrap_or(f64::NAN)),
        ]);
    }
    if let Ok(Some(path)) = table.save_csv_if_configured() {
        eprintln!("[extended] csv -> {}", path.display());
    }
    println!("{table}");
    println!(
        "Extension figure (not in the paper): community-based techniques\n\
         (RABBIT/RABBIT++/LABELPROP/BISECTION) should cluster at the low-traffic\n\
         end; the simulator-free locality columns should rank them the same way\n\
         the simulator does — a consistency check between the two methodologies."
    );
}
