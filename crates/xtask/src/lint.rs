//! The offline source-lint pass.
//!
//! Rules (stable `XT` codes, mirroring the runtime checker's `CHK` codes):
//!
//! | Code   | Severity | Rule |
//! |--------|----------|------|
//! | XT0001 | error    | `unsafe` token in source (defence in depth on top of `forbid(unsafe_code)`) |
//! | XT0002 | error    | `.unwrap()` in non-test library code |
//! | XT0003 | warning  | `.expect(` in non-test library code (allowed when the proof is in the message) |
//! | XT0004 | warning  | `panic!` in non-test library code |
//! | XT0005 | error    | `todo!` / `unimplemented!` anywhere |
//! | XT0006 | error    | `println!` / `eprintln!` in quiet library crates (route output through `commorder-obs` or return it) |
//! | XT0007 | error    | `collect_trace(` / `Vec<Access>` outside tests and the documented shims (stream through `TraceSource` instead) |
//! | XT0101 | error    | library `lib.rs` missing `#![forbid(unsafe_code)]` |
//! | XT0102 | error    | library `lib.rs` missing `#![warn(missing_docs)]` |
//! | XT0201 | error    | crate manifest missing the `[lints] workspace = true` opt-in |
//! | XT0202 | error    | workspace manifest missing the `[workspace.lints]` deny-list |
//! | XT0301 | warning  | `pub` item without a doc comment (naive scan; rustc's `missing_docs` is authoritative) |
//!
//! Test code (`#[cfg(test)]` items) and comments are exempt from the
//! call-site rules. The pass exits non-zero when any error-severity
//! finding is present.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One lint finding.
struct Finding {
    code: &'static str,
    error: bool,
    file: PathBuf,
    line: usize,
    message: String,
}

/// Runs the pass rooted at `root`; returns the process exit code.
pub fn run(root: &Path, json: bool) -> ExitCode {
    let mut findings = Vec::new();

    check_workspace_manifest(root, &mut findings);

    let mut crate_dirs: Vec<PathBuf> = match fs::read_dir(root.join("crates")) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect(),
        Err(e) => {
            eprintln!("xtask lint: cannot read crates/: {e}");
            return ExitCode::FAILURE;
        }
    };
    crate_dirs.sort();
    // The root umbrella package follows the same rules as the crates.
    crate_dirs.push(root.to_path_buf());

    for dir in &crate_dirs {
        check_crate_manifest(&dir.join("Cargo.toml"), root, &mut findings);
        let lib = dir.join("src/lib.rs");
        if lib.is_file() {
            check_lib_header(&lib, root, &mut findings);
        }
        for file in rust_sources(&dir.join("src")) {
            check_source(&file, root, &mut findings);
        }
    }

    report(&findings, json)
}

fn report(findings: &[Finding], json: bool) -> ExitCode {
    let errors = findings.iter().filter(|f| f.error).count();
    let warnings = findings.len() - errors;
    if json {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"errors\":{errors},\"warnings\":{warnings},\"findings\":["
        );
        for (i, f) in findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                f.code,
                if f.error { "error" } else { "warning" },
                f.file.display().to_string().replace('\\', "/").replace('"', "\\\""),
                f.line,
                f.message.replace('\\', "\\\\").replace('"', "\\\"")
            );
        }
        out.push_str("]}");
        println!("{out}");
    } else {
        for f in findings {
            println!(
                "{}[{}] {}:{}: {}",
                if f.error { "error" } else { "warning" },
                f.code,
                f.file.display(),
                f.line,
                f.message
            );
        }
        println!("xtask lint: {errors} error(s), {warnings} warning(s)");
    }
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// All `.rs` files under `dir`, recursively, in sorted order.
fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.filter_map(Result::ok) {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

fn rel(path: &Path, root: &Path) -> PathBuf {
    path.strip_prefix(root).unwrap_or(path).to_path_buf()
}

fn check_workspace_manifest(root: &Path, findings: &mut Vec<Finding>) {
    let manifest = root.join("Cargo.toml");
    let text = fs::read_to_string(&manifest).unwrap_or_default();
    if !text.contains("[workspace.lints") {
        findings.push(Finding {
            code: "XT0202",
            error: true,
            file: rel(&manifest, root),
            line: 1,
            message: "workspace manifest must declare the [workspace.lints] deny-list".to_string(),
        });
    }
}

fn check_crate_manifest(manifest: &Path, root: &Path, findings: &mut Vec<Finding>) {
    let text = fs::read_to_string(manifest).unwrap_or_default();
    let has_opt_in = text
        .split("[lints]")
        .nth(1)
        .is_some_and(|after| after.trim_start().starts_with("workspace = true"));
    if !has_opt_in {
        findings.push(Finding {
            code: "XT0201",
            error: true,
            file: rel(manifest, root),
            line: 1,
            message: "crate must opt into the workspace lint table ([lints] workspace = true)"
                .to_string(),
        });
    }
}

fn check_lib_header(lib: &Path, root: &Path, findings: &mut Vec<Finding>) {
    let text = fs::read_to_string(lib).unwrap_or_default();
    if !text.contains("#![forbid(unsafe_code)]") {
        findings.push(Finding {
            code: "XT0101",
            error: true,
            file: rel(lib, root),
            line: 1,
            message: "library crate must declare #![forbid(unsafe_code)]".to_string(),
        });
    }
    if !text.contains("#![warn(missing_docs)]") && !text.contains("#![deny(missing_docs)]") {
        findings.push(Finding {
            code: "XT0102",
            error: true,
            file: rel(lib, root),
            line: 1,
            message: "library crate must enable the missing_docs lint".to_string(),
        });
    }
}

/// `true` when `needle` occurs in `line` as a whole word (not embedded in
/// a longer identifier).
fn has_word(line: &str, needle: &str) -> bool {
    let bytes = line.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let clear_before = start == 0 || !is_ident(bytes[start - 1]);
        let clear_after = end >= bytes.len() || !is_ident(bytes[end]);
        if clear_before && clear_after {
            return true;
        }
        from = end;
    }
    false
}

/// Library crates whose code must stay silent on stdout/stderr: their
/// results flow through return values, and diagnostics through the
/// `commorder-obs` sinks, so they compose into pipelines and tests
/// without interleaved console noise.
const QUIET_CRATES: [&str; 7] = [
    "cachesim", "exec", "gpumodel", "obs", "reorder", "sparse", "synth",
];

/// Files allowed to name `collect_trace` or hold a materialized access
/// vector: the `TraceSource` trait that provides the test-convenience
/// collector, the kernel-trace shim that documents it, and the
/// check-side ingestion/property helpers whose buffers are bounded by
/// caller input (a fixture file, a generated property case), never by a
/// simulated kernel.
const TRACE_BUFFER_ALLOWLIST: [&str; 4] = [
    "crates/cachesim/src/source.rs",
    "crates/cachesim/src/trace.rs",
    "crates/check/src/ingest.rs",
    "crates/check/src/propcheck.rs",
];

/// `true` when `relpath` is `crates/<quiet>/src/...`.
fn in_quiet_crate(relpath: &Path) -> bool {
    let mut comps = relpath.components().map(|c| c.as_os_str());
    comps.next().is_some_and(|c| c == "crates")
        && comps
            .next()
            .is_some_and(|c| QUIET_CRATES.iter().any(|q| c == *q))
        && comps.next().is_some_and(|c| c == "src")
}

fn check_source(file: &Path, root: &Path, findings: &mut Vec<Finding>) {
    let Ok(text) = fs::read_to_string(file) else {
        return;
    };
    let relpath = rel(file, root);
    // Binary targets are entry points: aborting on a broken environment
    // via expect()/panic! is their job, so only the hard rules apply.
    let is_bin = relpath.components().any(|c| c.as_os_str() == "bin")
        || relpath.file_name().is_some_and(|f| f == "main.rs");
    let is_quiet = !is_bin && in_quiet_crate(&relpath);
    let may_buffer_trace = TRACE_BUFFER_ALLOWLIST
        .iter()
        .any(|p| relpath == Path::new(p));
    // Depth tracking skips `#[cfg(test)]` items (the module or fn the
    // attribute applies to), brace-counted from the following `{`.
    let mut skip_depth: Option<i64> = None;
    let mut pending_cfg_test = false;
    let mut doc_ready = false;

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();

        if let Some(depth) = &mut skip_depth {
            *depth += braces(line);
            if *depth <= 0 && line.contains('}') {
                skip_depth = None;
            }
            continue;
        }
        if pending_cfg_test {
            if line.contains('{') {
                let d = braces(line);
                if d > 0 {
                    skip_depth = Some(d);
                } // `{ ... }` on one line: nothing left to skip.
                pending_cfg_test = false;
            } else if line.ends_with(';') {
                // Attribute applied to a braceless item (e.g. a `use`).
                pending_cfg_test = false;
            }
            continue;
        }
        if line.starts_with("//") {
            doc_ready = doc_ready || line.starts_with("///") || line.starts_with("//!");
            continue;
        }
        if line.contains("#[cfg(test)]") || line.contains("#[cfg(all(test") {
            pending_cfg_test = true;
            continue;
        }

        // Call-site rules match against the line with string and char
        // literal contents removed, so a rule never fires on its own
        // description (this file lints clean against itself).
        let line = &strip_literals(line);
        if has_word(line, "unsafe") {
            findings.push(finding(
                "XT0001",
                true,
                &relpath,
                line_no,
                "unsafe code is forbidden across the workspace",
            ));
        }
        if line.contains(".unwrap()") {
            findings.push(finding(
                "XT0002",
                true,
                &relpath,
                line_no,
                "library code must not unwrap(); return a SparseError or use expect with a proof",
            ));
        }
        if !is_bin && line.contains(".expect(") {
            findings.push(finding(
                "XT0003",
                false,
                &relpath,
                line_no,
                "expect() in library code: the message must state why it cannot fail",
            ));
        }
        if !is_bin && line.contains("panic!") {
            findings.push(finding(
                "XT0004",
                false,
                &relpath,
                line_no,
                "panic! in library code: prefer a structured error",
            ));
        }
        if line.contains("todo!(") || line.contains("unimplemented!(") {
            findings.push(finding(
                "XT0005",
                true,
                &relpath,
                line_no,
                "todo!/unimplemented! must not ship",
            ));
        }
        if is_quiet && (has_word(line, "println") || has_word(line, "eprintln")) {
            findings.push(finding(
                "XT0006",
                true,
                &relpath,
                line_no,
                "quiet library crates must not print; emit through commorder-obs or return the text",
            ));
        }
        if !may_buffer_trace && (line.contains("collect_trace(") || line.contains("Vec<Access>")) {
            findings.push(finding(
                "XT0007",
                true,
                &relpath,
                line_no,
                "non-test code must stream traces through TraceSource, never materialize them",
            ));
        }
        if is_pub_item(line) && !doc_ready {
            findings.push(finding(
                "XT0301",
                false,
                &relpath,
                line_no,
                "public item without a doc comment",
            ));
        }
        // Attributes between doc comment and item keep the doc "ready".
        if !line.starts_with("#[") && !line.starts_with("#![") {
            doc_ready = false;
        }
    }
}

fn finding(code: &'static str, error: bool, file: &Path, line: usize, message: &str) -> Finding {
    Finding {
        code,
        error,
        file: file.to_path_buf(),
        line,
        message: message.to_string(),
    }
}

/// Net brace depth change of a line (approximate: ignores braces inside
/// string literals, which this codebase's formatting keeps off item
/// boundaries).
fn braces(line: &str) -> i64 {
    let mut d = 0i64;
    for c in line.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Removes the contents of string and char literals (best effort, single
/// line) so call-site rules never match text inside messages.
fn strip_literals(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                out.push('"');
                let mut escaped = false;
                for c in chars.by_ref() {
                    if escaped {
                        escaped = false;
                    } else if c == '\\' {
                        escaped = true;
                    } else if c == '"' {
                        out.push('"');
                        break;
                    }
                }
            }
            '\'' => {
                // Char literal (`'x'`, `'\\''`) vs lifetime (`'a`): a
                // closing quote within a few chars marks a literal.
                let rest: String = chars.clone().take(3).collect();
                if let Some(close) = rest.find('\'') {
                    for _ in 0..=close {
                        chars.next();
                    }
                    out.push_str("''");
                } else {
                    out.push('\'');
                }
            }
            c => out.push(c),
        }
    }
    out
}

/// `true` for lines that introduce a documented-by-policy public item.
/// `pub mod name;` declarations are exempt — the module file's `//!` inner
/// docs satisfy `missing_docs`, which this scan cannot see.
fn is_pub_item(line: &str) -> bool {
    const ITEMS: [&str; 9] = [
        "pub fn ",
        "pub async fn ",
        "pub struct ",
        "pub enum ",
        "pub trait ",
        "pub const ",
        "pub static ",
        "pub type ",
        "pub macro ",
    ];
    ITEMS.iter().any(|kw| line.starts_with(kw))
}
