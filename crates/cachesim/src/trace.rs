//! Address-trace generation for the evaluated kernels.
//!
//! Each generator replays the array-level access pattern of its kernel on
//! the [`ArrayLayout`] address space:
//!
//! * **SpMV-CSR** (Algorithm 1): per row — `rowOffsets[r]`,
//!   `rowOffsets[r+1]`, then per non-zero `coords[i]`, `values[i]`,
//!   `X[coords[i]]`, finally a store to `Y[r]`.
//! * **SpMV-COO**: per (row-major sorted) triple — `cooRows[i]`,
//!   `coords[i]`, `values[i]`, `X[col]`, accumulate into `Y[row]`.
//! * **SpMM-CSR-k**: per row — offsets, then per non-zero `coords[i]`,
//!   `values[i]` and the `k`-wide dense row `B[col·k ..]` (one access per
//!   touched cache line); finally the `k`-wide store of `C[row·k ..]`.
//!
//! [`ExecutionModel::Sequential`] replays rows in order — the cuSPARSE
//! CSR kernels assign row blocks to CTAs in row order, so this models the
//! reuse-distance structure the L2 sees. [`ExecutionModel::Interleaved`]
//! round-robins a window of concurrent row streams to check conclusions
//! against GPU-style warp interleaving.

use std::fmt;

use commorder_sparse::{traffic::Kernel, CsrMatrix, ELEM_BYTES};

use crate::layout::ArrayLayout;

/// Tag bit marking a store; the remaining 63 bits hold the byte address.
const WRITE_BIT: u64 = 1 << 63;

/// One memory access of a kernel trace, packed into 8 bytes.
///
/// Bit 63 is the read/write tag, bits 0..63 the byte address — traces at
/// paper scale are billions of accesses, so the streaming consumers and
/// the Belady next-use array depend on this staying one word. Addresses
/// with bit 63 set are rejected (`debug_validate!` under
/// `strict-checks`); all workspace layouts start at 0, so real operand
/// spaces never come near the tag bit.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access(u64);

impl Access {
    /// Packs an access; `write` marks a store.
    #[must_use]
    pub fn new(addr: u64, write: bool) -> Self {
        commorder_sparse::debug_validate!(
            addr & WRITE_BIT == 0,
            "address {addr:#x} collides with the packed write-tag bit"
        );
        Access(addr | if write { WRITE_BIT } else { 0 })
    }

    /// A load of the element at byte address `addr`.
    #[must_use]
    pub fn read(addr: u64) -> Self {
        Access::new(addr, false)
    }

    /// A store to the element at byte address `addr`.
    #[must_use]
    pub fn write(addr: u64) -> Self {
        Access::new(addr, true)
    }

    /// Byte address.
    #[must_use]
    pub fn addr(self) -> u64 {
        self.0 & !WRITE_BIT
    }

    /// `true` for a store.
    #[must_use]
    pub fn is_write(self) -> bool {
        self.0 & WRITE_BIT != 0
    }
}

impl fmt::Debug for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Access")
            .field("addr", &self.addr())
            .field("write", &self.is_write())
            .finish()
    }
}

/// How concurrent GPU execution is modelled when linearizing the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionModel {
    /// Rows processed one after another (default for all experiments).
    Sequential,
    /// A window of `streams` row-processors served round-robin, one
    /// non-zero per turn — a proxy for concurrent warps.
    Interleaved {
        /// Number of concurrently active row streams.
        streams: u32,
    },
}

/// Emits every access of `kernel` on matrix `a` to `sink`.
///
/// The matrix is interpreted per the kernel's storage format (COO traces
/// use row-major entry order, CSR order). Consumers that need to replay
/// the trace more than once (e.g. two-pass Belady) should wrap the same
/// generation in a [`crate::source::KernelTrace`] instead of collecting.
///
/// # Panics
///
/// Panics if an interleaved model requests zero streams.
pub fn for_each_access<F: FnMut(Access)>(
    a: &CsrMatrix,
    kernel: Kernel,
    model: ExecutionModel,
    mut raw_sink: F,
) {
    if kernel.is_spgemm() {
        // Two-operand kernels trace the self-multiply (`B = A`, the
        // corpus default) via the dedicated Gustavson generator. Both
        // execution models replay the row schedule — as with the
        // tiled/blocked kernels, the accumulator carries a per-row
        // serialization the interleaved proxy cannot break. A
        // non-square matrix cannot self-multiply and yields an empty
        // trace here; `Pipeline` validates shapes before tracing, and
        // explicit `(A, B)` pairs go through `SpGemmTrace::new`.
        use crate::source::TraceSource;
        if let Ok(trace) = crate::spgemm::SpGemmTrace::self_multiply(a, kernel) {
            trace.replay(&mut raw_sink);
        }
        return;
    }
    let layout = ArrayLayout::new(a, kernel, 32);
    // Under `strict-checks` every emitted access is audited against the
    // operand address space: element-aligned and below `layout.end`.
    let end = layout.end;
    let mut sink = |acc: Access| {
        commorder_sparse::debug_validate!(
            acc.addr().is_multiple_of(ELEM_BYTES) && acc.addr() + ELEM_BYTES <= end,
            "trace access {:#x} misaligned or beyond operand end {end:#x}",
            acc.addr()
        );
        raw_sink(acc);
    };
    match model {
        ExecutionModel::Sequential => match kernel {
            Kernel::SpmvCoo => {
                for i in 0..a.nnz() as u64 {
                    coo_entry_accesses(a, &layout, i, &mut sink);
                }
            }
            Kernel::SpmvCsrTiled { tile_cols } => {
                tiled_accesses(a, &layout, tile_cols, &mut sink);
            }
            Kernel::SpmvBlocked { bins } => {
                blocked_accesses(a, &layout, bins, &mut sink);
            }
            _ => {
                for r in 0..a.n_rows() {
                    row_accesses(a, kernel, &layout, r, &mut sink);
                }
            }
        },
        ExecutionModel::Interleaved { streams } => {
            assert!(streams > 0, "interleaved model needs at least one stream");
            match kernel {
                Kernel::SpmvCsrTiled { tile_cols } => {
                    // Tiles are a serialization barrier (partial sums must
                    // land before the next tile); interleaving happens
                    // within a tile, which the sequential tile walk
                    // already bounds.
                    tiled_accesses(a, &layout, tile_cols, &mut sink);
                }
                Kernel::SpmvBlocked { bins } => {
                    // Both blocking phases are pure streams; interleaving
                    // streams does not change their reuse structure.
                    blocked_accesses(a, &layout, bins, &mut sink);
                }
                _ => interleave(a, kernel, &layout, streams as usize, &mut sink),
            }
        }
    }
}

/// Materializes the full trace — a thin [`TraceSource`]-backed test
/// convenience.
///
/// Production consumers stream via [`crate::source::TraceSource::replay`]
/// (the `xtask lint` rule XT0007 rejects `collect_trace` and full-trace
/// `Vec<Access>` buffers outside tests and this documented shim); keep
/// collection to unit tests and small fixtures.
///
/// [`TraceSource`]: crate::source::TraceSource
#[must_use]
pub fn collect_trace(a: &CsrMatrix, kernel: Kernel, model: ExecutionModel) -> Vec<Access> {
    use crate::source::TraceSource;
    crate::source::KernelTrace::new(a, kernel, model).collect_trace()
}

/// All accesses performed while processing CSR row `r` (SpMV or SpMM).
fn row_accesses<F: FnMut(Access)>(
    a: &CsrMatrix,
    kernel: Kernel,
    layout: &ArrayLayout,
    r: u32,
    sink: &mut F,
) {
    sink(Access::read(ArrayLayout::elem(
        layout.row_offsets,
        u64::from(r),
    )));
    sink(Access::read(ArrayLayout::elem(
        layout.row_offsets,
        u64::from(r) + 1,
    )));
    let (cols, _) = a.row(r);
    let lo = a.row_offsets()[r as usize] as u64;
    for (j, &col) in cols.iter().enumerate() {
        let i = lo + j as u64;
        nz_accesses(kernel, layout, i, col, sink);
    }
    row_epilogue(kernel, layout, r, sink);
}

/// Accesses for one stored entry at CSR position `i` with column `col`.
fn nz_accesses<F: FnMut(Access)>(
    kernel: Kernel,
    layout: &ArrayLayout,
    i: u64,
    col: u32,
    sink: &mut F,
) {
    sink(Access::read(ArrayLayout::elem(layout.coords, i)));
    sink(Access::read(ArrayLayout::elem(layout.values, i)));
    match kernel {
        Kernel::SpmvCsr
        | Kernel::SpmvCoo
        | Kernel::SpmvCsrTiled { .. }
        | Kernel::SpmvBlocked { .. } => {
            sink(Access::read(ArrayLayout::elem(layout.x, u64::from(col))))
        }
        Kernel::SpmmCsr { k } => {
            // Touch each cache line of the k-wide dense row of B.
            let start = u64::from(col) * u64::from(k);
            let step = u64::from(layout.line_bytes) / ELEM_BYTES;
            let mut j = 0u64;
            while j < u64::from(k) {
                sink(Access::read(ArrayLayout::elem(layout.b, start + j)));
                j += step;
            }
        }
        Kernel::SpGemmGustavson | Kernel::SpGemmClusterWise => {
            unreachable!("SpGEMM traces come from crate::spgemm, not the dense-operand row walk")
        }
    }
}

/// Store(s) that complete a row.
fn row_epilogue<F: FnMut(Access)>(kernel: Kernel, layout: &ArrayLayout, r: u32, sink: &mut F) {
    match kernel {
        Kernel::SpmvCsr
        | Kernel::SpmvCoo
        | Kernel::SpmvCsrTiled { .. }
        | Kernel::SpmvBlocked { .. } => {
            sink(Access::write(ArrayLayout::elem(layout.y, u64::from(r))))
        }
        Kernel::SpmmCsr { k } => {
            let start = u64::from(r) * u64::from(k);
            let step = u64::from(layout.line_bytes) / ELEM_BYTES;
            let mut j = 0u64;
            while j < u64::from(k) {
                sink(Access::write(ArrayLayout::elem(layout.c, start + j)));
                j += step;
            }
        }
        Kernel::SpGemmGustavson | Kernel::SpGemmClusterWise => {
            unreachable!("SpGEMM traces come from crate::spgemm, not the dense-operand row walk")
        }
    }
}

/// Propagation-blocking SpMV (see `Kernel::SpmvBlocked`): phase 1
/// streams the matrix in CSC order (column offsets, row indices, values,
/// sequential `X`) and appends `(row, partial)` element pairs to the
/// destination bin's cursor; phase 2 streams each bin back and
/// accumulates into the bin's bounded `Y` range.
fn blocked_accesses<F: FnMut(Access)>(
    a: &CsrMatrix,
    layout: &ArrayLayout,
    bins: u32,
    sink: &mut F,
) {
    let bins = bins.max(1);
    let n = a.n_rows();
    if n == 0 {
        return;
    }
    let rows_per_bin = n.div_ceil(bins).max(1);
    // CSC view: the blocked kernel stores the matrix column-major, so the
    // offsets/indices/values regions hold the CSC arrays.
    let csc = a.transpose();
    // Per-bin element bases within the bins region (2 elements per entry).
    let mut bin_counts = vec![0u64; bins as usize];
    for &r in csc.col_indices() {
        bin_counts[(r / rows_per_bin) as usize] += 1;
    }
    let mut bin_base = vec![0u64; bins as usize + 1];
    for b in 0..bins as usize {
        bin_base[b + 1] = bin_base[b] + 2 * bin_counts[b];
    }
    let mut cursor = bin_base.clone();

    // Phase 1: CSC stream + bin scatter (bin writes are streaming within
    // each bin's segment).
    for c in 0..n {
        sink(Access::read(ArrayLayout::elem(
            layout.row_offsets,
            u64::from(c),
        )));
        sink(Access::read(ArrayLayout::elem(
            layout.row_offsets,
            u64::from(c) + 1,
        )));
        let (rows, _) = csc.row(c); // column c of A
        if rows.is_empty() {
            continue;
        }
        sink(Access::read(ArrayLayout::elem(layout.x, u64::from(c))));
        let lo = csc.row_offsets()[c as usize] as u64;
        for (j, &r) in rows.iter().enumerate() {
            let i = lo + j as u64;
            sink(Access::read(ArrayLayout::elem(layout.coords, i)));
            sink(Access::read(ArrayLayout::elem(layout.values, i)));
            let b = (r / rows_per_bin) as usize;
            sink(Access::write(ArrayLayout::elem(layout.bins, cursor[b])));
            sink(Access::write(ArrayLayout::elem(layout.bins, cursor[b] + 1)));
            cursor[b] += 2;
        }
    }

    // Phase 2: drain bins, accumulate into bounded Y ranges. Re-walk the
    // CSC in bin-major order to recover each bin's destination rows.
    let mut bin_rows: Vec<Vec<u32>> = vec![Vec::new(); bins as usize];
    for c in 0..n {
        let (rows, _) = csc.row(c);
        for &r in rows {
            bin_rows[(r / rows_per_bin) as usize].push(r);
        }
    }
    for (b, rows) in bin_rows.iter().enumerate() {
        let mut pos = bin_base[b];
        for &r in rows {
            sink(Access::read(ArrayLayout::elem(layout.bins, pos)));
            sink(Access::read(ArrayLayout::elem(layout.bins, pos + 1)));
            pos += 2;
            sink(Access::write(ArrayLayout::elem(layout.y, u64::from(r))));
        }
    }
}

/// Column-tiled SpMV (see `Kernel::SpmvCsrTiled`): tiles are processed
/// in order; within a tile every row reads its per-tile offsets, the
/// entries whose columns fall in the tile, and accumulates into `Y`.
fn tiled_accesses<F: FnMut(Access)>(
    a: &CsrMatrix,
    layout: &ArrayLayout,
    tile_cols: u32,
    sink: &mut F,
) {
    let tile_cols = tile_cols.max(1);
    let n = u64::from(a.n_rows());
    let mut tile_start = 0u32;
    let mut tile_idx = 0u64;
    while tile_start < a.n_cols() {
        let tile_end = tile_start.saturating_add(tile_cols).min(a.n_cols());
        for r in 0..a.n_rows() {
            let off_base = tile_idx * (n + 1) + u64::from(r);
            sink(Access::read(ArrayLayout::elem(
                layout.row_offsets,
                off_base,
            )));
            sink(Access::read(ArrayLayout::elem(
                layout.row_offsets,
                off_base + 1,
            )));
            let (cols, _) = a.row(r);
            let lo = cols.partition_point(|&c| c < tile_start);
            let hi = cols.partition_point(|&c| c < tile_end);
            let row_base = u64::from(a.row_offsets()[r as usize]);
            for (j, &col) in cols[lo..hi].iter().enumerate() {
                let i = row_base + (lo + j) as u64;
                sink(Access::read(ArrayLayout::elem(layout.coords, i)));
                sink(Access::read(ArrayLayout::elem(layout.values, i)));
                sink(Access::read(ArrayLayout::elem(layout.x, u64::from(col))));
            }
            if hi > lo {
                sink(Access::write(ArrayLayout::elem(layout.y, u64::from(r))));
            }
        }
        tile_start = tile_end;
        tile_idx += 1;
    }
}

/// All accesses for COO entry `i` (row-major order over the CSR's
/// entries, which *is* row-major COO order).
fn coo_entry_accesses<F: FnMut(Access)>(a: &CsrMatrix, layout: &ArrayLayout, i: u64, sink: &mut F) {
    sink(Access::read(ArrayLayout::elem(layout.coo_rows, i)));
    sink(Access::read(ArrayLayout::elem(layout.coords, i)));
    sink(Access::read(ArrayLayout::elem(layout.values, i)));
    let col = a.col_indices()[i as usize];
    sink(Access::read(ArrayLayout::elem(layout.x, u64::from(col))));
    // Row owning entry i: accumulate into Y.
    let row = row_of_entry(a, i);
    sink(Access::write(ArrayLayout::elem(layout.y, u64::from(row))));
}

/// The row that owns CSR entry index `i`: the unique `r` with
/// `offsets[r] <= i < offsets[r+1]` (empty rows skipped by construction).
fn row_of_entry(a: &CsrMatrix, i: u64) -> u32 {
    let offsets = a.row_offsets();
    offsets.partition_point(|&o| u64::from(o) <= i) as u32 - 1
}

/// Round-robin interleaving of `streams` concurrent row (or COO-chunk)
/// processors, one non-zero per turn.
fn interleave<F: FnMut(Access)>(
    a: &CsrMatrix,
    kernel: Kernel,
    layout: &ArrayLayout,
    streams: usize,
    sink: &mut F,
) {
    if a.n_rows() == 0 {
        return;
    }
    if kernel == Kernel::SpmvCoo {
        interleave_coo(a, layout, streams, sink);
        return;
    }
    // Each slot works one row; finished slots pull the next unclaimed row.
    struct Slot {
        row: u32,
        next_nz: u64,
        end_nz: u64,
        prologue_done: bool,
    }
    let mut next_row = 0u32;
    let n = a.n_rows();
    let mut slots: Vec<Option<Slot>> = (0..streams).map(|_| None).collect();
    let mut active = 0usize;
    loop {
        let mut progressed = false;
        for slot in slots.iter_mut() {
            if slot.is_none() {
                if next_row < n {
                    let r = next_row;
                    next_row += 1;
                    let lo = u64::from(a.row_offsets()[r as usize]);
                    let hi = u64::from(a.row_offsets()[r as usize + 1]);
                    *slot = Some(Slot {
                        row: r,
                        next_nz: lo,
                        end_nz: hi,
                        prologue_done: false,
                    });
                    active += 1;
                } else {
                    continue;
                }
            }
            let s = slot.as_mut().expect("filled above");
            progressed = true;
            if !s.prologue_done {
                sink(Access::read(ArrayLayout::elem(
                    layout.row_offsets,
                    u64::from(s.row),
                )));
                sink(Access::read(ArrayLayout::elem(
                    layout.row_offsets,
                    u64::from(s.row) + 1,
                )));
                s.prologue_done = true;
            }
            if s.next_nz < s.end_nz {
                let i = s.next_nz;
                let col = a.col_indices()[i as usize];
                nz_accesses(kernel, layout, i, col, sink);
                s.next_nz += 1;
            }
            if s.next_nz >= s.end_nz {
                row_epilogue(kernel, layout, s.row, sink);
                *slot = None;
                active -= 1;
            }
        }
        if !progressed && active == 0 && next_row >= n {
            break;
        }
        if !progressed {
            break;
        }
    }
}

/// Interleaved COO: `streams` contiguous entry chunks advanced round-robin.
fn interleave_coo<F: FnMut(Access)>(
    a: &CsrMatrix,
    layout: &ArrayLayout,
    streams: usize,
    sink: &mut F,
) {
    let nnz = a.nnz() as u64;
    let chunk = nnz.div_ceil(streams as u64).max(1);
    let mut cursors: Vec<(u64, u64)> = (0..streams as u64)
        .map(|s| (s * chunk, ((s + 1) * chunk).min(nnz)))
        .collect();
    let mut any = true;
    while any {
        any = false;
        for (cur, end) in cursors.iter_mut() {
            if *cur < *end {
                coo_entry_accesses(a, layout, *cur, sink);
                *cur += 1;
                any = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[. 1 .], [1 . 1], [. 1 .]] with an empty 4th row.
        CsrMatrix::new(4, 4, vec![0, 1, 3, 4, 4], vec![1, 0, 2, 1], vec![1.0; 4]).unwrap()
    }

    #[test]
    fn spmv_csr_access_count() {
        let t = collect_trace(&sample(), Kernel::SpmvCsr, ExecutionModel::Sequential);
        // Per row: 2 offset reads + 1 Y write; per nz: coords + values + X.
        assert_eq!(t.len(), 4 * 3 + 4 * 3);
        assert_eq!(t.iter().filter(|a| a.is_write()).count(), 4);
    }

    #[test]
    fn spmv_coo_access_count() {
        let t = collect_trace(&sample(), Kernel::SpmvCoo, ExecutionModel::Sequential);
        // Per nz: rows + coords + values + X + Y.
        assert_eq!(t.len(), 4 * 5);
        assert_eq!(t.iter().filter(|a| a.is_write()).count(), 4);
    }

    #[test]
    fn spmm_touches_k_wide_rows_per_line() {
        let t = collect_trace(
            &sample(),
            Kernel::SpmmCsr { k: 16 },
            ExecutionModel::Sequential,
        );
        // k=16 floats = 64 bytes = 2 lines; per nz: 2 + B(2); per row: 2
        // offsets + C(2 writes).
        assert_eq!(t.len(), 4 * (2 + 2) + 4 * (2 + 2));
        assert_eq!(t.iter().filter(|a| a.is_write()).count(), 8);
    }

    #[test]
    fn row_of_entry_handles_empty_rows() {
        let a = sample();
        assert_eq!(row_of_entry(&a, 0), 0);
        assert_eq!(row_of_entry(&a, 1), 1);
        assert_eq!(row_of_entry(&a, 2), 1);
        assert_eq!(row_of_entry(&a, 3), 2);
    }

    #[test]
    fn interleaved_is_a_permutation_of_sequential_multiset() {
        let seq = collect_trace(&sample(), Kernel::SpmvCsr, ExecutionModel::Sequential);
        let inter = collect_trace(
            &sample(),
            Kernel::SpmvCsr,
            ExecutionModel::Interleaved { streams: 3 },
        );
        let norm = |mut t: Vec<Access>| {
            t.sort_by_key(|a| (a.addr(), a.is_write()));
            t
        };
        assert_eq!(norm(seq), norm(inter));
    }

    #[test]
    fn interleaved_coo_covers_all_entries() {
        let seq = collect_trace(&sample(), Kernel::SpmvCoo, ExecutionModel::Sequential);
        let inter = collect_trace(
            &sample(),
            Kernel::SpmvCoo,
            ExecutionModel::Interleaved { streams: 2 },
        );
        assert_eq!(seq.len(), inter.len());
    }

    #[test]
    fn single_stream_interleaved_equals_sequential() {
        let seq = collect_trace(&sample(), Kernel::SpmvCsr, ExecutionModel::Sequential);
        let one = collect_trace(
            &sample(),
            Kernel::SpmvCsr,
            ExecutionModel::Interleaved { streams: 1 },
        );
        assert_eq!(seq, one);
    }

    #[test]
    fn x_reads_follow_column_indices() {
        let a = sample();
        let layout = ArrayLayout::new(&a, Kernel::SpmvCsr, 32);
        let t = collect_trace(&a, Kernel::SpmvCsr, ExecutionModel::Sequential);
        let x_reads: Vec<u64> = t
            .iter()
            .filter(|acc| !acc.is_write() && acc.addr() >= layout.x && acc.addr() < layout.y)
            .map(|acc| (acc.addr() - layout.x) / 4)
            .collect();
        assert_eq!(x_reads, vec![1, 0, 2, 1]);
    }

    #[test]
    fn tiled_trace_covers_every_entry_once() {
        let a = sample();
        let layout = ArrayLayout::new(&a, Kernel::SpmvCsrTiled { tile_cols: 2 }, 32);
        let t = collect_trace(
            &a,
            Kernel::SpmvCsrTiled { tile_cols: 2 },
            ExecutionModel::Sequential,
        );
        // Every coords element appears exactly once across all tiles.
        let coord_reads = t
            .iter()
            .filter(|acc| acc.addr() >= layout.coords && acc.addr() < layout.values)
            .count();
        assert_eq!(coord_reads, a.nnz());
        // 2 tiles x 4 rows x 2 offset reads.
        let offset_reads = t.iter().filter(|acc| acc.addr() < layout.coords).count();
        assert_eq!(offset_reads, 2 * 4 * 2);
    }

    #[test]
    fn tiled_trace_with_huge_tile_matches_untiled_x_pattern() {
        let a = sample();
        let big = collect_trace(
            &a,
            Kernel::SpmvCsrTiled { tile_cols: 1000 },
            ExecutionModel::Sequential,
        );
        let plain = collect_trace(&a, Kernel::SpmvCsr, ExecutionModel::Sequential);
        // The tiled kernel skips the Y store for rows with no entries in
        // the tile (row 3 is empty), otherwise the traces line up.
        let count = |t: &[Access], write: bool| t.iter().filter(|a| a.is_write() == write).count();
        assert_eq!(count(&big, true), count(&plain, true) - 1);
        assert_eq!(big.len(), plain.len() - 1);
    }

    #[test]
    fn tiled_y_writes_only_for_rows_with_entries_in_tile() {
        let a = sample(); // row 3 is empty
        let t = collect_trace(
            &a,
            Kernel::SpmvCsrTiled { tile_cols: 2 },
            ExecutionModel::Sequential,
        );
        // Rows 0 (col 1), 1 (cols 0,2), 2 (col 1): tile 0 (cols 0-1)
        // touches rows 0,1,2; tile 1 (cols 2-3) touches row 1 only.
        assert_eq!(t.iter().filter(|acc| acc.is_write()).count(), 4);
    }

    #[test]
    fn empty_matrix_produces_no_trace() {
        let a = CsrMatrix::empty(0);
        assert!(collect_trace(&a, Kernel::SpmvCsr, ExecutionModel::Sequential).is_empty());
        assert!(collect_trace(
            &a,
            Kernel::SpmvCsr,
            ExecutionModel::Interleaved { streams: 4 }
        )
        .is_empty());
    }
}

#[cfg(test)]
mod blocked_tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::new(4, 4, vec![0, 1, 3, 4, 4], vec![1, 0, 2, 1], vec![1.0; 4]).unwrap()
    }

    #[test]
    fn blocked_trace_access_count() {
        let a = sample();
        let t = collect_trace(
            &a,
            Kernel::SpmvBlocked { bins: 2 },
            ExecutionModel::Sequential,
        );
        // Phase 1: 2 offset reads per column (8) + 1 X read per non-empty
        // column (3) + per nz: rows + values reads (8) + 2 bin writes (8).
        // Phase 2: per nz: 2 bin reads (8) + 1 Y write (4).
        assert_eq!(t.len(), 8 + 3 + 8 + 8 + 8 + 4);
        assert_eq!(t.iter().filter(|a| a.is_write()).count(), 8 + 4);
    }

    #[test]
    fn blocked_bin_storage_written_once_and_read_once() {
        let a = sample();
        let layout = ArrayLayout::new(&a, Kernel::SpmvBlocked { bins: 2 }, 32);
        let t = collect_trace(
            &a,
            Kernel::SpmvBlocked { bins: 2 },
            ExecutionModel::Sequential,
        );
        let expected: Vec<u64> = (0..2 * a.nnz() as u64)
            .map(|i| ArrayLayout::elem(layout.bins, i))
            .collect();
        let mut writes: Vec<u64> = t
            .iter()
            .filter(|acc| acc.is_write() && acc.addr() >= layout.bins)
            .map(|acc| acc.addr())
            .collect();
        writes.sort_unstable();
        assert_eq!(writes, expected, "each bin slot written exactly once");
        let mut reads: Vec<u64> = t
            .iter()
            .filter(|acc| !acc.is_write() && acc.addr() >= layout.bins)
            .map(|acc| acc.addr())
            .collect();
        reads.sort_unstable();
        assert_eq!(reads, expected, "each bin slot read back exactly once");
    }

    #[test]
    fn blocked_trace_is_model_independent() {
        let a = sample();
        let seq = collect_trace(
            &a,
            Kernel::SpmvBlocked { bins: 3 },
            ExecutionModel::Sequential,
        );
        let inter = collect_trace(
            &a,
            Kernel::SpmvBlocked { bins: 3 },
            ExecutionModel::Interleaved { streams: 4 },
        );
        assert_eq!(seq, inter);
    }

    #[test]
    fn blocked_empty_matrix() {
        let a = CsrMatrix::empty(0);
        assert!(collect_trace(
            &a,
            Kernel::SpmvBlocked { bins: 4 },
            ExecutionModel::Sequential
        )
        .is_empty());
    }
}
