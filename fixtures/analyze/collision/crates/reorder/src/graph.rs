//! Two matrix forms with identically named methods.

/// Compressed sparse rows.
pub struct Csr {
    /// Row pointer array, one past the last row.
    pub row_ptr: Vec<u32>,
}

impl Csr {
    /// Number of stored rows.
    pub fn width(&self) -> usize {
        self.row_ptr.len().saturating_sub(1)
    }
}

/// Coordinate-format triples.
pub struct Coo {
    /// One `(row, col)` pair per stored value.
    pub entries: Vec<(u32, u32)>,
}

impl Coo {
    /// Number of stored entries.
    pub fn width(&self) -> usize {
        self.entries.len()
    }
}
