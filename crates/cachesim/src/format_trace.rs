//! Address traces for the GPU formats beyond CSR/COO: ELL and SELL-C-σ.
//!
//! These formats have structure-dependent storage (padding), so they sit
//! outside the [`Kernel`](commorder_sparse::traffic::Kernel) enum; the
//! format-study experiment normalizes their traffic to the *CSR*
//! compulsory baseline instead.
//!
//! Layout: `cols` and `values` regions sized by the padded length,
//! followed by `X` and `Y` — padding slots are *stored and streamed*
//! (that is the point of measuring them), but padded entries read
//! neither `X` nor `values` (the classic guarded ELL kernel reads the
//! column index, tests it, and skips the rest).
//!
//! Both traces are replayable [`TraceSource`]s ([`EllTrace`],
//! [`SellTrace`]); the stream is regenerated per replay, never
//! materialized.

use commorder_sparse::{EllMatrix, SellMatrix, ELEM_BYTES, ELL_PAD};

use crate::source::TraceSource;
use crate::trace::Access;

/// Region bases for a padded-format trace.
struct PaddedLayout {
    cols: u64,
    values: u64,
    x: u64,
    y: u64,
}

fn padded_layout(padded_len: u64, n: u64, extra_meta: u64, line_bytes: u64) -> PaddedLayout {
    let align = |addr: u64| addr.div_ceil(line_bytes) * line_bytes;
    let mut cursor = align(extra_meta * ELEM_BYTES);
    let mut region = |elems: u64| {
        let base = cursor;
        cursor = align(cursor + elems * ELEM_BYTES);
        base
    };
    PaddedLayout {
        cols: region(padded_len),
        values: region(padded_len),
        x: region(n),
        y: region(n),
    }
}

/// Replayable trace of a guarded ELL SpMV (slot-major, coalesced
/// `cols`/`values` streams, irregular `X` gathers, one `Y` store per
/// row).
pub struct EllTrace<'a> {
    a: &'a EllMatrix,
}

impl<'a> EllTrace<'a> {
    /// A source replaying the ELL kernel on `a`.
    #[must_use]
    pub fn new(a: &'a EllMatrix) -> Self {
        EllTrace { a }
    }
}

impl TraceSource for EllTrace<'_> {
    fn replay(&self, sink: &mut dyn FnMut(Access)) {
        let a = self.a;
        let n = u64::from(a.n_rows());
        let layout = padded_layout(a.padded_len() as u64, n, 0, 32);
        for slot in 0..a.width() {
            for r in 0..a.n_rows() {
                let idx = u64::from(slot) * n + u64::from(r);
                sink(Access::read(layout.cols + idx * ELEM_BYTES));
                let col = a.col_at(slot, r);
                if col != ELL_PAD {
                    sink(Access::read(layout.values + idx * ELEM_BYTES));
                    sink(Access::read(layout.x + u64::from(col) * ELEM_BYTES));
                }
            }
        }
        for r in 0..n {
            sink(Access::write(layout.y + r * ELEM_BYTES));
        }
    }
}

/// Replayable trace of a SELL-C-σ SpMV: per slice, slot-major coalesced
/// streams plus irregular `X` gathers; `Y` stores scatter back to the
/// original row IDs at the end of each slice.
pub struct SellTrace<'a> {
    a: &'a SellMatrix,
}

impl<'a> SellTrace<'a> {
    /// A source replaying the SELL-C-σ kernel on `a`.
    #[must_use]
    pub fn new(a: &'a SellMatrix) -> Self {
        SellTrace { a }
    }
}

impl TraceSource for SellTrace<'_> {
    fn replay(&self, sink: &mut dyn FnMut(Access)) {
        let a = self.a;
        let n = u64::from(a.n_rows());
        // Slice offset/width metadata is streamed once (2 words per slice).
        let layout = padded_layout(a.padded_len() as u64, n, 2 * a.n_slices() as u64, 32);
        let c = u64::from(a.c());
        let mut base = 0u64;
        for s in 0..a.n_slices() {
            // Slice metadata reads (offset + width) live in the low region.
            sink(Access::read(2 * s as u64 * ELEM_BYTES));
            sink(Access::read((2 * s as u64 + 1) * ELEM_BYTES));
            let width = u64::from(a.slice_width(s));
            let lanes = (n - s as u64 * c).min(c);
            for slot in 0..width {
                for lane in 0..lanes {
                    let idx = base + slot * c + lane;
                    sink(Access::read(layout.cols + idx * ELEM_BYTES));
                    if let Some(col) = a.col_at(s, slot as u32, lane as u32) {
                        sink(Access::read(layout.values + idx * ELEM_BYTES));
                        sink(Access::read(layout.x + u64::from(col) * ELEM_BYTES));
                    }
                }
            }
            // Y scatter for the slice's rows.
            for lane in 0..lanes {
                let row = a.original_row((s as u64 * c + lane) as u32);
                sink(Access::write(layout.y + u64::from(row) * ELEM_BYTES));
            }
            base += width * c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_sparse::{CooMatrix, CsrMatrix};

    fn skewed() -> CsrMatrix {
        let mut entries = Vec::new();
        for v in 1..8u32 {
            entries.push((0, v, 1.0));
            entries.push((v, 0, 1.0));
        }
        CsrMatrix::try_from(CooMatrix::from_entries(8, 8, entries).unwrap()).unwrap()
    }

    fn ell_trace(a: &EllMatrix) -> Vec<Access> {
        EllTrace::new(a).collect_trace()
    }

    fn sell_trace(a: &SellMatrix) -> Vec<Access> {
        SellTrace::new(a).collect_trace()
    }

    #[test]
    fn ell_trace_streams_all_padded_cols() {
        let ell = EllMatrix::from_csr(&skewed()).unwrap();
        let t = ell_trace(&ell);
        // Every padded col slot read once; values+X only for real entries;
        // one Y write per row.
        let nnz = skewed().nnz();
        assert_eq!(t.len(), ell.padded_len() + 2 * nnz + 8);
        assert_eq!(t.iter().filter(|a| a.is_write()).count(), 8);
    }

    #[test]
    fn sell_trace_covers_every_entry_once() {
        let csr = skewed();
        let sell = SellMatrix::from_csr(&csr, 2, 8).unwrap();
        let t = sell_trace(&sell);
        assert_eq!(t.iter().filter(|a| a.is_write()).count(), 8);
        // cols reads = padded_len; per-entry values+X = 2*nnz; plus 2
        // metadata reads per slice and 8 Y writes.
        assert_eq!(
            t.len(),
            sell.padded_len() + 2 * csr.nnz() + 2 * sell.n_slices() + 8
        );
    }

    #[test]
    fn sell_trace_far_smaller_than_ell_on_skew() {
        let csr = skewed();
        let ell = EllMatrix::from_csr(&csr).unwrap();
        let sell = SellMatrix::from_csr(&csr, 2, 8).unwrap();
        assert!(sell_trace(&sell).len() < ell_trace(&ell).len());
    }

    #[test]
    fn format_replays_are_deterministic() {
        let csr = skewed();
        let ell = EllMatrix::from_csr(&csr).unwrap();
        let source = EllTrace::new(&ell);
        assert_eq!(source.collect_trace(), source.collect_trace());
        let sell = SellMatrix::from_csr(&csr, 2, 8).unwrap();
        let source = SellTrace::new(&sell);
        assert_eq!(source.collect_trace(), source.collect_trace());
    }
}
