//! Workspace automation tasks.
//!
//! `cargo run -p xtask -- lint` runs the offline static-analysis pass
//! over every crate: it needs no network, no rustc invocation, and no
//! third-party dependencies, so it works in the most restricted CI
//! sandbox. Since PR 5 the backend is `commorder-analyze`: a lossless
//! token-stream lexer plus layering/determinism/telemetry-name passes,
//! replacing the old line-regex scan. It complements (not replaces)
//! `cargo clippy` with the workspace deny-list: clippy enforces
//! expression-level lints, the analyzer enforces the *policy*
//! invariants a lint pass can't express — crate-header pragmas,
//! manifest opt-ins, the panic-free-library rule with its documented
//! allowlist, the layering DAG, and report-path determinism.
//!
//! `cargo run -p xtask -- lint --fix-allowlist` mechanically removes
//! allowlist entries the analyzer reports as unused (`XT0702`) before
//! printing the report, so the allowlist never accretes dead rows.
//!
//! `cargo run -p xtask -- bench-analyze` measures the analyzer itself
//! (lexer throughput and self-host wall time) and writes the result to
//! `results/BENCH_analyze.json` for the CI artifact trail.
//!
//! `cargo run -p xtask -- bench-reorder` generates a streamed mega-tier
//! matrix, reorders it with the engine-parallel techniques at 1/2/8
//! threads, verifies the permutations are byte-identical across thread
//! counts, and writes throughput (Medges/s), wall times and peak RSS to
//! `results/BENCH_reorder.json`.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use commorder_analyze::workspace::prune_allowlist;
use commorder_analyze::{analyze_workspace, codes, lex, AnalyzerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(
            &workspace_root(),
            args.iter().any(|a| a == "--json"),
            args.iter().any(|a| a == "--fix-allowlist"),
        ),
        Some("bench-analyze") => bench_analyze(&workspace_root()),
        Some("bench-reorder") => bench_reorder(&workspace_root(), args.get(1).map(String::as_str)),
        _ => {
            eprintln!("usage: cargo run -p xtask -- <task>");
            eprintln!();
            eprintln!("tasks:");
            eprintln!("  lint [--json] [--fix-allowlist]");
            eprintln!("          offline static-analysis pass over all workspace crates;");
            eprintln!("          --fix-allowlist prunes XT0702-unused allowlist entries first");
            eprintln!("  bench-analyze");
            eprintln!("          measure lexer throughput + analyzer self-host wall time");
            eprintln!("          and write results/BENCH_analyze.json");
            eprintln!("  bench-reorder [entry]");
            eprintln!("          reorder a streamed mega-tier matrix (default");
            eprintln!("          mega-kmer-chain-4m) at 1/2/8 threads, check the permutations");
            eprintln!("          are thread-count-invariant, write results/BENCH_reorder.json");
            ExitCode::FAILURE
        }
    }
}

/// Runs the analyzer over the workspace and prints the report; the
/// process fails when any error-severity finding is present. With
/// `fix_allowlist`, stale (`XT0702`) allowlist entries are pruned from
/// the allowlist file before the reported run.
fn lint(root: &Path, json: bool, fix_allowlist: bool) -> ExitCode {
    if fix_allowlist {
        match prune_stale_allowlist_entries(root) {
            Ok(0) => eprintln!("xtask lint: allowlist has no unused entries"),
            Ok(n) => eprintln!("xtask lint: pruned {n} unused allowlist entr{}", plural(n)),
            Err(e) => {
                eprintln!("xtask lint: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = match analyze_workspace(root, &AnalyzerConfig::default()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.errors() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Runs the analyzer once to locate `XT0702` findings, then rewrites
/// the allowlist file with those lines removed. Returns the number of
/// pruned entries.
fn prune_stale_allowlist_entries(root: &Path) -> Result<usize, String> {
    let config = AnalyzerConfig::default();
    let report = analyze_workspace(root, &config)?;
    let stale: BTreeSet<u32> = report
        .findings
        .iter()
        .filter(|f| f.code == codes::ALLOWLIST_UNUSED && f.file == config.allowlist_rel)
        .map(|f| f.line)
        .collect();
    if stale.is_empty() {
        return Ok(0);
    }
    let path = root.join(&config.allowlist_rel);
    let text =
        fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    fs::write(&path, prune_allowlist(&text, &stale))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(stale.len())
}

/// "y"/"ies" suffix for the prune message.
fn plural(n: usize) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}

/// Benchmarks the analyzer over the live workspace: raw lexer
/// throughput (tokens/s over every `crates/**/*.rs` file) and the wall
/// time of a full self-host `analyze_workspace` run. Writes
/// `results/BENCH_analyze.json`.
fn bench_analyze(root: &Path) -> ExitCode {
    let mut sources = Vec::new();
    if let Err(e) = collect_rs_files(&root.join("crates"), &mut sources) {
        eprintln!("xtask bench-analyze: {e}");
        return ExitCode::FAILURE;
    }
    sources.sort();

    let mut bytes: u64 = 0;
    let mut tokens: u64 = 0;
    let lex_start = Instant::now();
    for path in &sources {
        let src = match fs::read_to_string(path) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("xtask bench-analyze: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        bytes += src.len() as u64;
        tokens += lex(&src).len() as u64;
    }
    let lex_seconds = lex_start.elapsed().as_secs_f64();

    let selfhost_start = Instant::now();
    let report = match analyze_workspace(root, &AnalyzerConfig::default()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("xtask bench-analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    let selfhost_seconds = selfhost_start.elapsed().as_secs_f64();
    let tokens_per_second = if lex_seconds > 0.0 {
        tokens as f64 / lex_seconds
    } else {
        0.0
    };

    let json = format!(
        "{{\n  \"schema\": \"bench-analyze.v1\",\n  \"files\": {},\n  \"bytes\": {},\n  \
         \"tokens\": {},\n  \"lex_seconds\": {:.6},\n  \"tokens_per_second\": {:.0},\n  \
         \"selfhost_seconds\": {:.6},\n  \"findings\": {}\n}}\n",
        sources.len(),
        bytes,
        tokens,
        lex_seconds,
        tokens_per_second,
        selfhost_seconds,
        report.findings.len(),
    );
    let out_dir = root.join("results");
    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!(
            "xtask bench-analyze: cannot create {}: {e}",
            out_dir.display()
        );
        return ExitCode::FAILURE;
    }
    let out_path = out_dir.join("BENCH_analyze.json");
    if let Err(e) = fs::write(&out_path, &json) {
        eprintln!(
            "xtask bench-analyze: cannot write {}: {e}",
            out_path.display()
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "xtask bench-analyze: {} files, {} tokens, {:.0} tokens/s lex, {:.3}s self-host -> {}",
        sources.len(),
        tokens,
        tokens_per_second,
        selfhost_seconds,
        out_path.display()
    );
    ExitCode::SUCCESS
}

/// Benchmarks the engine-parallel reorderers on a streamed mega-tier
/// corpus entry: each technique runs at 1/2/8 threads, the permutations
/// must be byte-identical across thread counts, and the result
/// (Medges/s, wall seconds, peak RSS, speedup) goes to
/// `results/BENCH_reorder.json`.
fn bench_reorder(root: &Path, entry_name: Option<&str>) -> ExitCode {
    use commorder_exec::Engine;
    use commorder_reorder::{Boba, Rabbit, RabbitPlusPlus, ReorderContext, Reordering};
    use commorder_synth::corpus;

    let entry_name = entry_name.unwrap_or("mega-kmer-chain-4m");
    let Some(entry) = corpus::mega()
        .into_iter()
        .chain(corpus::standard())
        .find(|e| e.name == entry_name)
    else {
        eprintln!("xtask bench-reorder: no corpus entry named {entry_name:?}");
        return ExitCode::FAILURE;
    };

    let gen_start = Instant::now();
    let matrix = match entry.generate() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("xtask bench-reorder: generating {entry_name}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let gen_seconds = gen_start.elapsed().as_secs_f64();
    eprintln!(
        "xtask bench-reorder: {entry_name} = {} rows, {} nnz ({gen_seconds:.2}s to stream)",
        matrix.n_rows(),
        matrix.nnz()
    );

    let techniques: Vec<(&str, Box<dyn Reordering>)> = vec![
        ("RABBIT", Box::new(Rabbit::new())),
        ("RABBIT++", Box::new(RabbitPlusPlus::new())),
        ("BOBA", Box::new(Boba)),
    ];
    let thread_counts = [1usize, 2, 8];
    let nnz = matrix.nnz() as f64;

    // Untimed warmup: fault the matrix and allocator pools in once so
    // the first timed run is not charged for first-touch page faults.
    let warmup = Engine::new(1);
    if let Err(e) = Rabbit::new().reorder_with(&matrix, &ReorderContext::new(&warmup, 0xC0DE)) {
        eprintln!("xtask bench-reorder: warmup: {e}");
        return ExitCode::FAILURE;
    }

    let mut technique_blocks = Vec::with_capacity(techniques.len());
    for (name, technique) in &techniques {
        let mut reference_hash: Option<u64> = None;
        let mut seconds_per_run = Vec::with_capacity(thread_counts.len());
        let mut rows = Vec::with_capacity(thread_counts.len());
        for &threads in &thread_counts {
            let engine = Engine::new(threads);
            let cx = ReorderContext::new(&engine, 0xC0DE);
            // Best-of-3: repetitions absorb scheduler noise, which on a
            // loaded host can otherwise exceed the sharding speedup.
            let mut seconds = f64::INFINITY;
            let mut hwm_kb = 0u64;
            let mut last = None;
            for _ in 0..3 {
                reset_peak_rss();
                let start = Instant::now();
                let permutation = match technique.reorder_with(&matrix, &cx) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("xtask bench-reorder: {name} at {threads} threads: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                seconds = seconds.min(start.elapsed().as_secs_f64());
                hwm_kb = hwm_kb.max(peak_rss_kb());
                last = Some(permutation);
            }
            let permutation = match last {
                Some(p) => p,
                None => unreachable!("loop runs at least once"),
            };
            let hash = fnv1a_u32s(permutation.as_slice());
            match reference_hash {
                None => reference_hash = Some(hash),
                Some(reference) if reference != hash => {
                    eprintln!(
                        "xtask bench-reorder: {name} permutation drifted at {threads} threads \
                         ({reference:016x} -> {hash:016x})"
                    );
                    return ExitCode::FAILURE;
                }
                Some(_) => {}
            }
            let medges_per_s = if seconds > 0.0 {
                nnz / seconds / 1e6
            } else {
                0.0
            };
            eprintln!(
                "xtask bench-reorder: {name:<9} {threads} thread(s): {seconds:.3}s \
                 ({medges_per_s:.1} Medges/s, hwm {hwm_kb} kB)"
            );
            rows.push(format!(
                "      {{\"threads\": {threads}, \"seconds\": {seconds:.6}, \
                 \"medges_per_second\": {medges_per_s:.3}, \"peak_rss_kb\": {hwm_kb}}}"
            ));
            seconds_per_run.push(seconds);
        }
        // Speedup of the widest run over serial — the scaling headline.
        let speedup = match (seconds_per_run.first(), seconds_per_run.last()) {
            (Some(&serial), Some(&widest)) if widest > 0.0 => serial / widest,
            _ => 0.0,
        };
        technique_blocks.push((name, reference_hash.unwrap_or(0), speedup, rows));
    }

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"bench-reorder.v1\",\n");
    json.push_str(&format!("  \"entry\": \"{entry_name}\",\n"));
    json.push_str(&format!("  \"rows\": {},\n", matrix.n_rows()));
    json.push_str(&format!("  \"nnz\": {},\n", matrix.nnz()));
    json.push_str(&format!("  \"generate_seconds\": {gen_seconds:.6},\n"));
    json.push_str("  \"techniques\": [\n");
    for (i, (name, hash, speedup, rows)) in technique_blocks.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"permutation_fnv1a\": \"{hash:016x}\", \
             \"speedup_widest_vs_serial\": {speedup:.3}, \"runs\": [\n"
        ));
        json.push_str(&rows.join(",\n"));
        json.push_str("\n    ]}");
        json.push_str(if i + 1 < technique_blocks.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");

    let out_dir = root.join("results");
    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!(
            "xtask bench-reorder: cannot create {}: {e}",
            out_dir.display()
        );
        return ExitCode::FAILURE;
    }
    let out_path = out_dir.join("BENCH_reorder.json");
    if let Err(e) = fs::write(&out_path, &json) {
        eprintln!(
            "xtask bench-reorder: cannot write {}: {e}",
            out_path.display()
        );
        return ExitCode::FAILURE;
    }
    eprintln!("xtask bench-reorder: wrote {}", out_path.display());
    ExitCode::SUCCESS
}

/// FNV-1a over a `u32` slice in little-endian byte order — a stable
/// fingerprint for cross-thread-count permutation identity.
fn fnv1a_u32s(values: &[u32]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &v in values {
        for byte in v.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

/// Resets the kernel's peak-RSS watermark for this process (Linux
/// `/proc/self/clear_refs`); silently a no-op where unsupported.
fn reset_peak_rss() {
    let _ = fs::write("/proc/self/clear_refs", "5");
}

/// Reads the peak RSS (`VmHWM`, in kB) of this process; 0 where
/// `/proc` is unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches(" kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Recursively collects every `.rs` file under `dir`, skipping
/// `target/` build directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}
