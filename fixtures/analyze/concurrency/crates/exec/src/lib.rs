//! Fixture: concurrency-safety audit — every `XT09xx` hazard in one
//! small engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
