//! A typed receiver picks one `width` despite the name collision.

use crate::graph::Csr;

/// Resolves `m.width()` to `Csr::width` alone: the receiver's type
/// comes from the parameter annotation, not the bare method name.
pub fn reorder(m: &Csr) -> usize {
    m.width()
}
