use commorder_sparse::{CsrMatrix, SparseError};

use crate::generators::undirected_csr;
use crate::rng::Rng;

/// Planted-partition / stochastic-block-model generator with optionally
/// power-law community sizes (LFR-flavoured).
///
/// Vertices are divided into `communities` groups; each vertex draws
/// `intra_degree` edges to members of its own community and a
/// `mixing` fraction of extra edges to random outside vertices. Low
/// `mixing` produces the clean, high-insularity structure where the paper
/// shows RABBIT reaching near-ideal traffic (Fig. 3, right side).
///
/// Community IDs are contiguous **as generated** — the generated order is
/// effectively community-sorted. Corpus entries that should model a
/// carelessly published dataset scramble the IDs afterwards (Observation 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlantedPartition {
    /// Number of vertices.
    pub n: u32,
    /// Number of planted communities.
    pub communities: u32,
    /// Average intra-community degree per vertex.
    pub intra_degree: f64,
    /// Fraction of additional cross-community edges relative to
    /// intra-community edges (0 = perfectly insular).
    pub mixing: f64,
    /// When `Some(alpha)`, community sizes follow a power law with this
    /// exponent instead of being equal.
    pub size_alpha: Option<f64>,
}

impl PlantedPartition {
    /// Equal-sized communities with the given mixing.
    #[must_use]
    pub fn uniform(n: u32, communities: u32, intra_degree: f64, mixing: f64) -> Self {
        PlantedPartition {
            n,
            communities,
            intra_degree,
            mixing,
            size_alpha: None,
        }
    }

    /// The community sizes used for generation (deterministic in the seed).
    fn community_bounds(&self, rng: &mut Rng) -> Vec<u32> {
        let k = self.communities.max(1);
        let mut sizes = match self.size_alpha {
            None => vec![self.n / k; k as usize],
            Some(alpha) => {
                // Draw relative weights from a power law, then scale to n.
                let weights: Vec<f64> = (0..k).map(|_| rng.power_law(alpha, 1000) as f64).collect();
                let total: f64 = weights.iter().sum();
                weights
                    .iter()
                    .map(|w| ((w / total) * f64::from(self.n)) as u32)
                    .collect()
            }
        };
        // Distribute rounding remainder.
        let assigned: u32 = sizes.iter().sum();
        let mut rem = self.n - assigned.min(self.n);
        for s in sizes.iter_mut() {
            if rem == 0 {
                break;
            }
            *s += 1;
            rem -= 1;
        }
        // Prefix-sum into bounds [0, b1, b2, ..., n].
        let mut bounds = Vec::with_capacity(k as usize + 1);
        let mut acc = 0u32;
        bounds.push(acc);
        for s in sizes {
            acc += s;
            bounds.push(acc);
        }
        if let Some(last) = bounds.last_mut() {
            *last = self.n;
        }
        bounds
    }

    /// Generates the graph.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the sparse layer.
    ///
    /// # Panics
    ///
    /// Panics if `communities == 0` or `communities > n`.
    pub fn generate(&self, seed: u64) -> Result<CsrMatrix, SparseError> {
        assert!(self.communities > 0, "need at least one community");
        assert!(self.communities <= self.n, "more communities than vertices");
        let mut rng = Rng::new(seed);
        let bounds = self.community_bounds(&mut rng);
        let mut edges = Vec::new();
        for ci in 0..self.communities as usize {
            let (lo, hi) = (bounds[ci], bounds[ci + 1]);
            let size = hi - lo;
            if size < 2 {
                continue;
            }
            let intra_edges = (f64::from(size) * self.intra_degree / 2.0).round() as usize;
            for _ in 0..intra_edges {
                let u = lo + rng.gen_u32(size);
                let v = lo + rng.gen_u32(size);
                edges.push((u, v));
            }
            let inter_edges = (intra_edges as f64 * self.mixing).round() as usize;
            for _ in 0..inter_edges {
                let u = lo + rng.gen_u32(size);
                let v = rng.gen_u32(self.n);
                edges.push((u, v));
            }
        }
        undirected_csr(self.n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_well_formed;

    /// Fraction of edges staying inside the planted communities (uses the
    /// known uniform community bounds).
    fn planted_insularity(g: &CsrMatrix, communities: u32) -> f64 {
        let size = g.n_rows() / communities;
        let mut intra = 0usize;
        for (r, c, _) in g.iter() {
            if r / size == c / size {
                intra += 1;
            }
        }
        intra as f64 / g.nnz() as f64
    }

    #[test]
    fn low_mixing_is_highly_insular() {
        let g = PlantedPartition::uniform(4000, 40, 10.0, 0.02)
            .generate(1)
            .unwrap();
        assert_well_formed(&g);
        let ins = planted_insularity(&g, 40);
        assert!(ins > 0.95, "insularity = {ins}");
    }

    #[test]
    fn high_mixing_reduces_insularity() {
        let lo = planted_insularity(
            &PlantedPartition::uniform(2000, 20, 8.0, 0.02)
                .generate(2)
                .unwrap(),
            20,
        );
        let hi = planted_insularity(
            &PlantedPartition::uniform(2000, 20, 8.0, 0.5)
                .generate(2)
                .unwrap(),
            20,
        );
        assert!(hi < lo, "mixing 0.5 -> {hi}, mixing 0.02 -> {lo}");
    }

    #[test]
    fn power_law_sizes_cover_all_vertices() {
        let cfg = PlantedPartition {
            n: 3000,
            communities: 30,
            intra_degree: 6.0,
            mixing: 0.1,
            size_alpha: Some(2.0),
        };
        let g = cfg.generate(3).unwrap();
        assert_eq!(g.n_rows(), 3000);
        assert_well_formed(&g);
        // Every vertex should have a chance of edges; most should be non-empty.
        let empty = g.out_degrees().iter().filter(|&&d| d == 0).count();
        assert!(empty < 300, "too many isolated vertices: {empty}");
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = PlantedPartition::uniform(500, 10, 6.0, 0.1);
        assert_eq!(cfg.generate(9).unwrap(), cfg.generate(9).unwrap());
        assert_ne!(cfg.generate(9).unwrap(), cfg.generate(10).unwrap());
    }

    #[test]
    #[should_panic(expected = "at least one community")]
    fn rejects_zero_communities() {
        let _ = PlantedPartition::uniform(10, 0, 2.0, 0.0).generate(0);
    }
}
