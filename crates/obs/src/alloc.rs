//! The `obs-alloc` counting global allocator.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and bumps thread-local
//! allocation totals on every `alloc`/`alloc_zeroed`/`realloc` call.
//! Span guards snapshot the totals at enter and attribute the delta to
//! their span path at drop as an [`crate::Event::Alloc`], giving
//! per-phase allocation counts/bytes with no sampling and no symbol
//! machinery.
//!
//! The hooks must be safe to run *anywhere* — including inside the
//! allocator calls the telemetry machinery itself makes — so they
//! allocate nothing, never panic, use `LocalKey::try_with` (the
//! allocator can run during thread-local teardown), and only wrapping
//! arithmetic on plain `Cell<u64>` counters. `Cell<u64>` has no `Drop`
//! and is const-initialized, so touching the thread-locals registers no
//! destructor and triggers no lazy allocation.
//!
//! Install in a **binary** root:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: commorder_obs::alloc::CountingAlloc =
//!     commorder_obs::alloc::CountingAlloc;
//! ```
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// The calling thread's cumulative `(allocation count, bytes)` totals
/// since thread start. Monotonically non-decreasing (modulo `u64` wrap);
/// consumers difference two snapshots with wrapping subtraction.
///
/// Returns `(0, 0)` while the thread's locals are unavailable (thread
/// teardown) — a conservative zero delta, never an error.
#[must_use]
pub fn thread_totals() -> (u64, u64) {
    let count = ALLOC_COUNT.try_with(Cell::get).unwrap_or(0);
    let bytes = ALLOC_BYTES.try_with(Cell::get).unwrap_or(0);
    (count, bytes)
}

/// Records one allocation of `bytes` bytes on the calling thread.
fn note(bytes: usize) {
    let _ = ALLOC_COUNT.try_with(|c| c.set(c.get().wrapping_add(1)));
    let _ = ALLOC_BYTES.try_with(|b| b.set(b.get().wrapping_add(bytes as u64)));
}

/// A [`System`]-backed global allocator that counts allocations per
/// thread. Placement and freeing behaviour are exactly [`System`]'s —
/// only the bookkeeping is added, so it is safe to use in production
/// profiles.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAlloc;

// SAFETY: every method forwards verbatim to `System`, which satisfies
// the `GlobalAlloc` contract; the added bookkeeping touches only
// thread-local counters and cannot allocate, deallocate, panic, or
// otherwise interfere with the forwarded call.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract for
        // `layout`; forwarded unchanged.
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        // SAFETY: caller upholds `GlobalAlloc::alloc_zeroed`'s contract.
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was returned by this allocator, which always
        // forwards to `System` with the same `layout`.
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // `new_size` is what the caller will own after the call; count
        // it like a fresh allocation of the new block.
        note(new_size);
        // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract for
        // `ptr`/`layout`/`new_size`; forwarded unchanged.
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_accumulates_on_this_thread() {
        let (count_before, bytes_before) = thread_totals();
        note(128);
        note(64);
        let (count_after, bytes_after) = thread_totals();
        assert_eq!(count_after.wrapping_sub(count_before), 2);
        assert_eq!(bytes_after.wrapping_sub(bytes_before), 192);
    }

    #[test]
    fn totals_are_thread_local() {
        // Only explicit note() calls move the counters in this test
        // binary (no global allocator is installed here), so another
        // thread's notes must not be visible on this one.
        let before = thread_totals();
        std::thread::spawn(|| note(5_000_000))
            .join()
            .expect("thread joins");
        assert_eq!(thread_totals(), before);
    }
}
