//! Lenient fixture ingestion for `commorder-cli check`.
//!
//! Unlike the strict readers in `commorder_sparse::io` (which refuse
//! malformed input with a single error), these parsers accept anything
//! token-shaped and hand the raw arrays to the validators, so a corrupted
//! fixture yields the *full list* of `CHK` findings instead of stopping
//! at the first parse failure. Unreadable lines become parse diagnostics
//! in the same report.
//!
//! Supported extensions:
//!
//! * `.mtx` — Matrix Market coordinate files (1-based `row col [value]`
//!   entries, audited as COO against the declared dimensions),
//! * `.csr` — raw CSR dump: `n_rows n_cols`, then one line each for
//!   `row_offsets`, `col_indices`, `values` (values line optional),
//! * `.perm` — one `new_id` per line (`new_ids[old] = new`),
//! * `.trace` — one access per line, `R <addr>` or `W <addr>` (decimal or
//!   `0x` hex); optional directives `@line <bytes>` and `@end <bytes>`
//!   set the sector size and the exclusive address bound,
//! * `.json` — an analyzer findings report (`xtask lint --json`),
//!   audited against the published schema by the `CHK1101` validator
//!   in [`crate::analyze`]; files declaring the `commorder-bench`
//!   schema route to the `CHK12xx` bench-artifact validator in
//!   [`crate::bench`] instead,
//! * `.jsonl` — a `commorder-obs` telemetry stream, audited by the
//!   `CHK09xx` validators in [`crate::telemetry`].

use commorder_cachesim::Access;

use crate::diag::{CheckReport, Diagnostic, Location};
use crate::matrix::{check_coo_parts, check_csr_parts};
use crate::perm::check_permutation_parts;
use crate::trace::check_trace;

/// Parse-failure diagnostics share one pseudo-code: the file never
/// reached the structural validators at that line.
pub const PARSE_CODE: &str = "CHK0001";

fn parse_error(line_no: usize, message: String) -> Diagnostic {
    Diagnostic::error(PARSE_CODE, Location::at("line", line_no as u64), message)
}

/// Audits file `contents` according to the extension of `name`
/// (`mtx`, `csr`, `perm`, `trace`, `json`, or `jsonl`); an unknown extension
/// yields a single parse diagnostic.
#[must_use]
pub fn check_file_contents(name: &str, contents: &str) -> CheckReport {
    let ext = name.rsplit('.').next().unwrap_or("").to_ascii_lowercase();
    let mut report = CheckReport::new();
    match ext.as_str() {
        "mtx" => report.extend(check_mtx(contents)),
        "csr" => report.extend(check_csr_dump(contents)),
        "perm" => report.extend(check_perm_file(contents)),
        "trace" => report.extend(check_trace_file(contents)),
        "json" if contents.contains("\"commorder-bench") => {
            report.extend(crate::bench::check_bench_artifact(contents));
        }
        "json" => report.extend(crate::analyze::check_analyze_report(contents)),
        "jsonl" => report.extend(crate::telemetry::check_telemetry(contents)),
        other => report.extend(vec![parse_error(
            0,
            format!(
                "unknown fixture extension {other:?} (expected mtx, csr, perm, trace, json, or jsonl)"
            ),
        )]),
    }
    report
}

/// Data lines of the file: `(1-based line number, trimmed text)` with
/// blanks and `comment`-prefixed lines removed.
fn data_lines<'a>(contents: &'a str, comment: &str) -> impl Iterator<Item = (usize, &'a str)> {
    let comment = comment.to_string();
    contents
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(move |(_, l)| !l.is_empty() && !l.starts_with(&comment))
}

fn check_mtx(contents: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut entries: Vec<(u32, u32, f32)> = Vec::new();
    let mut dims: Option<(u64, u64, u64)> = None;
    for (line_no, line) in data_lines(contents, "%") {
        let fields: Vec<&str> = line.split_whitespace().collect();
        match dims {
            None => {
                // First data line: `n_rows n_cols nnz`.
                let parsed: Option<Vec<u64>> = fields.iter().map(|f| f.parse().ok()).collect();
                match parsed {
                    Some(v) if v.len() == 3 => dims = Some((v[0], v[1], v[2])),
                    _ => {
                        out.push(parse_error(
                            line_no,
                            format!("expected size line `n_rows n_cols nnz`, got {line:?}"),
                        ));
                        return out;
                    }
                }
            }
            Some(_) => {
                // Entry line: `row col [value]`, 1-based.
                let r = fields.first().and_then(|f| f.parse::<u64>().ok());
                let c = fields.get(1).and_then(|f| f.parse::<u64>().ok());
                let v = match fields.get(2) {
                    Some(f) => f.parse::<f32>().ok(),
                    None => Some(1.0),
                };
                match (r, c, v) {
                    (Some(r), Some(c), Some(v)) if r >= 1 && c >= 1 && fields.len() <= 3 => {
                        // Saturate to keep out-of-range coordinates
                        // representable: the bounds validators report them.
                        let clip = |x: u64| u32::try_from(x - 1).unwrap_or(u32::MAX);
                        entries.push((clip(r), clip(c), v));
                    }
                    _ => out.push(parse_error(
                        line_no,
                        format!("expected entry `row col [value]` (1-based), got {line:?}"),
                    )),
                }
            }
        }
    }
    let Some((n_rows, n_cols, nnz)) = dims else {
        out.push(parse_error(0, "no size line found".to_string()));
        return out;
    };
    if entries.len() as u64 != nnz {
        out.push(Diagnostic::warning(
            PARSE_CODE,
            Location::whole("mtx"),
            format!(
                "header declares {nnz} entries, file holds {}",
                entries.len()
            ),
        ));
    }
    out.extend(check_coo_parts("mtx.entries", n_rows, n_cols, &entries));
    out
}

fn parse_u32_line(line_no: usize, line: &str, out: &mut Vec<Diagnostic>) -> Vec<u32> {
    line.split_whitespace()
        .filter_map(|f| match f.parse::<u32>() {
            Ok(v) => Some(v),
            Err(_) => {
                out.push(parse_error(line_no, format!("expected integer, got {f:?}")));
                None
            }
        })
        .collect()
}

fn check_csr_dump(contents: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut lines = data_lines(contents, "#");
    let Some((line_no, dims)) = lines.next() else {
        out.push(parse_error(0, "empty CSR dump".to_string()));
        return out;
    };
    let dims: Vec<u64> = dims
        .split_whitespace()
        .filter_map(|f| f.parse().ok())
        .collect();
    let [n_rows, n_cols] = dims[..] else {
        out.push(parse_error(
            line_no,
            "expected dimension line `n_rows n_cols`".to_string(),
        ));
        return out;
    };
    let Some((off_no, off_line)) = lines.next() else {
        out.push(parse_error(0, "missing row_offsets line".to_string()));
        return out;
    };
    let row_offsets = parse_u32_line(off_no, off_line, &mut out);
    let Some((col_no, col_line)) = lines.next() else {
        out.push(parse_error(0, "missing col_indices line".to_string()));
        return out;
    };
    let col_indices = parse_u32_line(col_no, col_line, &mut out);
    let values: Option<Vec<f32>> = lines.next().map(|(val_no, val_line)| {
        val_line
            .split_whitespace()
            .filter_map(|f| match f.parse::<f32>() {
                Ok(v) => Some(v),
                Err(_) => {
                    out.push(parse_error(val_no, format!("expected value, got {f:?}")));
                    None
                }
            })
            .collect()
    });
    out.extend(check_csr_parts(
        "csr",
        n_rows,
        n_cols,
        &row_offsets,
        &col_indices,
        values.as_deref(),
    ));
    out
}

fn check_perm_file(contents: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut new_ids = Vec::new();
    for (line_no, line) in data_lines(contents, "#") {
        match line.parse::<u32>() {
            Ok(v) => new_ids.push(v),
            Err(_) => out.push(parse_error(
                line_no,
                format!("expected one new id per line, got {line:?}"),
            )),
        }
    }
    out.extend(check_permutation_parts("permutation", &new_ids, None));
    out
}

fn check_trace_file(contents: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut trace: Vec<Access> = Vec::new();
    let mut line_bytes = 32u32;
    let mut end: Option<u64> = None;
    let parse_addr = |f: &str| {
        f.strip_prefix("0x").map_or_else(
            || f.parse::<u64>().ok(),
            |hex| u64::from_str_radix(hex, 16).ok(),
        )
    };
    for (line_no, line) in data_lines(contents, "#") {
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["@line", v] => match v.parse() {
                Ok(v) => line_bytes = v,
                Err(_) => out.push(parse_error(line_no, format!("bad @line value {v:?}"))),
            },
            ["@end", v] => match parse_addr(v) {
                Some(v) => end = Some(v),
                None => out.push(parse_error(line_no, format!("bad @end value {v:?}"))),
            },
            [op @ ("R" | "W" | "r" | "w"), addr] => match parse_addr(addr) {
                // Bit 63 is the packed read/write tag of `Access`; an
                // address using it cannot be represented and would alias
                // the write flag, so reject it at parse time.
                Some(addr) if addr >= 1 << 63 => out.push(parse_error(
                    line_no,
                    format!("address {addr:#x} uses bit 63, reserved for the write tag"),
                )),
                Some(addr) => trace.push(Access::new(addr, op.eq_ignore_ascii_case("w"))),
                None => out.push(parse_error(line_no, format!("bad address {addr:?}"))),
            },
            _ => out.push(parse_error(
                line_no,
                format!("expected `R <addr>` or `W <addr>`, got {line:?}"),
            )),
        }
    }
    out.extend(check_trace(&trace, end, line_bytes));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes;

    #[test]
    fn clean_mtx_round_trips() {
        let mtx = "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 2 1.0\n2 3 -4.5\n";
        let r = check_file_contents("good.mtx", mtx);
        assert!(r.is_clean(), "{}", r.render_text());
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn mtx_out_of_bounds_entry_reports_coo_codes() {
        let mtx = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n9 1 1.0\n";
        let r = check_file_contents("bad.mtx", mtx);
        assert!(
            r.codes().contains(&codes::COO_ROW_BOUNDS),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn mtx_entry_count_mismatch_warns() {
        let mtx = "%%MatrixMarket matrix coordinate real general\n2 2 5\n1 1 1.0\n";
        let r = check_file_contents("short.mtx", mtx);
        assert!(r.is_clean());
        assert_eq!(r.warning_count(), 1);
    }

    #[test]
    fn csr_dump_non_monotone_offsets_is_chk0103() {
        let dump = "# corrupted\n2 3\n0 2 1\n0 1\n1.0 1.0\n";
        let r = check_file_contents("bad.csr", dump);
        assert!(
            r.codes().contains(&codes::OFFSETS_MONOTONE),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn clean_csr_dump_without_values() {
        let dump = "2 3\n0 1 2\n0 2\n";
        let r = check_file_contents("ok.csr", dump);
        assert!(r.diagnostics.is_empty(), "{}", r.render_text());
    }

    #[test]
    fn perm_file_duplicate_target_is_chk0402() {
        let r = check_file_contents("bad.perm", "# old -> new\n1\n1\n0\n");
        assert_eq!(r.codes(), vec![codes::PERM_DUPLICATE]);
    }

    #[test]
    fn trace_file_misaligned_is_chk0601() {
        let r = check_file_contents("bad.trace", "@line 32\nR 0x0\nW 0x1e\n");
        assert!(
            r.codes().contains(&codes::TRACE_ALIGN),
            "{}",
            r.render_text()
        );
        assert!(
            r.codes().contains(&codes::TRACE_SECTOR),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn trace_file_end_directive_bounds_accesses() {
        let r = check_file_contents("oob.trace", "@end 64\nR 0x40\n");
        assert_eq!(r.codes(), vec![codes::TRACE_BOUNDS]);
    }

    #[test]
    fn bench_artifacts_route_to_the_bench_validator() {
        let truncated = "{\n  \"schema\": \"commorder-bench.v2\",\n";
        let r = check_file_contents("BENCH_pipeline.json", truncated);
        assert!(!r.is_clean());
        assert!(
            r.codes().iter().all(|c| c.starts_with("CHK12")),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn jsonl_files_route_to_the_telemetry_validators() {
        let stream = "{\"type\":\"meta\",\"version\":1}\n\
                      {\"type\":\"counter\",\"name\":\"no.such.metric\",\"delta\":1}\n";
        let r = check_file_contents("run.jsonl", stream);
        assert_eq!(r.codes(), vec![codes::TELEM_METRIC], "{}", r.render_text());
    }

    #[test]
    fn unparseable_lines_become_parse_diagnostics() {
        let r = check_file_contents("junk.perm", "one\n2\n");
        assert!(r.codes().contains(&PARSE_CODE));
        let r = check_file_contents("data.unknown", "whatever");
        assert!(!r.is_clean());
    }
}
