//! Reverse Cuthill–McKee ordering.
//!
//! RCM is the classic bandwidth/profile-minimizing ordering the paper
//! cites among RABBIT's outperformed baselines (\[23\], Karantasis et al.).
//! Included as a reference point for the analysis extensions: BFS levels
//! from a pseudo-peripheral start vertex, neighbours visited in increasing
//! degree order, final order reversed.

use std::collections::VecDeque;

use commorder_sparse::{ops, CsrMatrix, Permutation, SparseError};

use crate::Reordering;

/// Reverse Cuthill–McKee reordering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rcm;

impl Rcm {
    /// Finds a pseudo-peripheral vertex of `start`'s component: repeat BFS
    /// from the farthest minimum-degree vertex until eccentricity stops
    /// growing (George–Liu heuristic, capped at a few rounds).
    fn pseudo_peripheral(sym: &CsrMatrix, start: u32, visited: &[bool]) -> u32 {
        let mut current = start;
        let mut best_ecc = 0u32;
        for _ in 0..4 {
            let (far, ecc) = Self::bfs_farthest(sym, current, visited);
            if ecc <= best_ecc {
                break;
            }
            best_ecc = ecc;
            current = far;
        }
        current
    }

    /// BFS from `start` over unvisited vertices; returns the farthest
    /// minimum-degree vertex in the last level and the eccentricity.
    fn bfs_farthest(sym: &CsrMatrix, start: u32, visited: &[bool]) -> (u32, u32) {
        let n = sym.n_rows() as usize;
        let mut dist = vec![u32::MAX; n];
        dist[start as usize] = 0;
        let mut queue = VecDeque::from([start]);
        let mut last_level: Vec<u32> = vec![start];
        let mut ecc = 0;
        while let Some(v) = queue.pop_front() {
            let d = dist[v as usize];
            if d > ecc {
                ecc = d;
                last_level.clear();
            }
            if d == ecc {
                last_level.push(v);
            }
            let (cols, _) = sym.row(v);
            for &c in cols {
                if dist[c as usize] == u32::MAX && !visited[c as usize] {
                    dist[c as usize] = d + 1;
                    queue.push_back(c);
                }
            }
        }
        let far = last_level
            .into_iter()
            .min_by_key(|&v| sym.row_degree(v))
            .unwrap_or(start);
        (far, ecc)
    }
}

impl Reordering for Rcm {
    fn name(&self) -> &str {
        "RCM"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<Permutation, SparseError> {
        let sym = ops::symmetrize(a)?;
        let n = sym.n_rows();
        let degrees: Vec<u32> = (0..n).map(|v| sym.row_degree(v)).collect();
        let mut visited = vec![false; n as usize];
        let mut order: Vec<u32> = Vec::with_capacity(n as usize);
        let mut scratch: Vec<u32> = Vec::new();
        // Iterate components in order of their minimum-degree member.
        let mut by_degree: Vec<u32> = (0..n).collect();
        by_degree.sort_by_key(|&v| degrees[v as usize]);
        for &seed in &by_degree {
            if visited[seed as usize] {
                continue;
            }
            let start = Self::pseudo_peripheral(&sym, seed, &visited);
            visited[start as usize] = true;
            let mut queue = VecDeque::from([start]);
            order.push(start);
            while let Some(v) = queue.pop_front() {
                let (cols, _) = sym.row(v);
                scratch.clear();
                scratch.extend(cols.iter().copied().filter(|&c| !visited[c as usize]));
                scratch.sort_by_key(|&c| degrees[c as usize]);
                for &c in &scratch {
                    if !visited[c as usize] {
                        visited[c as usize] = true;
                        order.push(c);
                        queue.push_back(c);
                    }
                }
            }
        }
        order.reverse();
        Permutation::from_order(&order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_sparse::stats::bandwidth;
    use commorder_sparse::CooMatrix;

    fn path(n: u32) -> CsrMatrix {
        let entries: Vec<_> = (0..n - 1)
            .flat_map(|v| [(v, v + 1, 1.0), (v + 1, v, 1.0)])
            .collect();
        CsrMatrix::try_from(CooMatrix::from_entries(n, n, entries).unwrap()).unwrap()
    }

    #[test]
    fn rcm_recovers_path_bandwidth_after_scrambling() {
        let tidy = path(64);
        // Scramble with a fixed permutation.
        let scramble = crate::RandomOrder::new(9).reorder(&tidy).unwrap();
        let messy = tidy.permute_symmetric(&scramble).unwrap();
        assert!(bandwidth(&messy) > 10);
        let p = Rcm.reorder(&messy).unwrap();
        let fixed = messy.permute_symmetric(&p).unwrap();
        assert_eq!(bandwidth(&fixed), 1, "path must reorder to bandwidth 1");
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        // Two separate edges + an isolated vertex.
        let m = CsrMatrix::try_from(
            CooMatrix::from_entries(
                5,
                5,
                vec![(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0), (3, 2, 1.0)],
            )
            .unwrap(),
        )
        .unwrap();
        let p = Rcm.reorder(&m).unwrap();
        assert_eq!(p.len(), 5);
        let r = m.permute_symmetric(&p).unwrap();
        assert_eq!(r.nnz(), 4);
    }

    #[test]
    fn rcm_reduces_grid_bandwidth_versus_random() {
        use commorder_synth::generators::Grid2d;
        let g = Grid2d {
            width: 20,
            height: 20,
            diagonals: false,
            shortcut_p: 0.0,
            scramble_ids: true,
        }
        .generate(4)
        .unwrap();
        let before = bandwidth(&g);
        let p = Rcm.reorder(&g).unwrap();
        let after = bandwidth(&g.permute_symmetric(&p).unwrap());
        assert!(
            after * 3 < before,
            "bandwidth should drop sharply: {before} -> {after}"
        );
    }

    #[test]
    fn rcm_works_on_directed_input() {
        // Directed cycle — symmetrized internally.
        let m = CsrMatrix::try_from(
            CooMatrix::from_entries(
                4,
                4,
                vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)],
            )
            .unwrap(),
        )
        .unwrap();
        let p = Rcm.reorder(&m).unwrap();
        assert_eq!(p.len(), 4);
    }
}
