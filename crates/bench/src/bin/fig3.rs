//! **Figure 3**: SpMV run time (normalized to ideal) under RABBIT, with
//! matrices arranged in increasing order of insularity, plus the §V-B
//! correlation analysis (insularity vs. community size, insularity vs.
//! degree skew).

use commorder::prelude::*;
use commorder::reorder::quality::{self, CommunityStats};
use commorder::sparse::stats::{pearson, skew_top10};
use commorder_bench::Harness;

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let cases = harness.load();
    let pipeline = Pipeline::new(harness.gpu);

    struct Row {
        name: String,
        insularity: f64,
        time_ratio: f64,
        norm_comm_size: f64,
        max_comm_fraction: f64,
        skew: f64,
    }
    let mut rows: Vec<Row> = harness.engine().map(&cases, |_, case| {
        eprintln!("[fig3] {}", case.entry.name);
        let result = Rabbit::new()
            .run(&case.matrix)
            .expect("square corpus matrix");
        let insularity = quality::insularity(&case.matrix, &result.assignment).expect("validated");
        let stats = CommunityStats::from_sizes(&result.dendrogram.community_sizes());
        let reordered = case
            .matrix
            .permute_symmetric(&result.permutation)
            .expect("validated");
        let run = pipeline.simulate(&reordered);
        Row {
            name: case.entry.name.to_string(),
            insularity,
            time_ratio: run.time_ratio,
            norm_comm_size: stats.mean_size_normalized,
            max_comm_fraction: stats.max_size_fraction,
            skew: skew_top10(&case.matrix),
        }
    });
    rows.sort_by(|a, b| a.insularity.partial_cmp(&b.insularity).expect("finite"));

    let mut table = Table::new(
        "Fig. 3: SpMV run time (normalized to ideal) with RABBIT, by insularity",
        vec![
            "matrix".into(),
            "insularity".into(),
            "time/ideal".into(),
            "mean comm size/n".into(),
            "max comm frac".into(),
            "skew(top10%)".into(),
        ],
    );
    for r in &rows {
        table.add_row(vec![
            r.name.clone(),
            format!("{:.3}", r.insularity),
            Table::ratio(r.time_ratio),
            format!("{:.4}", r.norm_comm_size),
            format!("{:.3}", r.max_comm_fraction),
            Table::percent(r.skew),
        ]);
    }
    println!("{table}");

    let split = InsularitySplit::from_pairs(
        &rows
            .iter()
            .map(|r| (r.insularity, r.time_ratio))
            .collect::<Vec<_>>(),
    );
    println!(
        "RABBIT mean run time: ALL {} | ins < 0.95 {} | ins >= 0.95 {}",
        Table::ratio(split.all),
        Table::ratio(split.low),
        Table::ratio(split.high)
    );
    println!("Paper reference: ins >= 0.95 within 26% of ideal (1.26x); ins < 0.95 mean 1.81x");

    // §V-B correlations. The paper excludes the mawi outlier from the
    // community-size correlation; we exclude matrices whose largest
    // community spans > 90% of the nodes for the same reason.
    let filtered: Vec<&Row> = rows.iter().filter(|r| r.max_comm_fraction < 0.9).collect();
    let ins: Vec<f64> = filtered.iter().map(|r| r.insularity).collect();
    let sizes: Vec<f64> = filtered.iter().map(|r| r.norm_comm_size).collect();
    let skews: Vec<f64> = filtered.iter().map(|r| r.skew).collect();
    if let Some(c) = pearson(&ins, &sizes) {
        println!("Pearson(insularity, normalized community size) = {c:.3}  (paper: -0.472)");
    }
    if let Some(c) = pearson(&ins, &skews) {
        println!("Pearson(insularity, skew) = {c:.3}  (paper: -0.721)");
    }
    let low_skew: Vec<f64> = rows
        .iter()
        .filter(|r| r.insularity >= 0.95)
        .map(|r| r.skew)
        .collect();
    let high_skew: Vec<f64> = rows
        .iter()
        .filter(|r| r.insularity < 0.95)
        .map(|r| r.skew)
        .collect();
    println!(
        "mean skew: ins >= 0.95 {} (paper 16.37%) | ins < 0.95 {} (paper 41.74%)",
        Table::percent(arith_mean_ratio(&low_skew).unwrap_or(f64::NAN)),
        Table::percent(arith_mean_ratio(&high_skew).unwrap_or(f64::NAN)),
    );
}
