//! Shared harness for the experiment binaries that regenerate every
//! table and figure of the paper.
//!
//! Each binary (`fig2` … `fig9`, `table2` … `table4`, `all`) loads the
//! evaluation corpus, runs the relevant pipeline, and prints a table
//! shaped like the paper's. Two environment variables control scale:
//!
//! * `COMMORDER_CORPUS` — `standard` (default, the 50-matrix corpus with
//!   the 128 KiB scaled A6000 L2) or `mini` (8 small matrices with an
//!   8 KiB L2; seconds instead of minutes, same qualitative shapes).
//! * `COMMORDER_MAX_MATRICES` — truncate the corpus for smoke runs.
//! * `COMMORDER_CSV` — directory to additionally save the main data
//!   tables as CSV (for external plotting).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod microbench;

use commorder::prelude::*;
use commorder::synth::corpus::{self, CorpusEntry};

/// A generated corpus matrix with its RABBIT-derived analysis metrics,
/// shared by most experiments.
pub struct MatrixCase {
    /// Corpus entry metadata.
    pub entry: CorpusEntry,
    /// The matrix in its published (ORIGINAL) order.
    pub matrix: CsrMatrix,
}

/// Experiment-wide configuration resolved from the environment.
pub struct Harness {
    /// Platform (GPU + L2 geometry) for all simulations.
    pub gpu: GpuSpec,
    /// Corpus entries to evaluate.
    pub entries: Vec<CorpusEntry>,
    /// Seed for the RANDOM ordering.
    pub random_seed: u64,
}

impl Harness {
    /// Builds the harness from `COMMORDER_CORPUS` / `COMMORDER_MAX_MATRICES`.
    #[must_use]
    pub fn from_env() -> Self {
        let corpus_kind =
            std::env::var("COMMORDER_CORPUS").unwrap_or_else(|_| "standard".to_string());
        let (entries, gpu) = match corpus_kind.as_str() {
            "mini" => (corpus::mini(), GpuSpec::test_scale()),
            _ => (corpus::standard(), GpuSpec::a6000_scaled()),
        };
        let limit = std::env::var("COMMORDER_MAX_MATRICES")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(usize::MAX);
        Harness {
            gpu,
            entries: entries.into_iter().take(limit).collect(),
            random_seed: 0xC0DE,
        }
    }

    /// Generates every corpus matrix (reporting progress on stderr).
    ///
    /// # Panics
    ///
    /// Panics if a built-in corpus entry fails to generate (a bug — the
    /// corpus is covered by tests).
    #[must_use]
    pub fn load(&self) -> Vec<MatrixCase> {
        self.entries
            .iter()
            .map(|entry| {
                eprintln!("[gen] {}", entry.name);
                let matrix = entry
                    .generate()
                    .unwrap_or_else(|e| panic!("corpus entry {} failed: {e}", entry.name));
                MatrixCase {
                    entry: entry.clone(),
                    matrix,
                }
            })
            .collect()
    }

    /// Prints the platform header (Table I) every binary leads with.
    pub fn print_platform(&self) {
        let g = &self.gpu;
        println!("platform: {}", g.name);
        println!(
            "  peak bw {:.0} GB/s | measured bw {:.0} GB/s | L2 {} KiB ({}B lines, {}-way) | mem {} GB",
            g.peak_bandwidth / 1e9,
            g.measured_bandwidth / 1e9,
            g.l2.capacity_bytes / 1024,
            g.l2.line_bytes,
            g.l2.associativity,
            g.memory_capacity >> 30,
        );
        println!(
            "  corpus: {} matrices | kernel model: sequential trace, LRU L2\n",
            self.entries.len()
        );
    }
}

/// The Fig. 2 technique list (without RABBIT++), in paper order.
#[must_use]
pub fn figure2_techniques(seed: u64) -> Vec<Box<dyn Reordering>> {
    vec![
        Box::new(RandomOrder::new(seed)),
        Box::new(Original),
        Box::new(DegSort),
        Box::new(Dbg::default()),
        Box::new(Gorder::default()),
        Box::new(Rabbit::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_mini_resolves() {
        std::env::set_var("COMMORDER_CORPUS", "mini");
        std::env::set_var("COMMORDER_MAX_MATRICES", "3");
        let h = Harness::from_env();
        assert_eq!(h.entries.len(), 3);
        assert_eq!(h.gpu.l2.capacity_bytes, 8 * 1024);
        std::env::remove_var("COMMORDER_CORPUS");
        std::env::remove_var("COMMORDER_MAX_MATRICES");
    }

    #[test]
    fn figure2_suite_is_the_paper_order() {
        let names: Vec<String> = figure2_techniques(1)
            .iter()
            .map(|t| t.name().to_string())
            .collect();
        assert_eq!(
            names,
            vec!["RANDOM", "ORIGINAL", "DEGSORT", "DBG", "GORDER", "RABBIT"]
        );
    }
}

/// Runs `f` over `items` on all available cores, preserving input order
/// in the output. Each item's evaluation is independent (the corpus
/// pipeline has no shared mutable state), so this is a pure wall-clock
/// optimization for multi-core machines; on a single core it degrades to
/// sequential execution.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let slot_refs: Vec<std::sync::Mutex<&mut Option<R>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(&items[i]);
                **slot_refs[i].lock().expect("no poisoned slot") = Some(result);
            });
        }
    });
    drop(slot_refs);
    slots
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod parallel_tests {
    use super::parallel_map;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[7u64], |&x| x + 1), vec![8]);
    }
}
