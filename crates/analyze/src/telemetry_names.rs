//! Static telemetry-name cross-check (`XT0601`–`XT0605`).
//!
//! PR 3's `CHK09xx` validators catch undeclared metric names in
//! emitted JSONL streams — at run time, for the code paths a run
//! happens to exercise. This pass shifts the same contract left: it
//! extracts the string literal from every `span!`/`counter!`/`gauge!`/
//! `observe!` call site in the tree and diffs the set against the
//! registry in `names.rs`. Undeclared names, orphaned registry rows,
//! kind mismatches, and non-literal name arguments are all findings.
//! Histogram rows additionally must declare a non-empty `unit`
//! (`XT0605`): `profile` exports their percentiles, and a percentile
//! without a unit is an unreadable number.

use std::collections::BTreeMap;

use crate::codes;
use crate::findings::{Finding, Severity};
use crate::items::{code_indices, in_ranges};
use crate::lexer::TokenKind;
use crate::model::CrateData;

/// A declared registry row: kind label plus declaration anchor.
struct Declared {
    kind: &'static str,
    line: u32,
    col: u32,
    col_end: u32,
    used: bool,
}

/// Runs the cross-check. `registry_rel` is the workspace-relative path
/// of the registry source; when the workspace has no registry file the
/// pass is silent (fixture workspaces opt in by shipping one).
#[must_use]
pub fn check(crates: &[CrateData], registry_rel: &str) -> Vec<Finding> {
    let mut metrics: BTreeMap<String, Declared> = BTreeMap::new();
    let mut spans: BTreeMap<String, Declared> = BTreeMap::new();
    let mut found_registry = false;
    let mut out = Vec::new();
    for c in crates {
        for f in &c.files {
            if f.rel == registry_rel {
                found_registry = true;
                extract_registry(f, &mut metrics, &mut spans, &mut out);
            }
        }
    }
    if !found_registry {
        return Vec::new();
    }
    for c in crates {
        for f in &c.files {
            scan_call_sites(f, registry_rel, &mut metrics, &mut spans, &mut out);
        }
    }

    for (name, d) in metrics.iter().chain(spans.iter()) {
        if !d.used {
            out.push(Finding {
                code: codes::TELEM_ORPHANED,
                severity: Severity::Error,
                file: registry_rel.to_string(),
                line: d.line,
                col_start: d.col,
                col_end: d.col_end,
                message: format!(
                    "registry name \"{name}\" is never emitted by any call site; remove the row or instrument the code"
                ),
            });
        }
    }
    out
}

/// Extracts `MetricInfo { name: "…", kind: MetricKind::X, … }` and
/// `SpanInfo { name: "…", … }` rows from the registry file's tokens,
/// flagging histogram rows that declare no unit (`XT0605`).
fn extract_registry(
    f: &crate::model::FileData,
    metrics: &mut BTreeMap<String, Declared>,
    spans: &mut BTreeMap<String, Declared>,
    out: &mut Vec<Finding>,
) {
    let code = code_indices(&f.tokens);
    let tok = |at: usize| code.get(at).map(|&i| &f.tokens[i]);
    let word =
        |at: usize| tok(at).and_then(|t| (t.kind == TokenKind::Ident).then(|| t.text(&f.src)));
    let mut i = 0;
    while i < code.len() {
        let Some(t) = tok(i) else {
            break;
        };
        if in_ranges(t.start, &f.test_ranges) {
            i += 1;
            continue;
        }
        let ctor = word(i);
        let is_metric = ctor == Some("MetricInfo");
        let is_span = ctor == Some("SpanInfo");
        if !(is_metric || is_span)
            || !tok(i + 1).is_some_and(|t| t.kind == TokenKind::Punct && t.text(&f.src) == "{")
        {
            i += 1;
            continue;
        }
        // Walk the initializer to its closing brace, collecting fields.
        let mut depth = 0i64;
        let mut j = i + 1;
        let mut name: Option<(String, u32, u32, u32)> = None;
        let mut kind: Option<&str> = None;
        let mut unit: Option<String> = None;
        while let Some(t) = tok(j) {
            if t.kind == TokenKind::Punct {
                match t.text(&f.src) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if word(j) == Some("name") {
                if let Some(lit) = tok(j + 2).filter(|t| t.kind == TokenKind::StrLit) {
                    name = Some((
                        unquote(lit.text(&f.src)),
                        lit.line,
                        lit.col,
                        lit.col + u32::try_from(lit.len()).unwrap_or(0),
                    ));
                }
            }
            // `kind : MetricKind : : Counter` — five tokens after `kind`.
            if word(j) == Some("kind") && word(j + 2) == Some("MetricKind") {
                kind = match word(j + 5) {
                    Some("Counter") => Some("counter"),
                    Some("Gauge") => Some("gauge"),
                    Some("Histogram") => Some("histogram"),
                    _ => None,
                };
            }
            if word(j) == Some("unit") {
                if let Some(lit) = tok(j + 2).filter(|t| t.kind == TokenKind::StrLit) {
                    unit = Some(unquote(lit.text(&f.src)));
                }
            }
            j += 1;
        }
        if kind == Some("histogram") && unit.as_deref().is_none_or(str::is_empty) {
            if let Some((n, line, col, col_end)) = &name {
                out.push(Finding {
                    code: codes::TELEM_UNITLESS,
                    severity: Severity::Error,
                    file: f.rel.clone(),
                    line: *line,
                    col_start: *col,
                    col_end: *col_end,
                    message: format!(
                        "histogram \"{n}\" declares no unit; percentile exports need one \
                         (e.g. unit: \"seconds\")"
                    ),
                });
            }
        }
        if let Some((n, line, col, col_end)) = name {
            let declared = Declared {
                kind: kind.unwrap_or("counter"),
                line,
                col,
                col_end,
                used: false,
            };
            if is_metric {
                metrics.insert(n, declared);
            } else {
                spans.insert(
                    n,
                    Declared {
                        kind: "span",
                        ..declared
                    },
                );
            }
        }
        i = j.max(i + 1);
    }
}

/// The registry kind each telemetry macro requires.
fn expected_kind(mac: &str) -> &'static str {
    match mac {
        "counter" => "counter",
        "gauge" => "gauge",
        "observe" => "histogram",
        _ => "span",
    }
}

/// Scans one file for telemetry macro call sites and checks each name.
fn scan_call_sites(
    f: &crate::model::FileData,
    registry_rel: &str,
    metrics: &mut BTreeMap<String, Declared>,
    spans: &mut BTreeMap<String, Declared>,
    out: &mut Vec<Finding>,
) {
    let code = code_indices(&f.tokens);
    let tok = |at: usize| code.get(at).map(|&i| &f.tokens[i]);
    let punct = |at: usize, c: char| {
        tok(at).is_some_and(|t| t.kind == TokenKind::Punct && t.text(&f.src).starts_with(c))
    };
    for i in 0..code.len() {
        let Some(t) = tok(i) else {
            continue;
        };
        if t.kind != TokenKind::Ident
            || in_ranges(t.start, &f.test_ranges)
            || in_ranges(t.start, &f.macro_ranges)
        {
            continue;
        }
        let mac = t.text(&f.src);
        if !matches!(mac, "span" | "counter" | "gauge" | "observe") {
            continue;
        }
        if !(punct(i + 1, '!') && punct(i + 2, '(')) {
            continue;
        }
        let Some(arg) = tok(i + 3) else {
            continue;
        };
        if arg.kind != TokenKind::StrLit {
            out.push(Finding {
                code: codes::TELEM_NONLITERAL,
                severity: Severity::Error,
                file: f.rel.clone(),
                line: arg.line,
                col_start: arg.col,
                col_end: arg.col + u32::try_from(arg.len()).unwrap_or(0),
                message: format!(
                    "{mac}! name must be a string literal so the registry cross-check can verify it"
                ),
            });
            continue;
        }
        let name = unquote(arg.text(&f.src));
        let table = if mac == "span" {
            &mut *spans
        } else {
            &mut *metrics
        };
        match table.get_mut(&name) {
            None => out.push(Finding {
                code: codes::TELEM_UNDECLARED,
                severity: Severity::Error,
                file: f.rel.clone(),
                line: arg.line,
                col_start: arg.col,
                col_end: arg.col + u32::try_from(arg.len()).unwrap_or(0),
                message: format!("telemetry name \"{name}\" is not declared in {registry_rel}"),
            }),
            Some(d) => {
                d.used = true;
                let want = expected_kind(mac);
                if d.kind != want {
                    out.push(Finding {
                        code: codes::TELEM_KIND,
                        severity: Severity::Error,
                        file: f.rel.clone(),
                        line: arg.line,
                        col_start: arg.col,
                        col_end: arg.col + u32::try_from(arg.len()).unwrap_or(0),
                        message: format!(
                            "telemetry kind mismatch: \"{name}\" is declared as {} but {mac}! requires {want}",
                            d.kind
                        ),
                    });
                }
            }
        }
    }
}

/// Strips the quotes (and any prefix/hashes) from a string literal's
/// source text.
fn unquote(text: &str) -> String {
    let Some(open) = text.find('"') else {
        return text.to_string();
    };
    let Some(close) = text.rfind('"') else {
        return text.to_string();
    };
    if close > open {
        text[open + 1..close].to_string()
    } else {
        text.to_string()
    }
}
