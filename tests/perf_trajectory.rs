//! Perf-trajectory integration: the `xtask bench` emitter, the
//! `CHK12xx` artifact validators, the regression gate, and the
//! deterministic flamegraph export must agree end to end. The emitter
//! and the validator freeze the `commorder-bench.v2` framing
//! independently (xtask cannot depend on `commorder-check` without
//! inverting the layer order), so this cross-crate test is the one
//! place a drift between them fails before CI pipes the artifacts
//! through `commorder-cli check`.

use std::sync::Arc;

use commorder::obs;
use commorder::prelude::*;
use commorder::synth::corpus;
use commorder_check::check_bench_artifact;
use xtask::bench::{compare, BenchReport, Machine};

/// A small but fully populated report: two metrics (one per
/// direction), one result fingerprint, a deterministic machine block.
fn sample_report() -> BenchReport {
    let mut r = BenchReport::new("pipeline");
    r.machine = Machine::unknown();
    r.metric(
        "pipeline.lru_accesses_per_second",
        1.5e8,
        "accesses/s",
        true,
    );
    r.metric("pipeline.suite_wall_seconds", 2.25, "seconds", false);
    r.fingerprint("cache.lru", 0x0BAD_F00D_DEAD_BEEF);
    r
}

#[test]
fn emitter_output_passes_the_chk12xx_validators() {
    let full = sample_report().render_json();
    let diags = check_bench_artifact(&full);
    assert!(diags.is_empty(), "emitter vs validator drift: {diags:?}");

    // The empty-fingerprints frame is a distinct shape (`[],` on one
    // line) and must stay valid too — the analyze bench has no
    // result-fingerprint rows.
    let mut bare = BenchReport::new("analyze");
    bare.machine = Machine::unknown();
    bare.metric("analyze.selfhost_seconds", 4.0, "seconds", false);
    let diags = check_bench_artifact(&bare.render_json());
    assert!(
        diags.is_empty(),
        "empty-fingerprint frame rejected: {diags:?}"
    );
}

#[test]
fn render_parse_round_trip_is_byte_identical() {
    let rendered = sample_report().render_json();
    let reparsed = BenchReport::parse(&rendered).expect("own output parses");
    assert_eq!(reparsed.render_json(), rendered);
}

#[test]
fn validator_flags_schema_and_ordering_corruption() {
    let good = sample_report().render_json();

    let wrong_schema = good.replace("commorder-bench.v2", "commorder-bench.v1");
    assert!(
        check_bench_artifact(&wrong_schema)
            .iter()
            .any(|d| d.code == "CHK1201"),
        "unknown schema version must be a CHK1201 frame error"
    );

    // Renaming the second metric so it sorts before the first breaks
    // the strictly-increasing name order the gate's lookups rely on.
    let out_of_order = good.replace(
        "\"name\":\"pipeline.suite_wall_seconds\"",
        "\"name\":\"a.suite_wall_seconds\"",
    );
    assert!(
        !check_bench_artifact(&out_of_order).is_empty(),
        "out-of-order metric names must be flagged"
    );
}

#[test]
fn gate_passes_self_compare_and_fails_an_injected_regression() {
    let old = sample_report();
    let outcome = compare(&old, &sample_report(), 0.30);
    assert!(outcome.is_pass(), "self-compare regressed: {outcome:?}");

    // Halving a higher-is-better throughput is far outside the 30%
    // band; the gate must name the metric.
    let mut slower = sample_report();
    for m in &mut slower.metrics {
        if m.name == "pipeline.lru_accesses_per_second" {
            m.value /= 2.0;
        }
    }
    let outcome = compare(&old, &slower, 0.30);
    assert!(!outcome.is_pass());
    assert!(
        outcome
            .regressions
            .iter()
            .any(|r| r.contains("pipeline.lru_accesses_per_second")),
        "regression must name the drifted metric: {outcome:?}"
    );
}

#[test]
fn fingerprint_drift_fails_even_with_identical_timings() {
    let old = sample_report();
    let mut drifted = sample_report();
    drifted.fingerprints[0].value ^= 1;
    let outcome = compare(&old, &drifted, 0.30);
    assert!(
        !outcome.is_pass(),
        "a changed result fingerprint is a hard failure, not a timing question"
    );
    assert!(outcome.regressions.iter().any(|r| r.contains("cache.lru")));
}

/// Two mini-corpus matrices x two techniques: enough to populate the
/// span tree through reorder, trace-gen, simulate, and model.
fn mini_spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(GpuSpec::test_scale())
        .techniques(vec![Box::new(Original), Box::new(Rabbit::new())]);
    for entry in corpus::mini().into_iter().take(2) {
        let matrix = entry.generate().expect("mini corpus generates");
        spec = spec.matrix_in_group(entry.name, entry.domain.label(), matrix);
    }
    spec
}

#[test]
fn folded_flamegraph_is_byte_identical_across_engine_widths() {
    let _serial = obs::tests_serial();
    let mut folded = Vec::new();
    for threads in [1usize, 4] {
        let registry = Arc::new(obs::Registry::new());
        let guard = obs::install(registry.clone());
        mini_spec().run(&Engine::new(threads)).expect("valid grid");
        drop(guard);
        folded.push(registry.render_folded());
    }
    assert!(!folded[0].is_empty(), "profile produced no folded stacks");
    assert_eq!(
        folded[0], folded[1],
        "folded export must not depend on engine width"
    );
    // Collapsed-stack format: `path;path;leaf <count>` per line, paths
    // sorted so the export is goldenable.
    let lines: Vec<&str> = folded[0].lines().collect();
    let mut sorted = lines.clone();
    sorted.sort_unstable();
    assert_eq!(lines, sorted, "folded stacks must be emitted sorted");
    for line in &lines {
        let (_, count) = line.rsplit_once(' ').expect("`stack count` shape");
        count.parse::<u64>().expect("count column is an integer");
    }
}
