use std::collections::HashSet;

use crate::trace::Access;
use crate::CacheConfig;

/// Counters collected by a cache simulation.
///
/// All traffic figures are in bytes; `dram_traffic_bytes` is the quantity
/// every paper figure normalizes to compulsory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total accesses observed.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Read misses that fetched a line from DRAM.
    pub fill_misses: u64,
    /// Write misses (allocated without fetch; see crate docs).
    pub write_alloc_misses: u64,
    /// Misses to never-before-seen lines (compulsory \[22\]).
    pub compulsory_misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Evicted (or end-of-run) lines that were never re-referenced after
    /// fill — the paper's "dead lines" \[18\], \[25\] (Table III).
    pub dead_lines: u64,
    /// Dirty lines written back to DRAM (at eviction or flush).
    pub writebacks: u64,
    /// Total lines ever filled or allocated.
    pub fills: u64,
    /// Line size used, for traffic conversion.
    pub line_bytes: u32,
}

impl CacheStats {
    /// DRAM traffic in bytes: read fills plus write-backs.
    #[must_use]
    pub fn dram_traffic_bytes(&self) -> u64 {
        (self.fill_misses + self.writebacks) * u64::from(self.line_bytes)
    }

    /// Hit rate over all accesses (0 when no accesses).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Fraction of filled lines that died unreferenced (Table III's
    /// "% of dead lines inserted into the cache").
    #[must_use]
    pub fn dead_line_fraction(&self) -> f64 {
        if self.fills == 0 {
            0.0
        } else {
            self.dead_lines as f64 / self.fills as f64
        }
    }

    /// Total misses (read fills + write allocations).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.fill_misses + self.write_alloc_misses
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    /// Monotonic recency stamp; larger = more recently used.
    lru_stamp: u64,
    dirty: bool,
    /// Hits since fill (0 => dead on eviction).
    reuses: u32,
    valid: bool,
}

const EMPTY: Way = Way {
    tag: 0,
    lru_stamp: 0,
    dirty: false,
    reuses: 0,
    valid: false,
};

/// Result of a single [`LruCache::access_detailed`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Byte address of a line evicted to make room (line-aligned), with
    /// its dirty flag — `None` when no eviction occurred.
    pub evicted: Option<(u64, bool)>,
}

/// Set-associative cache with true-LRU replacement.
///
/// Models the A6000 L2 at sector granularity. Feed it [`Access`]es via
/// [`LruCache::access`], then call [`LruCache::finish`] to flush dirty
/// lines and collect the final [`CacheStats`].
#[derive(Debug, Clone)]
pub struct LruCache {
    config: CacheConfig,
    ways: Vec<Way>,
    assoc: usize,
    stats: CacheStats,
    seen_lines: HashSet<u64>,
    clock: u64,
}

impl LruCache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate geometry (see [`CacheConfig::num_lines`]).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let lines = config.num_lines();
        LruCache {
            config,
            ways: vec![EMPTY; lines],
            assoc: config.associativity as usize,
            stats: CacheStats {
                line_bytes: config.line_bytes,
                ..CacheStats::default()
            },
            seen_lines: HashSet::new(),
            clock: 0,
        }
    }

    /// The configured geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Simulates one access; returns `true` on a hit.
    pub fn access(&mut self, access: Access) -> bool {
        self.access_detailed(access).hit
    }

    /// Streams every access of `source` through the cache — the
    /// single-pass consumer of the workspace's replayable trace sources
    /// (nothing is buffered).
    pub fn consume<S: crate::source::TraceSource + ?Sized>(&mut self, source: &S) {
        source.replay(&mut |acc| {
            self.access(acc);
        });
    }

    /// Simulates one access, also reporting any eviction it caused —
    /// needed by multi-level hierarchies to forward write-backs.
    pub fn access_detailed(&mut self, access: Access) -> AccessOutcome {
        self.clock += 1;
        self.stats.accesses += 1;
        let (set, tag) = self.config.set_and_tag(access.addr());
        let base = set * self.assoc;
        let ways = &mut self.ways[base..base + self.assoc];

        // Hit?
        if let Some(way) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru_stamp = self.clock;
            way.reuses += 1;
            way.dirty |= access.is_write();
            self.stats.hits += 1;
            return AccessOutcome {
                hit: true,
                evicted: None,
            };
        }

        // Miss: classify, then find a victim (invalid way or true LRU).
        if self.seen_lines.insert(tag) {
            self.stats.compulsory_misses += 1;
        }
        if access.is_write() {
            self.stats.write_alloc_misses += 1;
        } else {
            self.stats.fill_misses += 1;
        }
        self.stats.fills += 1;

        let mut evicted = None;
        let victim = match ways.iter().position(|w| !w.valid) {
            Some(i) => i,
            None => {
                let i = ways
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.lru_stamp)
                    .expect("associativity > 0")
                    .0;
                self.stats.evictions += 1;
                if ways[i].reuses == 0 {
                    self.stats.dead_lines += 1;
                }
                if ways[i].dirty {
                    self.stats.writebacks += 1;
                }
                evicted = Some((
                    ways[i].tag * u64::from(self.config.line_bytes),
                    ways[i].dirty,
                ));
                i
            }
        };
        ways[victim] = Way {
            tag,
            lru_stamp: self.clock,
            dirty: access.is_write(),
            reuses: 0,
            valid: true,
        };
        AccessOutcome {
            hit: false,
            evicted,
        }
    }

    /// Flushes the cache (write-backs for dirty lines, dead-line
    /// accounting for never-reused residents) and returns the statistics.
    #[must_use]
    pub fn finish(mut self) -> CacheStats {
        for way in &self.ways {
            if way.valid {
                if way.dirty {
                    self.stats.writebacks += 1;
                }
                if way.reuses == 0 {
                    self.stats.dead_lines += 1;
                }
            }
        }
        self.stats
    }

    /// Statistics so far, without flushing.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Line-aligned byte addresses of all currently resident dirty lines
    /// (what a flush would write back) — used by multi-level hierarchies
    /// to forward the final L1 drain into the L2.
    #[must_use]
    pub fn dirty_lines(&self) -> Vec<u64> {
        self.ways
            .iter()
            .filter(|w| w.valid && w.dirty)
            .map(|w| w.tag * u64::from(self.config.line_bytes))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(addr: u64) -> Access {
        Access::read(addr)
    }

    fn write(addr: u64) -> Access {
        Access::write(addr)
    }

    fn tiny() -> LruCache {
        // 2 sets x 2 ways x 32B lines = 128 B.
        LruCache::new(CacheConfig {
            capacity_bytes: 128,
            line_bytes: 32,
            associativity: 2,
        })
    }

    #[test]
    fn hit_on_same_line() {
        let mut c = tiny();
        assert!(!c.access(read(0)));
        assert!(c.access(read(4)));
        assert!(c.access(read(31)));
        let s = c.finish();
        assert_eq!(s.hits, 2);
        assert_eq!(s.fill_misses, 1);
        assert_eq!(s.compulsory_misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines 0, 64, 128 (stride = sets * line = 64).
        c.access(read(0));
        c.access(read(64));
        c.access(read(0)); // 0 now MRU
        c.access(read(128)); // evicts 64
        assert!(c.access(read(0)), "0 must survive");
        assert!(!c.access(read(64)), "64 must have been evicted");
    }

    #[test]
    fn compulsory_vs_capacity_classification() {
        let mut c = tiny();
        c.access(read(0));
        c.access(read(64));
        c.access(read(128)); // evicts 0
        c.access(read(0)); // capacity miss, not compulsory
        let s = c.finish();
        assert_eq!(s.compulsory_misses, 3);
        assert_eq!(s.fill_misses, 4);
    }

    #[test]
    fn dead_lines_counted_on_eviction_and_at_end() {
        let mut c = tiny();
        c.access(read(0)); // never reused
        c.access(read(64)); // reused below
        c.access(read(64));
        c.access(read(128)); // evicts 0 (LRU), 0 is dead
        let s = c.finish();
        // 0 died at eviction; 128 dies at end; 64 was reused.
        assert_eq!(s.dead_lines, 2);
        assert!((s.dead_line_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn writes_allocate_without_fetch_and_write_back() {
        let mut c = tiny();
        c.access(write(0));
        c.access(write(4)); // same line, hit
        let s = c.finish();
        assert_eq!(s.fill_misses, 0, "write miss must not fetch");
        assert_eq!(s.write_alloc_misses, 1);
        assert_eq!(s.writebacks, 1, "dirty line flushed at end");
        assert_eq!(s.dram_traffic_bytes(), 32);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = tiny();
        c.access(write(0));
        c.access(read(64));
        c.access(read(128)); // evicts dirty 0
        let s = c.stats();
        assert_eq!(s.writebacks, 1);
    }

    #[test]
    fn read_then_write_marks_dirty() {
        let mut c = tiny();
        c.access(read(0));
        c.access(write(0)); // hit, marks dirty
        let s = c.finish();
        assert_eq!(s.hits, 1);
        assert_eq!(s.writebacks, 1);
    }

    #[test]
    fn traffic_formula() {
        let mut c = tiny();
        for i in 0..8u64 {
            c.access(read(i * 32));
        }
        let s = c.finish();
        assert_eq!(s.dram_traffic_bytes(), 8 * 32);
        assert_eq!(s.misses(), 8);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn empty_stats_ratios_are_zero_not_nan() {
        // Zero accesses / zero fills (e.g. an empty trace) must yield
        // well-defined ratios, never NaN.
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.dead_line_fraction(), 0.0);
        assert!(s.hit_rate().is_finite());
        assert!(s.dead_line_fraction().is_finite());
        // A cache that saw no accesses finishes to the same empty stats.
        let fresh = tiny().finish();
        assert_eq!(fresh.hit_rate(), 0.0);
        assert_eq!(fresh.dead_line_fraction(), 0.0);
    }

    #[test]
    fn streaming_fits_exactly_in_compulsory() {
        // Sequential sweep over 1 KiB with a 128 B cache: every line
        // fetched exactly once -> traffic == compulsory.
        let mut c = tiny();
        for addr in (0..1024u64).step_by(4) {
            c.access(read(addr));
        }
        let s = c.finish();
        assert_eq!(s.fill_misses, 32);
        assert_eq!(s.compulsory_misses, 32);
        assert_eq!(s.hits, 256 - 32);
    }
}
