use commorder_sparse::{CsrMatrix, SparseError};

use crate::generators::undirected_csr;
use crate::rng::Rng;

/// Near-degree-2 chain graph with occasional branches and cross links.
///
/// Stands in for protein k-mer / DNA assembly graphs (SuiteSparse's
/// `kmer_*` family): the paper's corpus includes matrices with average
/// degree as low as 2. Long unbranched paths dominate, with sparse
/// branch points (repeats) and rare cross-chain links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KmerChain {
    /// Number of vertices.
    pub n: u32,
    /// Number of independent chains the vertices are divided into.
    pub chains: u32,
    /// Probability per vertex of an extra branch edge to a nearby vertex.
    pub branch_p: f64,
    /// Probability per vertex of a random cross-chain link.
    pub cross_p: f64,
    /// Shuffle vertex IDs after generation.
    pub scramble_ids: bool,
}

impl KmerChain {
    /// Generates the graph.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the sparse layer.
    ///
    /// # Panics
    ///
    /// Panics if `chains == 0` or `chains > n`.
    pub fn generate(&self, seed: u64) -> Result<CsrMatrix, SparseError> {
        assert!(self.chains > 0, "need at least one chain");
        assert!(self.chains <= self.n, "more chains than vertices");
        let mut rng = Rng::new(seed);
        let chain_len = self.n / self.chains;
        let mut edges = Vec::with_capacity(self.n as usize + 16);
        for u in 0..self.n {
            let chain = u / chain_len.max(1);
            let pos = u % chain_len.max(1);
            // Path edge to successor within the chain.
            if pos + 1 < chain_len && u + 1 < self.n {
                edges.push((u, u + 1));
            }
            if self.branch_p > 0.0 && rng.gen_bool(self.branch_p) {
                // Branch: connect to a vertex a short hop ahead in the chain.
                let hop = 2 + rng.gen_u32(8);
                let v = u.saturating_add(hop).min(self.n - 1);
                let same_chain = v / chain_len.max(1) == chain;
                if v != u && same_chain {
                    edges.push((u, v));
                }
            }
            if self.cross_p > 0.0 && rng.gen_bool(self.cross_p) {
                let v = rng.gen_u32(self.n);
                if v != u {
                    edges.push((u, v));
                }
            }
        }
        if self.scramble_ids {
            let mut relabel: Vec<u32> = (0..self.n).collect();
            rng.shuffle(&mut relabel);
            for e in &mut edges {
                e.0 = relabel[e.0 as usize];
                e.1 = relabel[e.1 as usize];
            }
        }
        undirected_csr(self.n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_well_formed;
    use commorder_sparse::stats::DegreeStats;

    #[test]
    fn average_degree_is_near_two() {
        let g = KmerChain {
            n: 5000,
            chains: 10,
            branch_p: 0.05,
            cross_p: 0.01,
            scramble_ids: false,
        }
        .generate(1)
        .unwrap();
        assert_well_formed(&g);
        let s = DegreeStats::from_degrees(&g.out_degrees());
        assert!((1.8..=2.6).contains(&s.mean), "mean degree = {}", s.mean);
        assert!(s.max <= 10);
    }

    #[test]
    fn pure_chains_have_degree_at_most_two() {
        let g = KmerChain {
            n: 1000,
            chains: 4,
            branch_p: 0.0,
            cross_p: 0.0,
            scramble_ids: false,
        }
        .generate(2)
        .unwrap();
        let s = DegreeStats::from_degrees(&g.out_degrees());
        assert_eq!(s.max, 2);
        // Chain breaks leave 2 endpoints per chain at degree 1.
        let (comp, count) = commorder_sparse::ops::connected_components(&g).unwrap();
        assert_eq!(count, 4);
        assert_eq!(comp.len(), 1000);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = KmerChain {
            n: 600,
            chains: 3,
            branch_p: 0.1,
            cross_p: 0.05,
            scramble_ids: true,
        };
        assert_eq!(cfg.generate(7).unwrap(), cfg.generate(7).unwrap());
        assert_ne!(cfg.generate(7).unwrap(), cfg.generate(8).unwrap());
    }
}
