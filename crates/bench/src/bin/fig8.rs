//! **Figure 8**: headroom analysis — SpMV DRAM traffic under the real
//! LRU L2 versus an idealized L2 with Belady's optimal replacement, per
//! reordering technique. The paper finds the LRU↔Belady gap smallest for
//! RABBIT++ (7.6%), evidence that RABBIT++ is close to the best
//! achievable locality.

use commorder::prelude::*;
use commorder_bench::{figure2_techniques, parallel_map, Harness};

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let cases = harness.load();
    let lru = Pipeline::new(harness.gpu);
    let opt = Pipeline::new(harness.gpu).with_policy(ReplacementPolicy::Belady);

    let mut techniques = figure2_techniques(harness.random_seed);
    techniques.push(Box::new(RabbitPlusPlus::new()));

    let mut table = Table::new(
        "Fig. 8: mean SpMV traffic (normalized to compulsory), LRU vs Belady",
        vec![
            "technique".into(),
            "LRU".into(),
            "Belady".into(),
            "gap".into(),
        ],
    );
    for technique in &techniques {
        eprintln!("[fig8] {}", technique.name());
        let pairs: Vec<(f64, f64)> = parallel_map(&cases, |case| {
            let perm = technique
                .reorder(&case.matrix)
                .expect("square corpus matrix");
            let reordered = case.matrix.permute_symmetric(&perm).expect("validated");
            (
                lru.simulate(&reordered).traffic_ratio,
                opt.simulate(&reordered).traffic_ratio,
            )
        });
        let lru_ratios: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let opt_ratios: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let l = arith_mean_ratio(&lru_ratios).unwrap_or(f64::NAN);
        let o = arith_mean_ratio(&opt_ratios).unwrap_or(f64::NAN);
        table.add_row(vec![
            technique.name().to_string(),
            Table::ratio(l),
            Table::ratio(o),
            Table::percent(l / o - 1.0),
        ]);
    }
    println!("{table}");
    println!(
        "Paper shape: Belady <= LRU everywhere; the gap is smallest for RABBIT++ (7.6%), \
         so RABBIT++ already extracts most of the achievable locality"
    );
}
