//! Fixture registry: one used metric, one orphan, one span.

/// How a metric aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic sum.
    Counter,
    /// Last write wins.
    Gauge,
    /// Distribution of observations.
    Histogram,
}

/// One metric row.
pub struct MetricInfo {
    /// Stable name.
    pub name: &'static str,
    /// Aggregation kind.
    pub kind: MetricKind,
}

/// One span row.
pub struct SpanInfo {
    /// Stable name.
    pub name: &'static str,
}

/// Declared metrics, in name order.
pub const METRICS: &[MetricInfo] = &[
    MetricInfo {
        name: "fixture.hits",
        kind: MetricKind::Counter,
    },
    MetricInfo {
        name: "fixture.lat",
        kind: MetricKind::Histogram,
    },
    MetricInfo {
        name: "fixture.orphan",
        kind: MetricKind::Gauge,
    },
];

/// Declared spans, in name order.
pub const SPANS: &[SpanInfo] = &[SpanInfo {
    name: "fixture.run",
}];
