//! Recursive graph-bisection ordering — the graph-partitioning family
//! (METIS \[24\] / GraphGrind \[39\]) the paper expects its insights to
//! extend to (§VII).
//!
//! Each vertex set is split into two halves by BFS level sets grown from
//! a pseudo-peripheral seed (a classic geometric bisection heuristic);
//! halves are ordered recursively and concatenated, so every recursion
//! level yields contiguous, roughly edge-separated blocks — a
//! partitioning analogue of RABBIT's hierarchical community ranges.

use std::collections::VecDeque;

use commorder_sparse::{ops, CsrMatrix, Permutation, SparseError};

use crate::Reordering;

/// Recursive-bisection reordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bisection {
    /// Stop recursing below this block size (vertices); the block keeps
    /// BFS discovery order, which is already local.
    pub leaf_size: u32,
}

impl Default for Bisection {
    fn default() -> Self {
        Bisection { leaf_size: 64 }
    }
}

impl Bisection {
    /// BFS over `members` (restricted to the member set), one component
    /// at a time in member order; returns members in visit order. Flags
    /// in `in_set` are set on entry and cleared again by the walks.
    fn bfs_order(sym: &CsrMatrix, members: &[u32], in_set: &mut [bool]) -> Vec<u32> {
        for &v in members {
            in_set[v as usize] = true;
        }
        let mut order = Vec::with_capacity(members.len());
        for &seed in members {
            if in_set[seed as usize] {
                let _ = Self::bfs_collect(sym, seed, in_set, &mut order);
            }
        }
        debug_assert_eq!(order.len(), members.len());
        order
    }

    /// BFS from `start` over vertices flagged in `in_set`; visited
    /// vertices are *cleared* from `in_set` and pushed to `out`.
    /// Returns the last-visited (farthest) vertex.
    fn bfs_collect(sym: &CsrMatrix, start: u32, in_set: &mut [bool], out: &mut Vec<u32>) -> u32 {
        if !in_set[start as usize] {
            return start;
        }
        let mut queue = VecDeque::from([start]);
        in_set[start as usize] = false;
        out.push(start);
        let mut last = start;
        while let Some(v) = queue.pop_front() {
            last = v;
            let (cols, _) = sym.row(v);
            for &c in cols {
                if in_set[c as usize] {
                    in_set[c as usize] = false;
                    out.push(c);
                    queue.push_back(c);
                }
            }
        }
        last
    }
}

impl Reordering for Bisection {
    fn name(&self) -> &str {
        "BISECTION"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<Permutation, SparseError> {
        if self.leaf_size == 0 {
            return Err(SparseError::DimensionMismatch {
                expected: "leaf_size >= 1".to_string(),
                found: "leaf_size == 0".to_string(),
            });
        }
        let sym = ops::symmetrize(a)?;
        let n = sym.n_rows();
        let mut order: Vec<u32> = Vec::with_capacity(n as usize);
        let mut in_set = vec![false; n as usize];
        // Explicit work stack of blocks to avoid recursion depth issues.
        let mut stack: Vec<Vec<u32>> = vec![(0..n).collect()];
        while let Some(block) = stack.pop() {
            if block.len() <= self.leaf_size as usize {
                // Leaf: BFS discovery order within the block.
                let ordered = Self::bfs_order(&sym, &block, &mut in_set);
                order.extend(ordered);
                continue;
            }
            // Bisect by BFS level sets: first half of the discovery order
            // vs. the rest (geometric split along the BFS frontier).
            let discovery = Self::bfs_order(&sym, &block, &mut in_set);
            let mid = discovery.len() / 2;
            let (first, second) = discovery.split_at(mid);
            // Process `first` before `second`: push in reverse.
            stack.push(second.to_vec());
            stack.push(first.to_vec());
        }
        debug_assert_eq!(order.len(), n as usize);
        Permutation::from_order(&order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_sparse::stats::mean_index_distance;
    use commorder_synth::generators::{Grid2d, PlantedPartition};

    #[test]
    fn recovers_mesh_locality() {
        let g = Grid2d {
            width: 40,
            height: 40,
            diagonals: false,
            shortcut_p: 0.0,
            scramble_ids: true,
        }
        .generate(81)
        .unwrap();
        let p = Bisection::default().reorder(&g).unwrap();
        let r = g.permute_symmetric(&p).unwrap();
        assert!(
            mean_index_distance(&r) < mean_index_distance(&g) * 0.25,
            "bisection should strongly localize a scrambled mesh: {} -> {}",
            mean_index_distance(&g),
            mean_index_distance(&r)
        );
    }

    #[test]
    fn groups_planted_communities_reasonably() {
        let g = PlantedPartition::uniform(512, 8, 8.0, 0.02)
            .generate(82)
            .unwrap();
        let scramble = crate::RandomOrder::new(4).reorder(&g).unwrap();
        let messy = g.permute_symmetric(&scramble).unwrap();
        let p = Bisection::default().reorder(&messy).unwrap();
        let r = messy.permute_symmetric(&p).unwrap();
        assert!(mean_index_distance(&r) < mean_index_distance(&messy) * 0.6);
    }

    #[test]
    fn valid_on_disconnected_graphs() {
        let g = CsrMatrix::empty(100);
        let p = Bisection::default().reorder(&g).unwrap();
        assert_eq!(p.len(), 100);
    }

    #[test]
    fn rejects_zero_leaf() {
        assert!(Bisection { leaf_size: 0 }
            .reorder(&CsrMatrix::empty(2))
            .is_err());
    }

    #[test]
    fn deterministic() {
        let g = PlantedPartition::uniform(256, 8, 6.0, 0.1)
            .generate(83)
            .unwrap();
        assert_eq!(
            Bisection::default().reorder(&g).unwrap(),
            Bisection::default().reorder(&g).unwrap()
        );
    }
}
