//! The aggregating in-memory registry sink: span statistics by path,
//! counter/gauge totals, power-of-two histograms, and the
//! human-readable phase-tree summary behind `commorder-cli profile`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, PoisonError};

use crate::event::Event;
use crate::names;
use crate::sink::Sink;

/// Aggregate timing of one span path (or one `(path, detail)` instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Completed spans recorded.
    pub count: u64,
    /// Summed duration in nanoseconds.
    pub total_ns: u64,
    /// Fastest single span.
    pub min_ns: u64,
    /// Slowest single span.
    pub max_ns: u64,
}

impl SpanStat {
    fn add(&mut self, dur_ns: u64) {
        if self.count == 0 {
            self.min_ns = dur_ns;
            self.max_ns = dur_ns;
        } else {
            self.min_ns = self.min_ns.min(dur_ns);
            self.max_ns = self.max_ns.max(dur_ns);
        }
        self.count += 1;
        self.total_ns += dur_ns;
    }
}

/// Power-of-two bucketed distribution of `observe` values (bucket `i`
/// counts observations with `floor(log2(value_ns)) == i`).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Bucket counts (index = `floor(log2(value_ns))`, clamped).
    pub buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; 64],
        }
    }
}

impl Histogram {
    fn add(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let ns = (value * 1e9).max(0.0);
        let bucket = if ns < 1.0 {
            0
        } else {
            (ns.log2() as usize).min(63)
        };
        self.buckets[bucket] += 1;
    }

    /// Mean observation (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    spans: BTreeMap<String, SpanStat>,
    detailed: BTreeMap<(String, String), SpanStat>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// Aggregating sink: keeps totals instead of a stream.
///
/// Install alongside a [`crate::JsonlSink`] (or alone) and read it back
/// after the run via [`Registry::render_tree`], [`Registry::hottest`],
/// and the metric accessors.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Aggregate statistics for an exact span path (`a/b/c`).
    #[must_use]
    pub fn span(&self, path: &str) -> Option<SpanStat> {
        self.lock().spans.get(path).copied()
    }

    /// All span paths with their statistics, in path order.
    #[must_use]
    pub fn spans(&self) -> Vec<(String, SpanStat)> {
        self.lock()
            .spans
            .iter()
            .map(|(p, s)| (p.clone(), *s))
            .collect()
    }

    /// Current value of a counter (0 when never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Last sampled value of a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Snapshot of a histogram.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// The `k` slowest span instances (by summed duration) among spans
    /// named `name` that carried a detail label — e.g. the hottest
    /// (matrix, technique) grid cells. Ties break by label so the order
    /// is stable.
    #[must_use]
    pub fn hottest(&self, name: &str, k: usize) -> Vec<(String, SpanStat)> {
        let inner = self.lock();
        let mut rows: Vec<(String, SpanStat)> = inner
            .detailed
            .iter()
            .filter(|((path, _), _)| path.rsplit('/').next() == Some(name))
            .map(|((_, detail), stat)| (detail.clone(), *stat))
            .collect();
        rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(&b.0)));
        rows.truncate(k);
        rows
    }

    /// Renders the aggregated spans as an indented phase tree, children
    /// sorted by total time (descending) with a percent-of-parent
    /// column, followed by the counter/gauge/histogram summaries.
    #[must_use]
    pub fn render_tree(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        out.push_str("phase tree (by span path; % of parent)\n");
        let paths: Vec<(&String, &SpanStat)> = inner.spans.iter().collect();
        let roots: Vec<&String> = paths
            .iter()
            .map(|(p, _)| *p)
            .filter(|p| !p.contains('/'))
            .collect();
        let root_total: u64 = roots
            .iter()
            .filter_map(|p| inner.spans.get(*p))
            .map(|s| s.total_ns)
            .sum();
        let mut ordered_roots = roots;
        ordered_roots.sort_by(|a, b| {
            let ta = inner.spans[*a].total_ns;
            let tb = inner.spans[*b].total_ns;
            tb.cmp(&ta).then(a.cmp(b))
        });
        for root in ordered_roots {
            render_subtree(&mut out, &inner.spans, root, root_total, 0);
        }
        if !inner.counters.is_empty() {
            out.push_str("counters\n");
            for (name, value) in &inner.counters {
                let _ = writeln!(out, "  {name:<32} {value}");
            }
        }
        if !inner.gauges.is_empty() {
            out.push_str("gauges\n");
            for (name, value) in &inner.gauges {
                let _ = writeln!(out, "  {name:<32} {value:.4}");
            }
        }
        if !inner.histograms.is_empty() {
            out.push_str("histograms\n");
            for (name, h) in &inner.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<32} n={} mean={} min={} max={}",
                    h.count,
                    fmt_seconds(h.mean()),
                    fmt_seconds(if h.count == 0 { 0.0 } else { h.min }),
                    fmt_seconds(if h.count == 0 { 0.0 } else { h.max }),
                );
            }
        }
        out
    }
}

fn render_subtree(
    out: &mut String,
    spans: &BTreeMap<String, SpanStat>,
    path: &str,
    parent_total: u64,
    level: usize,
) {
    let Some(stat) = spans.get(path) else { return };
    let name = path.rsplit('/').next().unwrap_or(path);
    let percent = if parent_total > 0 {
        100.0 * stat.total_ns as f64 / parent_total as f64
    } else {
        100.0
    };
    let indent = "  ".repeat(level);
    let label = format!("{indent}{name}");
    let _ = writeln!(
        out,
        "  {label:<34} {:>6}x {:>10} {percent:5.1}%",
        stat.count,
        fmt_ns(stat.total_ns),
    );
    // Direct children: paths extending `path` by exactly one segment.
    let prefix = format!("{path}/");
    let mut children: Vec<&String> = spans
        .range(prefix.clone()..)
        .take_while(|(p, _)| p.starts_with(&prefix))
        .map(|(p, _)| p)
        .filter(|p| !p[prefix.len()..].contains('/'))
        .collect();
    children.sort_by(|a, b| spans[*b].total_ns.cmp(&spans[*a].total_ns).then(a.cmp(b)));
    for child in children {
        render_subtree(out, spans, child, stat.total_ns, level + 1);
    }
}

/// Adaptive duration formatting for nanosecond totals.
#[must_use]
pub fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    fmt_seconds(s)
}

/// Adaptive duration formatting for seconds.
#[must_use]
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

impl Sink for Registry {
    fn record(&self, event: &Event) {
        let mut inner = self.lock();
        match event {
            Event::Meta { .. } => {}
            Event::Span {
                path,
                detail,
                dur_ns,
                ..
            } => {
                inner.spans.entry(path.clone()).or_default().add(*dur_ns);
                if let Some(detail) = detail {
                    inner
                        .detailed
                        .entry((path.clone(), detail.clone()))
                        .or_default()
                        .add(*dur_ns);
                }
            }
            Event::Counter { name, delta } => {
                *inner.counters.entry(name).or_insert(0) += delta;
            }
            Event::Gauge { name, value } => {
                inner.gauges.insert(name, *value);
            }
            Event::Observe { name, value } => {
                inner.histograms.entry(name).or_default().add(*value);
            }
        }
        // Every name reaching a registry should be declared; aggregation
        // still proceeds for unknown names (the CHK validators flag them).
        debug_assert!(
            match event {
                Event::Counter { name, .. }
                | Event::Gauge { name, .. }
                | Event::Observe { name, .. } => names::lookup(name).is_some(),
                _ => true,
            },
            "undeclared metric: {event:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(path: &str, detail: Option<&str>, dur_ns: u64) -> Event {
        Event::Span {
            thread: 0,
            depth: path.matches('/').count() as u64,
            path: path.to_string(),
            name: "test",
            detail: detail.map(ToString::to_string),
            start_ns: 0,
            dur_ns,
        }
    }

    #[test]
    fn spans_aggregate_by_path() {
        let r = Registry::new();
        r.record(&span("job", None, 10));
        r.record(&span("job", None, 30));
        r.record(&span("job/reorder", None, 5));
        let s = r.span("job").expect("path recorded");
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 40);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 30);
        assert_eq!(r.spans().len(), 2);
    }

    #[test]
    fn counters_gauges_histograms() {
        let r = Registry::new();
        r.record(&Event::Counter {
            name: "exec.jobs",
            delta: 2,
        });
        r.record(&Event::Counter {
            name: "exec.jobs",
            delta: 3,
        });
        r.record(&Event::Gauge {
            name: "exec.utilization",
            value: 0.5,
        });
        r.record(&Event::Observe {
            name: "exec.queue_wait_seconds",
            value: 0.001,
        });
        r.record(&Event::Observe {
            name: "exec.queue_wait_seconds",
            value: 0.003,
        });
        assert_eq!(r.counter("exec.jobs"), 5);
        assert_eq!(r.counter("exec.steals"), 0);
        assert_eq!(r.gauge("exec.utilization"), Some(0.5));
        let h = r.histogram("exec.queue_wait_seconds").expect("observed");
        assert_eq!(h.count, 2);
        assert!((h.mean() - 0.002).abs() < 1e-12);
        assert_eq!(h.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn hottest_ranks_detailed_instances() {
        let r = Registry::new();
        r.record(&span("job/grid.cell", Some("a/RABBIT"), 10));
        r.record(&span("job/grid.cell", Some("b/RCM"), 90));
        r.record(&span("job/grid.cell", Some("a/RABBIT"), 20));
        let top = r.hottest("grid.cell", 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, "b/RCM");
        assert_eq!(top[0].1.total_ns, 90);
        assert_eq!(top[1].0, "a/RABBIT");
        assert_eq!(top[1].1.total_ns, 30);
        assert!(r.hottest("nope", 5).is_empty());
    }

    #[test]
    fn tree_renders_nested_phases() {
        let r = Registry::new();
        r.record(&span("run", None, 100));
        r.record(&span("run/fast", None, 20));
        r.record(&span("run/slow", None, 80));
        r.record(&span("run/slow/inner", None, 40));
        let tree = r.render_tree();
        let slow = tree.find("slow").expect("slow phase listed");
        let fast = tree.find("fast").expect("fast phase listed");
        assert!(slow < fast, "children sorted by total time:\n{tree}");
        assert!(tree.contains("inner"));
        assert!(tree.contains("80.0%"), "{tree}");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_ns(1_500_000_000), "1.500s");
        assert_eq!(fmt_ns(2_500_000), "2.500ms");
        assert_eq!(fmt_ns(900), "0.9us");
    }
}
