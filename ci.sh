#!/usr/bin/env bash
# Workspace CI gate. Everything here runs offline: no registry
# dependencies, no network. Mirrored by .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== xtask lint (offline static analysis)"
cargo run -q -p xtask -- lint

echo "== clippy (workspace deny-list)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "== tier-1: build + test"
cargo build --release -q
cargo test -q --workspace

echo "== strict-checks feature"
cargo test -q -p commorder-sparse -p commorder-cachesim -p commorder \
  --features commorder-sparse/strict-checks,commorder-cachesim/strict-checks,commorder/strict-checks

echo "ci: all gates passed"
