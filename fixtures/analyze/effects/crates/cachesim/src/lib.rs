//! Fixture: interprocedural effect inference — every effect source
//! sits one call away from its seed, so the lexical passes stay
//! silent and only the propagated `XT10xx` rules fire.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod render;
pub mod sim;
pub mod store;
