//! The unified bench report model behind `xtask bench`.
//!
//! Every bench run produces one [`BenchReport`] per bench (`analyze`,
//! `reorder`, `pipeline`) and [`BenchReport::render_json`] writes it as
//! a `BENCH_<name>.json` artifact at the repository root using the
//! line-oriented `commorder-bench.v2` framing that
//! `commorder-check::bench` freezes: header lines, a one-line machine
//! object, then sorted `fingerprints` and `metrics` arrays with one
//! object per line. The framing is deliberately rigid so CI can
//! validate artifacts byte-by-byte (`CHK1201`/`CHK1202`) and so
//! `git diff` over committed artifacts stays line-per-fact readable.
//!
//! [`BenchReport::parse`] reads v2 artifacts back and also accepts the
//! two retired v1 schemas (`bench-analyze.v1`, `bench-reorder.v1`) for
//! one release, mapping their flat keys onto the v2 metric names so
//! `--compare` can gate against a baseline captured before the
//! migration. [`compare`] implements the tolerance-banded regression
//! gate: throughput metrics may not drop, cost metrics may not grow,
//! and result fingerprints may not drift at all.

use std::fmt::Write as _;

/// Schema discriminator written on line 2 of every v2 artifact.
pub const SCHEMA_V2: &str = "commorder-bench.v2";

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over a byte slice; the workspace-standard result fingerprint.
#[must_use]
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a over a `u32` slice (little-endian), used to fingerprint
/// permutations without materialising a byte buffer.
#[must_use]
pub fn fnv1a_u32s(values: &[u32]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &v in values {
        for b in v.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

/// FNV-1a over a `u64` slice (little-endian), used to fingerprint
/// cache-simulation counter vectors.
#[must_use]
pub fn fnv1a_u64s(values: &[u64]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &v in values {
        for b in v.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

/// One measured quantity: a named scalar with a unit and a direction.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Dotted metric name, e.g. `reorder.boba.t8.medges_per_second`.
    pub name: String,
    /// The measured value; must be finite.
    pub value: f64,
    /// Unit label, e.g. `seconds` or `Medges/s`; must be non-empty.
    pub unit: String,
    /// `true` for throughputs (a drop is a regression), `false` for
    /// costs such as wall time or peak RSS (a rise is a regression).
    pub higher_is_better: bool,
}

/// One result fingerprint: an FNV-1a hash of a deterministic output,
/// compared exactly (any drift is a correctness failure, not noise).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// Dotted fingerprint name, e.g. `permutation.rabbit`.
    pub name: String,
    /// The 64-bit FNV-1a value.
    pub value: u64,
}

/// Identity of the machine a bench ran on; recorded so `--compare` can
/// warn when two artifacts were captured on different hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    /// CPU model string (from `/proc/cpuinfo`), or `"unknown"`.
    pub cpu: String,
    /// Available hardware parallelism; at least 1.
    pub threads: u64,
    /// Total system memory in kB (from `/proc/meminfo`); at least 1.
    pub mem_total_kb: u64,
}

impl Machine {
    /// Probes the current machine; every field degrades to a benign
    /// placeholder when `/proc` is unavailable.
    #[must_use]
    pub fn detect() -> Self {
        let cpu = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|s| {
                s.lines().find_map(|l| {
                    l.strip_prefix("model name")
                        .map(|r| r.trim_start_matches([' ', '\t', ':']).trim().to_string())
                })
            })
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        let threads = std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1);
        let mem_total_kb = std::fs::read_to_string("/proc/meminfo")
            .ok()
            .and_then(|s| {
                s.lines().find_map(|l| {
                    l.strip_prefix("MemTotal:")
                        .and_then(|r| r.trim().trim_end_matches("kB").trim().parse::<u64>().ok())
                })
            })
            .unwrap_or(0)
            .max(1);
        Machine {
            cpu,
            threads,
            mem_total_kb,
        }
    }

    /// Placeholder identity used when re-reading a v1 artifact, which
    /// carried no machine record. Never triggers a hardware-drift
    /// warning in [`compare`].
    #[must_use]
    pub fn unknown() -> Self {
        Machine {
            cpu: "unknown".to_string(),
            threads: 1,
            mem_total_kb: 1,
        }
    }

    /// FNV-1a over the identity fields; two runs on the same hardware
    /// configuration produce the same fingerprint.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = self.cpu.clone().into_bytes();
        bytes.extend_from_slice(&self.threads.to_le_bytes());
        bytes.extend_from_slice(&self.mem_total_kb.to_le_bytes());
        fnv1a_bytes(&bytes)
    }
}

/// One bench's full result set: identity plus sorted fingerprint and
/// metric rows.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Bench name (`analyze`, `reorder`, `pipeline`).
    pub bench: String,
    /// Machine the run was captured on.
    pub machine: Machine,
    /// Result fingerprints, compared exactly by [`compare`].
    pub fingerprints: Vec<Fingerprint>,
    /// Measured metrics, compared within a tolerance band.
    pub metrics: Vec<Metric>,
}

/// Escapes `"` and `\` for embedding in a JSON string literal; the
/// only two characters a CPU model line can realistically smuggle in.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl BenchReport {
    /// Creates an empty report for `bench` on the detected machine.
    #[must_use]
    pub fn new(bench: &str) -> Self {
        BenchReport {
            bench: bench.to_string(),
            machine: Machine::detect(),
            fingerprints: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Appends a metric row (sorted at render time).
    pub fn metric(&mut self, name: &str, value: f64, unit: &str, higher_is_better: bool) {
        self.metrics.push(Metric {
            name: name.to_string(),
            value: if value.is_finite() { value } else { 0.0 },
            unit: unit.to_string(),
            higher_is_better,
        });
    }

    /// Appends a fingerprint row (sorted at render time).
    pub fn fingerprint(&mut self, name: &str, value: u64) {
        self.fingerprints.push(Fingerprint {
            name: name.to_string(),
            value,
        });
    }

    /// Renders the exact `commorder-bench.v2` framing the check layer
    /// validates: rows sorted by name, one object per line, trailing
    /// comma on every row but the last.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut fingerprints = self.fingerprints.clone();
        fingerprints.sort_by(|a, b| a.name.cmp(&b.name));
        let mut metrics = self.metrics.clone();
        metrics.sort_by(|a, b| a.name.cmp(&b.name));

        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA_V2}\",");
        let _ = writeln!(out, "  \"bench\": \"{}\",", escape(&self.bench));
        let _ = writeln!(
            out,
            "  \"machine\": {{\"cpu\":\"{}\",\"threads\":{},\"mem_total_kb\":{},\"fingerprint\":\"{:016x}\"}},",
            escape(&self.machine.cpu),
            self.machine.threads,
            self.machine.mem_total_kb,
            self.machine.fingerprint(),
        );
        if fingerprints.is_empty() {
            out.push_str("  \"fingerprints\": [],\n");
        } else {
            out.push_str("  \"fingerprints\": [\n");
            for (i, fp) in fingerprints.iter().enumerate() {
                let comma = if i + 1 < fingerprints.len() { "," } else { "" };
                let _ = writeln!(
                    out,
                    "    {{\"name\":\"{}\",\"value\":\"{:016x}\"}}{comma}",
                    escape(&fp.name),
                    fp.value,
                );
            }
            out.push_str("  ],\n");
        }
        out.push_str("  \"metrics\": [\n");
        for (i, m) in metrics.iter().enumerate() {
            let comma = if i + 1 < metrics.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\":\"{}\",\"value\":{},\"unit\":\"{}\",\"higher_is_better\":{}}}{comma}",
                escape(&m.name),
                m.value,
                escape(&m.unit),
                m.higher_is_better,
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses an artifact in any supported schema: `commorder-bench.v2`
    /// natively, plus the retired `bench-analyze.v1` and
    /// `bench-reorder.v1` flat formats (kept for one release so a
    /// pre-migration baseline still gates).
    pub fn parse(contents: &str) -> Result<Self, String> {
        let schema = contents
            .lines()
            .find_map(|l| str_field(l, "schema"))
            .ok_or_else(|| "artifact declares no \"schema\" field".to_string())?;
        match schema.as_str() {
            SCHEMA_V2 => parse_v2(contents),
            "bench-analyze.v1" => parse_v1_analyze(contents),
            "bench-reorder.v1" => parse_v1_reorder(contents),
            other => Err(format!("unsupported bench schema {other:?}")),
        }
    }
}

/// Extracts the string value of `"key": "..."` (or `"key":"..."`) from
/// one line; stops at the first closing quote, which is fine for the
/// identifiers and hex digests these artifacts carry.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let idx = line.find(&pat)?;
    let rest = line[idx + pat.len()..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Extracts the numeric value of `"key": N` from one line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let idx = line.find(&pat)?;
    let rest = line[idx + pat.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '+' | '-' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the boolean value of `"key": true|false` from one line.
fn bool_field(line: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\":");
    let idx = line.find(&pat)?;
    let rest = line[idx + pat.len()..].trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Parses a 16-digit hex fingerprint string field.
fn hex_field(line: &str, key: &str) -> Option<u64> {
    u64::from_str_radix(&str_field(line, key)?, 16).ok()
}

fn parse_v2(contents: &str) -> Result<BenchReport, String> {
    let mut bench = None;
    let mut machine = None;
    let mut fingerprints = Vec::new();
    let mut metrics = Vec::new();
    #[derive(PartialEq)]
    enum Section {
        Head,
        Fingerprints,
        Metrics,
    }
    let mut section = Section::Head;
    for (no, raw) in contents.lines().enumerate() {
        let line = raw.trim();
        match section {
            Section::Head => {
                if line.starts_with("\"bench\":") {
                    bench = str_field(line, "bench");
                } else if line.starts_with("\"machine\":") {
                    machine = Some(Machine {
                        cpu: str_field(line, "cpu")
                            .ok_or(format!("line {}: machine has no cpu", no + 1))?,
                        threads: num_field(line, "threads").unwrap_or(1.0) as u64,
                        mem_total_kb: num_field(line, "mem_total_kb").unwrap_or(1.0) as u64,
                    });
                } else if line.starts_with("\"fingerprints\": [") {
                    if !line.ends_with("[],") {
                        section = Section::Fingerprints;
                    }
                } else if line.starts_with("\"metrics\": [") {
                    section = Section::Metrics;
                }
            }
            Section::Fingerprints => {
                if line.starts_with(']') {
                    section = Section::Head;
                } else {
                    fingerprints.push(Fingerprint {
                        name: str_field(line, "name")
                            .ok_or(format!("line {}: fingerprint row has no name", no + 1))?,
                        value: hex_field(line, "value")
                            .ok_or(format!("line {}: fingerprint row has no value", no + 1))?,
                    });
                }
            }
            Section::Metrics => {
                if line.starts_with(']') {
                    section = Section::Head;
                } else {
                    metrics.push(Metric {
                        name: str_field(line, "name")
                            .ok_or(format!("line {}: metric row has no name", no + 1))?,
                        value: num_field(line, "value")
                            .ok_or(format!("line {}: metric row has no value", no + 1))?,
                        unit: str_field(line, "unit")
                            .ok_or(format!("line {}: metric row has no unit", no + 1))?,
                        higher_is_better: bool_field(line, "higher_is_better").ok_or(format!(
                            "line {}: metric row has no higher_is_better",
                            no + 1
                        ))?,
                    });
                }
            }
        }
    }
    Ok(BenchReport {
        bench: bench.ok_or("artifact has no bench name")?,
        machine: machine.ok_or("artifact has no machine line")?,
        fingerprints,
        metrics,
    })
}

/// Maps the retired `bench-analyze.v1` flat keys onto the v2 metric
/// names `xtask bench` emits today, so old and new artifacts compare
/// directly.
fn parse_v1_analyze(contents: &str) -> Result<BenchReport, String> {
    let mut report = BenchReport {
        bench: "analyze".to_string(),
        machine: Machine::unknown(),
        fingerprints: Vec::new(),
        metrics: Vec::new(),
    };
    for line in contents.lines() {
        if let Some(v) = num_field(line, "tokens_per_second") {
            report.metric("analyze.lex_tokens_per_second", v, "tokens/s", true);
        }
        if let Some(v) = num_field(line, "selfhost_seconds") {
            report.metric("analyze.selfhost_seconds", v, "seconds", false);
        }
    }
    if report.metrics.is_empty() {
        return Err("v1 analyze artifact carries no recognised metrics".to_string());
    }
    Ok(report)
}

/// Maps the retired `bench-reorder.v1` nested format onto v2 names:
/// per-technique permutation fingerprints, per-thread throughput and
/// peak-RSS metrics, and the widest-vs-serial speedup.
fn parse_v1_reorder(contents: &str) -> Result<BenchReport, String> {
    let mut report = BenchReport {
        bench: "reorder".to_string(),
        machine: Machine::unknown(),
        fingerprints: Vec::new(),
        metrics: Vec::new(),
    };
    let mut tech = String::new();
    for line in contents.lines() {
        if let Some(v) = num_field(line, "generate_seconds") {
            report.metric("reorder.generate_seconds", v, "seconds", false);
        }
        if let Some(hash) = hex_field(line, "permutation_fnv1a") {
            tech = str_field(line, "name")
                .ok_or("technique block has no name")?
                .to_lowercase();
            report.fingerprint(&format!("permutation.{tech}"), hash);
        }
        if let Some(v) = num_field(line, "speedup_widest_vs_serial") {
            report.metric(
                &format!("reorder.{tech}.speedup_widest_vs_serial"),
                v,
                "ratio",
                true,
            );
        }
        if let (Some(threads), Some(medges)) = (
            num_field(line, "threads"),
            num_field(line, "medges_per_second"),
        ) {
            let t = threads as u64;
            report.metric(
                &format!("reorder.{tech}.t{t}.medges_per_second"),
                medges,
                "Medges/s",
                true,
            );
            if let Some(rss) = num_field(line, "peak_rss_kb") {
                report.metric(
                    &format!("reorder.{tech}.t{t}.peak_rss_kb"),
                    rss,
                    "kB",
                    false,
                );
            }
        }
    }
    if report.fingerprints.is_empty() {
        return Err("v1 reorder artifact carries no technique blocks".to_string());
    }
    Ok(report)
}

/// Outcome of comparing a new bench report against a baseline.
#[derive(Debug, Default)]
pub struct CompareOutcome {
    /// Hard failures: tolerance-band breaches, fingerprint drift, or
    /// metrics that disappeared. Any entry fails the gate.
    pub regressions: Vec<String>,
    /// Soft notices: hardware drift, unit changes, new metrics.
    pub warnings: Vec<String>,
}

impl CompareOutcome {
    /// `true` when the gate passes (warnings do not fail it).
    #[must_use]
    pub fn is_pass(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares `new` against the `old` baseline with a relative
/// `tolerance` band (e.g. `0.30` allows 30% noise).
///
/// Result fingerprints are compared exactly — drift means the bench
/// computed a *different answer*, which no tolerance excuses. Metrics
/// regress when a throughput falls below `old * (1 - tolerance)` or a
/// cost rises above `old * (1 + tolerance)`. A metric present in the
/// baseline but missing from the new report is a regression (coverage
/// must not silently shrink); the reverse is a warning. Hardware
/// drift (differing machine fingerprints) is a warning because it
/// invalidates the comparison rather than the code.
#[must_use]
pub fn compare(old: &BenchReport, new: &BenchReport, tolerance: f64) -> CompareOutcome {
    let mut out = CompareOutcome::default();
    let bench = &new.bench;
    if old.machine.cpu != "unknown"
        && new.machine.cpu != "unknown"
        && old.machine.fingerprint() != new.machine.fingerprint()
    {
        out.warnings.push(format!(
            "{bench}: machine changed ({} / {} threads -> {} / {} threads); \
             metric deltas may reflect hardware, not code",
            old.machine.cpu, old.machine.threads, new.machine.cpu, new.machine.threads,
        ));
    }
    for fp in &old.fingerprints {
        match new.fingerprints.iter().find(|n| n.name == fp.name) {
            Some(n) if n.value != fp.value => out.regressions.push(format!(
                "{bench}: result fingerprint {} drifted: {:016x} -> {:016x} \
                 (the bench computed a different answer)",
                fp.name, fp.value, n.value,
            )),
            Some(_) => {}
            None => out.warnings.push(format!(
                "{bench}: baseline fingerprint {} is absent from the new report",
                fp.name
            )),
        }
    }
    for m in &old.metrics {
        let Some(n) = new.metrics.iter().find(|n| n.name == m.name) else {
            out.regressions.push(format!(
                "{bench}: metric {} disappeared from the new report",
                m.name
            ));
            continue;
        };
        if n.unit != m.unit {
            out.warnings.push(format!(
                "{bench}: metric {} changed unit ({} -> {}); skipping the band check",
                m.name, m.unit, n.unit
            ));
            continue;
        }
        let regressed = if n.higher_is_better {
            n.value < m.value * (1.0 - tolerance)
        } else {
            n.value > m.value * (1.0 + tolerance)
        };
        if regressed {
            let direction = if n.higher_is_better { "fell" } else { "rose" };
            out.regressions.push(format!(
                "{bench}: metric {} {direction} beyond the {:.0}% band: {} -> {} {}",
                m.name,
                tolerance * 100.0,
                m.value,
                n.value,
                m.unit,
            ));
        }
    }
    for n in &new.metrics {
        if !old.metrics.iter().any(|m| m.name == n.name) {
            out.warnings
                .push(format!("{bench}: new metric {} has no baseline", n.name));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport {
            bench: "pipeline".to_string(),
            machine: Machine {
                cpu: "Test CPU".to_string(),
                threads: 8,
                mem_total_kb: 16_000_000,
            },
            fingerprints: Vec::new(),
            metrics: Vec::new(),
        };
        r.fingerprint("cache.plru", 0xfedc_ba98_7654_3210);
        r.fingerprint("cache.lru", 0x0123_4567_89ab_cdef);
        r.metric("pipeline.suite_wall_seconds", 1.25, "seconds", false);
        r.metric(
            "pipeline.lru_accesses_per_second",
            150_000_000.0,
            "accesses/s",
            true,
        );
        r
    }

    #[test]
    fn render_sorts_rows_and_round_trips() {
        let report = sample();
        let json = report.render_json();
        // Rows must come out sorted regardless of insertion order.
        let lru = json.find("cache.lru").expect("lru fingerprint rendered");
        let plru = json.find("cache.plru").expect("plru fingerprint rendered");
        assert!(lru < plru);
        let parsed = BenchReport::parse(&json).expect("round trip");
        assert_eq!(parsed.bench, "pipeline");
        assert_eq!(parsed.machine.cpu, "Test CPU");
        assert_eq!(parsed.fingerprints.len(), 2);
        assert_eq!(parsed.fingerprints[0].name, "cache.lru");
        assert_eq!(parsed.fingerprints[0].value, 0x0123_4567_89ab_cdef);
        assert_eq!(parsed.metrics.len(), 2);
        assert_eq!(parsed.metrics[0].name, "pipeline.lru_accesses_per_second");
        assert!((parsed.metrics[0].value - 150_000_000.0).abs() < 1e-6);
        assert!(parsed.metrics[0].higher_is_better);
        assert!(!parsed.metrics[1].higher_is_better);
    }

    #[test]
    fn render_handles_empty_fingerprints() {
        let mut report = sample();
        report.fingerprints.clear();
        let json = report.render_json();
        assert!(json.contains("\"fingerprints\": [],"));
        let parsed = BenchReport::parse(&json).expect("round trip");
        assert!(parsed.fingerprints.is_empty());
        assert_eq!(parsed.metrics.len(), 2);
    }

    #[test]
    fn non_finite_metric_values_are_clamped() {
        let mut report = sample();
        report.metric("pipeline.bad", f64::INFINITY, "x/s", true);
        let parsed = BenchReport::parse(&report.render_json()).expect("round trip");
        let bad = parsed
            .metrics
            .iter()
            .find(|m| m.name == "pipeline.bad")
            .expect("clamped metric present");
        assert_eq!(bad.value, 0.0);
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let report = sample();
        let outcome = compare(&report, &report, 0.30);
        assert!(outcome.is_pass(), "{:?}", outcome.regressions);
        assert!(outcome.warnings.is_empty(), "{:?}", outcome.warnings);
    }

    #[test]
    fn tolerance_band_flags_real_regressions_only() {
        let old = sample();
        let mut new = sample();
        // 20% throughput drop sits inside a 30% band.
        new.metrics[1].value = 120_000_000.0;
        assert!(compare(&old, &new, 0.30).is_pass());
        // 50% drop breaches it.
        new.metrics[1].value = 75_000_000.0;
        let outcome = compare(&old, &new, 0.30);
        assert_eq!(outcome.regressions.len(), 1);
        assert!(outcome.regressions[0].contains("fell"));
        // A cost metric regresses upward, not downward.
        let mut slower = sample();
        slower.metrics[0].value = 0.1; // wall time improved: fine
        assert!(compare(&old, &slower, 0.30).is_pass());
        slower.metrics[0].value = 10.0;
        let outcome = compare(&old, &slower, 0.30);
        assert_eq!(outcome.regressions.len(), 1);
        assert!(outcome.regressions[0].contains("rose"));
    }

    #[test]
    fn fingerprint_drift_is_a_hard_failure() {
        let old = sample();
        let mut new = sample();
        new.fingerprints[0].value ^= 1;
        let outcome = compare(&old, &new, 0.30);
        assert_eq!(outcome.regressions.len(), 1);
        assert!(outcome.regressions[0].contains("different answer"));
    }

    #[test]
    fn disappearing_metrics_fail_and_new_metrics_warn() {
        let old = sample();
        let mut new = sample();
        new.metrics.remove(0);
        new.metric("pipeline.fresh", 1.0, "x", true);
        let outcome = compare(&old, &new, 0.30);
        assert_eq!(outcome.regressions.len(), 1);
        assert!(outcome.regressions[0].contains("disappeared"));
        assert!(outcome.warnings.iter().any(|w| w.contains("no baseline")));
    }

    #[test]
    fn machine_drift_warns_without_failing() {
        let old = sample();
        let mut new = sample();
        new.machine.threads = 64;
        let outcome = compare(&old, &new, 0.30);
        assert!(outcome.is_pass());
        assert!(outcome.warnings.iter().any(|w| w.contains("machine")));
        // A v1-derived unknown machine never warns.
        let mut v1 = sample();
        v1.machine = Machine::unknown();
        assert!(compare(&v1, &old, 0.30).warnings.is_empty());
    }

    #[test]
    fn v1_analyze_artifacts_map_onto_v2_names() {
        let v1 = concat!(
            "{\n",
            "  \"schema\": \"bench-analyze.v1\",\n",
            "  \"files\": 120,\n",
            "  \"bytes\": 1048576,\n",
            "  \"tokens\": 400000,\n",
            "  \"lex_seconds\": 0.08,\n",
            "  \"tokens_per_second\": 5000000,\n",
            "  \"selfhost_seconds\": 0.5,\n",
            "  \"findings\": 0\n",
            "}\n",
        );
        let report = BenchReport::parse(v1).expect("v1 analyze parses");
        assert_eq!(report.bench, "analyze");
        assert_eq!(report.machine.cpu, "unknown");
        assert_eq!(report.metrics.len(), 2);
        assert_eq!(report.metrics[0].name, "analyze.lex_tokens_per_second");
        assert!((report.metrics[0].value - 5_000_000.0).abs() < 1e-6);
        assert_eq!(report.metrics[1].name, "analyze.selfhost_seconds");
        assert!(!report.metrics[1].higher_is_better);
    }

    #[test]
    fn v1_reorder_artifacts_map_onto_v2_names() {
        let v1 = concat!(
            "{\n",
            "  \"schema\": \"bench-reorder.v1\",\n",
            "  \"entry\": \"mega-kmer-chain-4m\",\n",
            "  \"rows\": 4000000,\n",
            "  \"nnz\": 12000000,\n",
            "  \"generate_seconds\": 2.5,\n",
            "  \"techniques\": [\n",
            "    {\"name\": \"RABBIT\", \"permutation_fnv1a\": \"0123456789abcdef\", \
             \"speedup_widest_vs_serial\": 3.1, \"runs\": [\n",
            "        {\"threads\": 1, \"seconds\": 4.0, \"medges_per_second\": 3.0, \
             \"peak_rss_kb\": 500000},\n",
            "        {\"threads\": 8, \"seconds\": 1.3, \"medges_per_second\": 9.3, \
             \"peak_rss_kb\": 600000}\n",
            "      ]\n",
            "    }\n",
            "  ]\n",
            "}\n",
        );
        let report = BenchReport::parse(v1).expect("v1 reorder parses");
        assert_eq!(report.bench, "reorder");
        assert_eq!(report.fingerprints.len(), 1);
        assert_eq!(report.fingerprints[0].name, "permutation.rabbit");
        assert_eq!(report.fingerprints[0].value, 0x0123_4567_89ab_cdef);
        let names: Vec<&str> = report.metrics.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"reorder.generate_seconds"));
        assert!(names.contains(&"reorder.rabbit.speedup_widest_vs_serial"));
        assert!(names.contains(&"reorder.rabbit.t1.medges_per_second"));
        assert!(names.contains(&"reorder.rabbit.t8.peak_rss_kb"));
    }

    #[test]
    fn unsupported_schemas_are_rejected() {
        assert!(BenchReport::parse("{\n  \"schema\": \"mystery.v7\"\n}\n").is_err());
        assert!(BenchReport::parse("not json at all").is_err());
    }

    #[test]
    fn fnv_helpers_agree_on_byte_identity() {
        // The u32/u64 walkers must match the byte walker over the same
        // little-endian encoding, so fingerprints are representation
        // independent.
        let words = [0xDEAD_BEEFu32, 7, 0];
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        assert_eq!(fnv1a_u32s(&words), fnv1a_bytes(&bytes));
        let quads = [0x0123_4567_89AB_CDEFu64, 1];
        let bytes: Vec<u8> = quads.iter().flat_map(|w| w.to_le_bytes()).collect();
        assert_eq!(fnv1a_u64s(&quads), fnv1a_bytes(&bytes));
    }

    #[test]
    fn machine_detect_produces_a_renderable_identity() {
        let m = Machine::detect();
        assert!(!m.cpu.is_empty());
        assert!(m.threads >= 1);
        assert!(m.mem_total_kb >= 1);
        // Fingerprint is stable for equal identities.
        assert_eq!(m.fingerprint(), m.clone().fingerprint());
    }
}
