//! **Figure 2**: SpMV-CSR DRAM traffic (normalized to compulsory traffic)
//! for RANDOM / ORIGINAL / DEGSORT / DBG / GORDER / RABBIT across the
//! corpus, plus the run-time means from the figure's caption and the
//! paper's Observations 1–5.

use commorder::prelude::*;
use commorder::sparse::stats::pearson;
use commorder_bench::{figure2_techniques, parallel_map, Harness};

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let cases = harness.load();
    let pipeline = Pipeline::new(harness.gpu);
    let techniques = figure2_techniques(harness.random_seed);

    let mut headers = vec!["matrix".to_string(), "domain".to_string()];
    headers.extend(techniques.iter().map(|t| t.name().to_string()));
    let mut traffic_table = Table::new(
        "Fig. 2: SpMV DRAM traffic normalized to compulsory",
        headers,
    );

    let mut traffic: Vec<Vec<f64>> = vec![Vec::new(); techniques.len()];
    let mut time: Vec<Vec<f64>> = vec![Vec::new(); techniques.len()];
    let mut within_10pct = 0usize;
    let mut best_counts = vec![0usize; techniques.len()];
    let mut sizes: Vec<f64> = Vec::new();
    let mut best_ratios: Vec<f64> = Vec::new();

    // One matrix per worker thread: every (matrix, technique) evaluation
    // is independent.
    let per_matrix: Vec<(Vec<f64>, Vec<f64>)> = parallel_map(&cases, |case| {
        eprintln!("[fig2] {}", case.entry.name);
        let mut ratios = Vec::with_capacity(techniques.len());
        let mut times = Vec::with_capacity(techniques.len());
        for technique in &techniques {
            let eval = pipeline
                .evaluate(&case.matrix, technique.as_ref())
                .expect("corpus matrices are square");
            ratios.push(eval.run.traffic_ratio);
            times.push(eval.run.time_ratio);
        }
        (ratios, times)
    });

    for (case, (ratios, times)) in cases.iter().zip(&per_matrix) {
        let mut row = vec![
            case.entry.name.to_string(),
            case.entry.domain.label().to_string(),
        ];
        for (i, (&ratio, &t)) in ratios.iter().zip(times).enumerate() {
            row.push(Table::ratio(ratio));
            traffic[i].push(ratio);
            time[i].push(t);
        }
        traffic_table.add_row(row);
        // Observation 1: best technique within 10% of ideal traffic?
        let best = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        if best <= 1.10 {
            within_10pct += 1;
        }
        sizes.push(case.matrix.nnz() as f64);
        best_ratios.push(best);
        // Observation 4: which technique wins this matrix (RANDOM and
        // ORIGINAL included for completeness)?
        let winner = ratios
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty")
            .0;
        best_counts[winner] += 1;
    }

    let mut mean_row = vec!["MEAN (traffic)".to_string(), String::new()];
    let mut time_row = vec!["MEAN (run time)".to_string(), String::new()];
    for i in 0..techniques.len() {
        mean_row.push(Table::ratio(
            arith_mean_ratio(&traffic[i]).unwrap_or(f64::NAN),
        ));
        time_row.push(Table::ratio(arith_mean_ratio(&time[i]).unwrap_or(f64::NAN)));
    }
    traffic_table.add_row(mean_row);
    traffic_table.add_row(time_row);
    if let Ok(Some(path)) = traffic_table.save_csv_if_configured() {
        eprintln!("[fig2] csv -> {}", path.display());
    }
    println!("{traffic_table}");

    println!(
        "Observation 1: best-technique traffic within 10% of ideal for {}/{} matrices",
        within_10pct,
        cases.len()
    );
    print!("Observation 4: per-matrix winners —");
    for (i, technique) in techniques.iter().enumerate() {
        print!(" {}:{}", technique.name(), best_counts[i]);
    }
    println!();
    if let Some(c) = pearson(&sizes, &best_ratios) {
        println!(
            "Observation 2: Pearson(matrix nnz, best traffic ratio) = {c:.3} \
             (paper: reaching ideal is unrelated to size; expect |r| small)"
        );
    }
    println!(
        "Paper reference means — traffic: RANDOM 3.36x ORIGINAL 1.54x DEGSORT 1.61x \
         DBG 1.48x GORDER 1.29x RABBIT 1.27x; run time: 6.21x / 1.96x / 2.17x / 1.94x / 1.56x / 1.54x"
    );
}
