//! A miniature engine with one seeded hazard per audit rule.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Two independently guarded queues plus a relaxed counter.
pub struct Engine {
    /// Pending job ids.
    pub queue: Mutex<Vec<usize>>,
    /// Completed job ids.
    pub done: Mutex<Vec<usize>>,
    /// Work-steal counter.
    pub steals: AtomicUsize,
}

impl Engine {
    /// Worker entry point: a configured worker seed (`Engine::map`).
    pub fn map(&self, jobs: &[usize]) -> usize {
        let first = jobs[0];
        std::thread::scope(|s| {
            s.spawn(move || {
                let held = self.queue.lock().unwrap();
                let nested = self.done.lock().expect("done queue poisoned");
                drop(nested);
                drop(held);
            });
        });
        first + self.steals.load(Ordering::Relaxed)
    }

    /// Unsafe read without a SAFETY proof.
    pub fn slot(&self, raw: &[usize], i: usize) -> usize {
        unsafe { *raw.get_unchecked(i) }
    }

    /// Unsafe read carrying the proof the audit wants.
    pub fn first_slot(&self, raw: &[usize]) -> usize {
        // SAFETY: callers check `raw` is non-empty before dispatch.
        unsafe { *raw.get_unchecked(0) }
    }
}
