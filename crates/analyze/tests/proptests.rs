//! Property tests for the lexer: lex → re-emit → lex is a fixed point.
//!
//! Sources are composed from fragments chosen to sit on the lexer's
//! edge cases (raw strings, nested block comments, lifetimes next to
//! char literals, byte strings, exponent-bearing numbers). For every
//! composition the token spans must partition the input exactly, the
//! re-emitted text (the concatenation of token texts) must equal the
//! input byte-for-byte, and re-lexing that text must reproduce the
//! same token stream — the lossless invariant every analysis pass
//! builds on.

use commorder_analyze::lexer::{lex, TokenKind};
use commorder_check::propcheck::{run_cases, DEFAULT_CASES};
use commorder_synth::rng::Rng;

/// Fragments that exercise every tricky lexer path. Each is valid on
/// its own and stays valid under concatenation with the separators
/// below.
const FRAGMENTS: &[&str] = &[
    "let x = 1;",
    "r#\"raw \\ not an escape \"inner\" \"#",
    "r##\"double-hash \"# still inside\"##",
    "br#\"byte raw\"#",
    "b\"bytes \\x7f\"",
    "c\"c string\"",
    "/* outer /* nested */ still outer */",
    "/// doc comment\n",
    "//! inner doc\n",
    "//// plain, not doc\n",
    "/** block doc */",
    "/*** plain block ***/",
    "// line comment with \"quote\n",
    "'a'",
    "'\\''",
    "'\\n'",
    "b'x'",
    "&'static str",
    "fn f<'g>() {}",
    "1_000.25e-3",
    "0xFF_u8",
    "0b1010",
    "1.0e+9",
    "0.5.sqrt()",
    "ident_with_underscores",
    "r#match",
    "\"string with // comment and /* block */ inside\"",
    "\"escaped quote \\\" and backslash \\\\\"",
    "::<>",
    "#[cfg(test)]",
    "macro_rules! m { () => {} }",
    "r#type",
    "let r#fn = r#struct.r#await;",
    "for i in 0..1 {}",
    "0..=10",
    "1.0e-3",
    "x.0.1",
    "Vec::<Vec::<u32>>::new()",
    "xs.iter().collect::<Vec<Vec<u32>>>()",
];

/// Separators that keep adjacent fragments from gluing into different
/// tokens in ways that would change the partition (e.g. an ident
/// directly against a number).
const SEPARATORS: &[&str] = &[" ", "\n", "\t", " ; ", "\n\n"];

/// Asserts the lossless invariant for `src` and returns the re-lex of
/// the re-emitted text for stream comparison.
fn assert_lossless(src: &str) {
    let tokens = lex(src);
    // Spans partition 0..len.
    let mut pos = 0;
    for t in &tokens {
        assert_eq!(t.start, pos, "gap or overlap before {:?}", t.kind);
        assert!(t.end >= t.start);
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "tokens do not cover the input");
    // Re-emit equals input.
    let reemitted: String = tokens.iter().map(|t| t.text(src)).collect();
    assert_eq!(reemitted, src, "concat of token texts must be the input");
    // Re-lex is a fixed point: same kinds and spans.
    let relexed = lex(&reemitted);
    assert_eq!(relexed.len(), tokens.len(), "token count changed on relex");
    for (a, b) in tokens.iter().zip(&relexed) {
        assert_eq!((a.kind, a.start, a.end), (b.kind, b.start, b.end));
    }
}

#[test]
fn composed_fragments_round_trip() {
    run_cases("lexer-round-trip", DEFAULT_CASES, |rng: &mut Rng| {
        let parts = 1 + rng.gen_range(12) as usize;
        let mut src = String::new();
        if rng.gen_bool(0.1) {
            src.push_str("#!/usr/bin/env rust\n");
        }
        for i in 0..parts {
            if i > 0 {
                let sep = SEPARATORS[rng.gen_range(SEPARATORS.len() as u64) as usize];
                src.push_str(sep);
            }
            let frag = FRAGMENTS[rng.gen_range(FRAGMENTS.len() as u64) as usize];
            src.push_str(frag);
        }
        assert_lossless(&src);
    });
}

#[test]
fn every_fragment_round_trips_alone() {
    for frag in FRAGMENTS {
        assert_lossless(frag);
    }
}

#[test]
fn random_byte_soup_stays_lossless() {
    // The lexer must never panic or lose bytes even on garbage: any
    // unrecognized byte becomes an Unknown token, and unterminated
    // literals extend to end of input.
    run_cases("lexer-byte-soup", DEFAULT_CASES, |rng: &mut Rng| {
        let len = rng.gen_range(64) as usize;
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            // Printable ASCII plus the quote/backslash/comment bytes
            // most likely to confuse a scanner.
            let b = match rng.gen_range(4) {
                0 => b'"',
                1 => b'\'',
                2 => *b"/*\\#r".get(rng.gen_range(5) as usize).unwrap_or(&b'/'),
                _ => 32 + rng.gen_u32(95) as u8,
            };
            bytes.push(b);
        }
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_lossless(&src);
    });
}

/// Non-trivia `(kind, text)` pairs — the view the analysis passes see.
fn code_tokens(src: &str) -> Vec<(TokenKind, String)> {
    lex(src)
        .iter()
        .filter(|t| !t.kind.is_trivia())
        .map(|t| (t.kind, t.text(src).to_owned()))
        .collect()
}

/// Keywords that are legal after `r#` (every strict keyword except the
/// path/underscore specials `crate`/`self`/`super`/`Self`).
const RAW_KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "dyn", "else", "enum", "extern", "fn", "for", "if", "impl",
    "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "static", "struct",
    "trait", "type", "unsafe", "use", "where", "while", "async", "await", "try", "union",
];

#[test]
fn raw_identifiers_lex_as_single_idents() {
    // `r#type` must be ONE Ident token (the analyzer treats it as a
    // name, not an `r` ident glued to a `#` and a keyword), and it must
    // survive inside binding and field positions.
    run_cases("lexer-raw-ident", DEFAULT_CASES, |rng: &mut Rng| {
        let kw = RAW_KEYWORDS[rng.gen_range(RAW_KEYWORDS.len() as u64) as usize];
        let raw = format!("r#{kw}");
        assert_eq!(
            code_tokens(&raw),
            vec![(TokenKind::Ident, raw.clone())],
            "{raw} must be a single raw identifier"
        );
        let src = format!("let {raw} = other.{raw};");
        assert_lossless(&src);
        let idents: Vec<String> = code_tokens(&src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(
            idents,
            vec!["let".to_owned(), raw.clone(), "other".to_owned(), raw],
            "raw identifiers must stay whole in binding and field position"
        );
    });
}

#[test]
fn range_vs_float_disambiguation() {
    // `0..1` is four tokens (int, dot, dot, int) — never `0.` `.1`
    // floats — while `1.0e-3` is one float literal including the signed
    // exponent. The range form feeds the loop-detection in the hot-path
    // lint, so a mis-split here corrupts downstream spans.
    run_cases("lexer-range-vs-float", DEFAULT_CASES, |rng: &mut Rng| {
        let a = rng.gen_u32(1000);
        let b = rng.gen_u32(1000);
        let c = rng.gen_u32(30);

        let range = format!("{a}..{b}");
        assert_lossless(&range);
        assert_eq!(
            code_tokens(&range),
            vec![
                (TokenKind::NumLit, a.to_string()),
                (TokenKind::Punct, ".".to_owned()),
                (TokenKind::Punct, ".".to_owned()),
                (TokenKind::NumLit, b.to_string()),
            ],
            "{range} must lex as int .. int"
        );

        let inclusive = format!("{a}..={b}");
        let kinds: Vec<TokenKind> = code_tokens(&inclusive).iter().map(|(k, _)| *k).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::NumLit,
                TokenKind::Punct,
                TokenKind::Punct,
                TokenKind::Punct,
                TokenKind::NumLit,
            ],
            "{inclusive} must lex as int .. = int"
        );

        let float = format!("{a}.{b}e-{c}");
        assert_lossless(&float);
        assert_eq!(
            code_tokens(&float),
            vec![(TokenKind::NumLit, float.clone())],
            "{float} must be a single float literal with its exponent"
        );

        // Tuple-index chains follow rustc's lexer: after the first dot
        // the digits re-glue into ONE float literal (`x.0.1` is ident,
        // dot, `0.1`) and the parser, not the lexer, re-splits it.
        let tuple = format!("x.{a}.{b}");
        assert_lossless(&tuple);
        assert_eq!(
            code_tokens(&tuple),
            vec![
                (TokenKind::Ident, "x".to_owned()),
                (TokenKind::Punct, ".".to_owned()),
                (TokenKind::NumLit, format!("{a}.{b}")),
            ],
            "{tuple} must lex as ident . float, matching rustc"
        );
    });
}

#[test]
fn nested_turbofish_stays_balanced() {
    // `>>` in `Vec::<Vec::<u32>>::new()` must arrive as two separate
    // one-byte `>` puncts (the lexer never fuses shift operators), so
    // the angle-depth tracking in the call-graph builder can match
    // every `<` with a `>` at arbitrary nesting depth.
    run_cases("lexer-turbofish", DEFAULT_CASES, |rng: &mut Rng| {
        let depth = 1 + rng.gen_range(7) as usize;
        let mut src = String::from("f::<");
        for _ in 0..depth {
            src.push_str("Vec<");
        }
        src.push_str("u32");
        for _ in 0..depth {
            src.push('>');
        }
        src.push_str(">(x)");
        assert_lossless(&src);

        let toks = code_tokens(&src);
        let mut opens = 0usize;
        let mut closes = 0usize;
        for (kind, text) in &toks {
            if *kind == TokenKind::Punct {
                assert_eq!(text.len(), 1, "puncts are single bytes, got {text:?}");
                match text.as_str() {
                    "<" => opens += 1,
                    ">" => closes += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(
            opens,
            depth + 1,
            "one `<` per nesting level plus the turbofish"
        );
        assert_eq!(
            closes,
            depth + 1,
            "every `<` must close with its own `>` punct"
        );
    });
}
