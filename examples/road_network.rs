//! Road-network scenario: high-diameter, bounded-degree meshes — the
//! regime where ORIGINAL order quality is pure publisher luck
//! (Observation 3) and bandwidth-style orderings (RCM) compete with
//! community-based ones.
//!
//! ```sh
//! cargo run --release --example road_network
//! ```

use commorder::prelude::*;
use commorder::sparse::stats::{bandwidth, mean_index_distance};
use commorder::synth::generators::Grid2d;

fn main() -> Result<(), commorder::sparse::SparseError> {
    // The same road mesh, "published" tidily and scrambled.
    let tidy = Grid2d {
        width: 160,
        height: 100,
        diagonals: false,
        shortcut_p: 0.03,
        scramble_ids: false,
    }
    .generate(5)?;
    let scramble = RandomOrder::new(11).reorder(&tidy)?;
    let messy = tidy.permute_symmetric(&scramble)?;

    let pipeline = Pipeline::new(GpuSpec::test_scale());
    for (label, matrix) in [("tidy publisher", &tidy), ("careless publisher", &messy)] {
        let mut table = Table::new(
            format!("road mesh ({label}): SpMV traffic vs ordering"),
            vec![
                "technique".into(),
                "traffic/compulsory".into(),
                "bandwidth".into(),
                "mean |r-c|".into(),
            ],
        );
        let techniques: Vec<Box<dyn Reordering>> = vec![
            Box::new(Original),
            Box::new(Rcm),
            Box::new(Rabbit::new()),
            Box::new(RabbitPlusPlus::new()),
        ];
        for technique in &techniques {
            let perm = technique.reorder(matrix)?;
            let reordered = matrix.permute_symmetric(&perm)?;
            let run = pipeline.simulate(&reordered);
            table.add_row(vec![
                technique.name().to_string(),
                Table::ratio(run.traffic_ratio),
                bandwidth(&reordered).to_string(),
                format!("{:.1}", mean_index_distance(&reordered)),
            ]);
        }
        println!("{table}");
    }
    println!(
        "Observation 3 in action: ORIGINAL is near-ideal for the tidy publisher and\n\
         near-RANDOM for the careless one — same matrix, different upload. RCM and\n\
         RABBIT both repair it; neither needed the publisher's luck."
    );
    Ok(())
}
