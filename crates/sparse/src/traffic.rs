//! The paper's hardware-limit accounting (§IV-B): kernel identities,
//! compulsory DRAM traffic, and arithmetic intensity.
//!
//! > "The minimum DRAM traffic (or compulsory traffic) for the SpMV kernel
//! > is achieved when the last level cache only incurs compulsory cache
//! > misses. Therefore, assuming 4 bytes for matrix values and the CSR
//! > coordinates and an |N| x |N| sparse matrix with |NZ| non-zeros, the
//! > compulsory traffic for SpMV is (2*|N|*4B) + ((|N|+1+|NZ|+|NZ|)*4B)."
//!
//! Every figure in the paper normalizes measured DRAM traffic to the value
//! computed here; every run time is normalized to
//! `compulsory_bytes / measured_bandwidth` (see `commorder-gpumodel`).

use crate::{CsrMatrix, SparseError, ELEM_BYTES};

/// The sparse kernels evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// SpMV with the matrix in CSR format (Algorithm 1; Figs. 2–8, Tables
    /// II/III).
    SpmvCsr,
    /// SpMV with the matrix in COO format (Table IV).
    SpmvCoo,
    /// SpMM: sparse `|N| x |N|` matrix times dense `|N| x k` matrix in CSR
    /// format (Table IV uses `k = 4` and `k = 256`).
    SpmmCsr {
        /// Number of dense right-hand-side columns.
        k: u32,
    },
    /// Column-tiled SpMV (the tiling optimization of the paper's §VII
    /// related work, \[21\]/\[38\]/\[40\]/\[43\]): the matrix is split into
    /// vertical tiles of `tile_cols` columns, each stored with its own
    /// row-offsets array, so the irregular `X` accesses are bounded to
    /// one tile's range at a time. Costs: per-tile offset arrays and
    /// re-walking `Y` every tile.
    SpmvCsrTiled {
        /// Columns per tile.
        tile_cols: u32,
    },
    /// Propagation-blocking SpMV (the blocking optimization of the
    /// paper's §VII related work, \[7\]/\[11\]/\[20\]/\[26\]): phase 1 streams
    /// the matrix in CSC order (so `X` is read sequentially) and appends
    /// `(row, partial)` pairs into `bins` bins by destination-row range;
    /// phase 2 drains each bin, accumulating into a `Y` range that fits
    /// in cache. Trades 4 extra streamed elements per non-zero for fully
    /// regular access.
    SpmvBlocked {
        /// Number of destination-row bins.
        bins: u32,
    },
    /// Sparse × sparse multiply `C = A · B`, row-by-row Gustavson over
    /// CSR × CSR with a dense accumulator (the cluster-wise SpGEMM
    /// paper's baseline, arXiv 2507.21253). Rows execute in natural
    /// order. The second operand and the cluster assignment are
    /// workload *data*, carried by the trace source and pipeline — the
    /// kernel identity stays `Copy`/`Hash` so it can label grid cells.
    SpGemmGustavson,
    /// Cluster-wise Gustavson SpGEMM: rows of one detected community
    /// execute as a block (communities ascending, rows ascending
    /// within each), shrinking the accumulator working set when the
    /// community structure is strong. Without an assignment this
    /// degenerates to [`Kernel::SpGemmGustavson`].
    SpGemmClusterWise,
}

impl Kernel {
    /// Number of column tiles a tiled kernel uses on an `n`-column matrix
    /// (1 for untiled kernels).
    #[must_use]
    pub fn tiles(&self, n: u64) -> u64 {
        match *self {
            Kernel::SpmvCsrTiled { tile_cols } => n.div_ceil(u64::from(tile_cols).max(1)),
            _ => 1,
        }
    }
}

impl Kernel {
    /// Short display name matching the paper's table headers.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Kernel::SpmvCsr => "SpMV-CSR".to_string(),
            Kernel::SpmvCoo => "SpMV-COO".to_string(),
            Kernel::SpmmCsr { k } => format!("SpMM-CSR-{k}"),
            Kernel::SpmvCsrTiled { tile_cols } => format!("SpMV-CSR-T{tile_cols}"),
            Kernel::SpmvBlocked { bins } => format!("SpMV-PB{bins}"),
            Kernel::SpGemmGustavson => "SpGEMM".to_string(),
            Kernel::SpGemmClusterWise => "SpGEMM-CW".to_string(),
        }
    }

    /// The lowercase CLI spelling of this kernel — the exact inverse of
    /// [`kernel_by_name`], round-trip tested over every variant. Report
    /// JSON keeps the paper-style [`Kernel::name`]; this form is what
    /// `suite --kernels` accepts.
    #[must_use]
    pub fn cli_name(&self) -> String {
        match self {
            Kernel::SpmvCsr => "spmv-csr".to_string(),
            Kernel::SpmvCoo => "spmv-coo".to_string(),
            Kernel::SpmmCsr { k } => format!("spmm-{k}"),
            Kernel::SpmvCsrTiled { tile_cols } => format!("spmv-tiled-{tile_cols}"),
            Kernel::SpmvBlocked { bins } => format!("spmv-blocked-{bins}"),
            Kernel::SpGemmGustavson => "spgemm".to_string(),
            Kernel::SpGemmClusterWise => "spgemm-cluster".to_string(),
        }
    }

    /// `true` for the sparse × sparse kernels, whose second operand is
    /// another sparse matrix rather than a dense vector/block.
    #[must_use]
    pub fn is_spgemm(&self) -> bool {
        matches!(self, Kernel::SpGemmGustavson | Kernel::SpGemmClusterWise)
    }

    /// Compulsory DRAM traffic in bytes for an `n x n` matrix with `nnz`
    /// stored entries (§IV-B, extended per-kernel as Table IV requires:
    /// "the compulsory traffic is updated according to the kernel").
    ///
    /// * CSR SpMV: `X` + `Y` vectors (`2n`), `rowOffsets` (`n+1`),
    ///   `coords` + `values` (`2·nnz`).
    /// * COO SpMV: `X` + `Y` (`2n`), row + col + value triples (`3·nnz`).
    /// * CSR SpMM-k: dense input `B` and output `C` (`2·n·k`),
    ///   `rowOffsets` (`n+1`), `coords` + `values` (`2·nnz`).
    /// * Tiled SpMV: as CSR SpMV, but each of the `t` tiles carries its
    ///   own offsets array (`t·(n+1)`) — tiling's unavoidable metadata
    ///   cost even at perfect locality.
    /// * Blocked SpMV: phase 1 reads the CSC arrays (`(n+1) + 2·nnz`)
    ///   plus streaming `X` (`n`) and writes `2·nnz` bin elements;
    ///   phase 2 reads the `2·nnz` bin elements back and writes `Y`
    ///   (`n`) — blocking's 4·nnz streamed-element toll.
    /// * SpGEMM (self-multiply shape): both CSR operands streamed once
    ///   (`2·(n+1) + 4·nnz`). The output `C` traffic depends on
    ///   `nnz(C)`, which is not a function of shape alone, so this
    ///   shape-only form is an input-stream *lower bound*;
    ///   [`Kernel::compulsory_bytes_pair`] adds the exact output term.
    #[must_use]
    pub fn compulsory_bytes(&self, n: u64, nnz: u64) -> u64 {
        match *self {
            Kernel::SpmvCsr => (2 * n + (n + 1) + 2 * nnz) * ELEM_BYTES,
            Kernel::SpmvCoo => (2 * n + 3 * nnz) * ELEM_BYTES,
            Kernel::SpmmCsr { k } => (2 * n * u64::from(k) + (n + 1) + 2 * nnz) * ELEM_BYTES,
            Kernel::SpmvCsrTiled { .. } => (2 * n + self.tiles(n) * (n + 1) + 2 * nnz) * ELEM_BYTES,
            Kernel::SpmvBlocked { .. } => (2 * n + (n + 1) + 2 * nnz + 4 * nnz) * ELEM_BYTES,
            Kernel::SpGemmGustavson | Kernel::SpGemmClusterWise => {
                (2 * (n + 1) + 4 * nnz) * ELEM_BYTES
            }
        }
    }

    /// Compulsory traffic for a concrete matrix. For the SpGEMM kernels
    /// this is the exact self-multiply (`B = A`) value including the
    /// output stream — see [`Kernel::compulsory_bytes_pair`].
    #[must_use]
    pub fn compulsory_bytes_for(&self, a: &CsrMatrix) -> u64 {
        if self.is_spgemm() {
            // Self-multiply on a square matrix cannot mismatch shapes.
            if let Ok(bytes) = self.compulsory_bytes_pair(a, a) {
                return bytes;
            }
        }
        self.compulsory_bytes(u64::from(a.n_rows()), a.nnz() as u64)
    }

    /// Compulsory traffic for a concrete operand pair. For the SpGEMM
    /// kernels this streams each CSR array exactly once: read `A`
    /// (`(n_A+1) + 2·nnz_A`), read `B` (`(n_B+1) + 2·nnz_B`), write `C`
    /// (`(n_A+1) + 2·nnz_C`), with `nnz(C)` from a symbolic Gustavson
    /// pass ([`crate::kernels::spgemm_profile`]). Other kernels ignore
    /// `b` and fall back to [`Kernel::compulsory_bytes_for`].
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when an SpGEMM pair
    /// has `a.n_cols() != b.n_rows()`.
    pub fn compulsory_bytes_pair(&self, a: &CsrMatrix, b: &CsrMatrix) -> Result<u64, SparseError> {
        if !self.is_spgemm() {
            return Ok(self.compulsory_bytes(u64::from(a.n_rows()), a.nnz() as u64));
        }
        let profile = crate::kernels::spgemm_profile(a, b)?;
        let read_a = u64::from(a.n_rows()) + 1 + 2 * a.nnz() as u64;
        let read_b = u64::from(b.n_rows()) + 1 + 2 * b.nnz() as u64;
        let write_c = u64::from(a.n_rows()) + 1 + 2 * profile.result_nnz;
        Ok((read_a + read_b + write_c) * ELEM_BYTES)
    }

    /// Floating-point operations performed (one multiply + one add per
    /// stored entry, per dense column). For SpGEMM the true count is
    /// data-dependent (`2·Σ_r Σ_{k∈A_r} nnz(B_k)`); the shape-only form
    /// here is the `2·nnz` lower bound reached when every `B` row is a
    /// singleton.
    #[must_use]
    pub fn flops(&self, nnz: u64) -> u64 {
        match *self {
            Kernel::SpmvCsr
            | Kernel::SpmvCoo
            | Kernel::SpmvCsrTiled { .. }
            | Kernel::SpmvBlocked { .. }
            | Kernel::SpGemmGustavson
            | Kernel::SpGemmClusterWise => 2 * nnz,
            Kernel::SpmmCsr { k } => 2 * nnz * u64::from(k),
        }
    }

    /// Upper bound on arithmetic intensity (FLOP per DRAM byte) at
    /// compulsory traffic. For SpMV this tends to the paper's 0.25
    /// theoretical bound as `nnz >> n`.
    #[must_use]
    pub fn peak_arithmetic_intensity(&self, n: u64, nnz: u64) -> f64 {
        self.flops(nnz) as f64 / self.compulsory_bytes(n, nnz) as f64
    }
}

/// All kernel configurations evaluated in the paper, in presentation order.
#[must_use]
pub fn paper_kernels() -> Vec<Kernel> {
    vec![
        Kernel::SpmvCsr,
        Kernel::SpmvCoo,
        Kernel::SpmmCsr { k: 4 },
        Kernel::SpmmCsr { k: 256 },
    ]
}

/// CLI spellings accepted by [`kernel_by_name`] (mirroring
/// `reorder::TECHNIQUE_NAMES`), for help text and `suite --list`.
/// `<k>`, `<w>` and `<b>` stand for a positive integer parameter.
pub const KERNEL_NAMES: &[&str] = &[
    "spmv-csr",
    "spmv-coo",
    "spmm-<k>",
    "spmv-tiled-<w>",
    "spmv-blocked-<b>",
    "spgemm",
    "spgemm-cluster",
];

/// Resolves a (case-insensitive) CLI kernel name to a [`Kernel`]. This
/// registry is the single source of kernel spellings: `cli.rs` parsing,
/// `suite --list`, and [`Kernel::cli_name`] all go through it. `"spmv"`
/// is accepted as an alias for `"spmv-csr"` and `"spgemm-cw"` for
/// `"spgemm-cluster"`. Returns `None` for unknown names and
/// non-positive parameters.
#[must_use]
pub fn kernel_by_name(name: &str) -> Option<Kernel> {
    let lower = name.to_ascii_lowercase();
    let positive = |s: &str| s.parse::<u32>().ok().filter(|&v| v > 0);
    match lower.as_str() {
        "spmv" | "spmv-csr" => Some(Kernel::SpmvCsr),
        "spmv-coo" => Some(Kernel::SpmvCoo),
        "spgemm" => Some(Kernel::SpGemmGustavson),
        "spgemm-cluster" | "spgemm-cw" => Some(Kernel::SpGemmClusterWise),
        _ => {
            if let Some(k) = lower.strip_prefix("spmm-") {
                positive(k).map(|k| Kernel::SpmmCsr { k })
            } else if let Some(w) = lower.strip_prefix("spmv-tiled-") {
                positive(w).map(|tile_cols| Kernel::SpmvCsrTiled { tile_cols })
            } else if let Some(b) = lower.strip_prefix("spmv-blocked-") {
                positive(b).map(|bins| Kernel::SpmvBlocked { bins })
            } else {
                None
            }
        }
    }
}

/// Parses a comma-separated kernel list (`spgemm,spmv-csr`) through
/// [`kernel_by_name`], preserving order.
///
/// # Errors
///
/// Returns a human-readable message naming the first unknown kernel, or
/// rejecting an empty list.
pub fn parse_kernel_list(list: &str) -> Result<Vec<Kernel>, String> {
    let mut kernels = Vec::new();
    for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match kernel_by_name(name) {
            Some(k) => kernels.push(k),
            None => {
                return Err(format!(
                    "unknown kernel {name:?} (expected one of: {})",
                    KERNEL_NAMES.join(", ")
                ))
            }
        }
    }
    if kernels.is_empty() {
        return Err("kernel list is empty".to_string());
    }
    Ok(kernels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmv_csr_formula_matches_paper() {
        // (2*N*4) + ((N+1+NZ+NZ)*4)
        let n = 1000u64;
        let nnz = 5000u64;
        assert_eq!(
            Kernel::SpmvCsr.compulsory_bytes(n, nnz),
            2 * n * 4 + (n + 1 + 2 * nnz) * 4
        );
    }

    #[test]
    fn coo_traffic_exceeds_csr_for_same_matrix() {
        // COO stores an explicit row index per nnz; once nnz > n+1 the COO
        // compulsory traffic is strictly larger.
        let (n, nnz) = (100u64, 500u64);
        assert!(
            Kernel::SpmvCoo.compulsory_bytes(n, nnz) > Kernel::SpmvCsr.compulsory_bytes(n, nnz)
        );
    }

    #[test]
    fn spmm_scales_vector_traffic_by_k() {
        let (n, nnz) = (100u64, 500u64);
        let t4 = Kernel::SpmmCsr { k: 4 }.compulsory_bytes(n, nnz);
        let t256 = Kernel::SpmmCsr { k: 256 }.compulsory_bytes(n, nnz);
        assert_eq!(t256 - t4, 2 * n * (256 - 4) * 4);
    }

    #[test]
    fn spmm_k1_equals_spmv_csr_with_k_dense_vectors() {
        let (n, nnz) = (100u64, 500u64);
        // k = 1 SpMM moves exactly what SpMV moves.
        assert_eq!(
            Kernel::SpmmCsr { k: 1 }.compulsory_bytes(n, nnz),
            Kernel::SpmvCsr.compulsory_bytes(n, nnz)
        );
    }

    #[test]
    fn arithmetic_intensity_approaches_quarter_flop_per_byte() {
        // nnz >> n: traffic per nnz -> 8B, flops per nnz = 2 => 0.25.
        let ai = Kernel::SpmvCsr.peak_arithmetic_intensity(1000, 1_000_000);
        assert!((ai - 0.25).abs() < 0.01, "ai = {ai}");
    }

    #[test]
    fn spmm_intensity_grows_with_k() {
        let ai4 = Kernel::SpmmCsr { k: 4 }.peak_arithmetic_intensity(1000, 100_000);
        let ai256 = Kernel::SpmmCsr { k: 256 }.peak_arithmetic_intensity(1000, 100_000);
        assert!(ai256 > ai4);
    }

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(Kernel::SpmvCsr.name(), "SpMV-CSR");
        assert_eq!(Kernel::SpmvCoo.name(), "SpMV-COO");
        assert_eq!(Kernel::SpmmCsr { k: 256 }.name(), "SpMM-CSR-256");
        assert_eq!(paper_kernels().len(), 4);
    }

    #[test]
    fn compulsory_bytes_for_uses_matrix_shape() {
        let m = CsrMatrix::new(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 1.0]).unwrap();
        assert_eq!(
            Kernel::SpmvCsr.compulsory_bytes_for(&m),
            Kernel::SpmvCsr.compulsory_bytes(2, 2)
        );
    }

    #[test]
    fn every_kernel_variant_round_trips_through_the_registry() {
        let variants = [
            Kernel::SpmvCsr,
            Kernel::SpmvCoo,
            Kernel::SpmmCsr { k: 4 },
            Kernel::SpmmCsr { k: 256 },
            Kernel::SpmvCsrTiled { tile_cols: 4096 },
            Kernel::SpmvBlocked { bins: 16 },
            Kernel::SpGemmGustavson,
            Kernel::SpGemmClusterWise,
        ];
        for k in variants {
            assert_eq!(
                kernel_by_name(&k.cli_name()),
                Some(k),
                "{} must round-trip",
                k.cli_name()
            );
        }
    }

    #[test]
    fn registry_accepts_aliases_and_rejects_garbage() {
        assert_eq!(kernel_by_name("SPMV"), Some(Kernel::SpmvCsr));
        assert_eq!(kernel_by_name("spgemm-cw"), Some(Kernel::SpGemmClusterWise));
        assert_eq!(kernel_by_name("spmm-0"), None);
        assert_eq!(kernel_by_name("spmv-blocked-0"), None);
        assert_eq!(kernel_by_name("gemm"), None);
        let parsed = parse_kernel_list("spgemm, spgemm-cluster").unwrap();
        assert_eq!(
            parsed,
            vec![Kernel::SpGemmGustavson, Kernel::SpGemmClusterWise]
        );
        assert!(parse_kernel_list("spgemm,frobnicate")
            .unwrap_err()
            .contains("frobnicate"));
        assert!(parse_kernel_list(" , ").is_err());
    }

    #[test]
    fn spgemm_pair_traffic_counts_each_stream_once() {
        // A = [[1, 1], [0, 1]]; A·A has nnz(C) = 3 (row 0 -> {0, 1},
        // row 1 -> {1}).
        let a = CsrMatrix::new(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1.0; 3]).unwrap();
        let bytes = Kernel::SpGemmGustavson
            .compulsory_bytes_pair(&a, &a)
            .unwrap();
        let read_a = 3 + 2 * 3;
        let read_b = 3 + 2 * 3;
        let write_c = 3 + 2 * 3;
        assert_eq!(bytes, (read_a + read_b + write_c) * ELEM_BYTES);
        assert_eq!(Kernel::SpGemmGustavson.compulsory_bytes_for(&a), bytes);
        // The shape-only form stays an input-stream lower bound.
        assert!(Kernel::SpGemmGustavson.compulsory_bytes(2, 3) < bytes);
        // Non-SpGEMM kernels ignore the pair operand.
        assert_eq!(
            Kernel::SpmvCsr.compulsory_bytes_pair(&a, &a).unwrap(),
            Kernel::SpmvCsr.compulsory_bytes_for(&a)
        );
    }

    #[test]
    fn spgemm_pair_rejects_shape_mismatch() {
        let a = CsrMatrix::new(1, 2, vec![0, 1], vec![1], vec![1.0]).unwrap();
        let b = CsrMatrix::new(1, 2, vec![0, 1], vec![0], vec![1.0]).unwrap();
        assert!(Kernel::SpGemmGustavson
            .compulsory_bytes_pair(&a, &b)
            .is_err());
    }
}
