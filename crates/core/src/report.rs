//! Plain-text table rendering for the experiment binaries, shaped like
//! the paper's tables: a title, a header row, and aligned columns.

use std::fmt;

/// A renderable text table.
///
/// # Example
///
/// ```
/// use commorder::report::Table;
///
/// let mut t = Table::new("Demo", vec!["matrix".into(), "ratio".into()]);
/// t.add_row(vec!["web-sk-like".into(), Table::ratio(1.274)]);
/// let text = t.to_string();
/// assert!(text.contains("web-sk-like"));
/// assert!(text.contains("1.27x"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded; longer
    /// rows extend the width.
    pub fn add_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Formats a normalized ratio the way the paper prints them
    /// (`1.54x`); NaN (empty bucket) renders as `-`.
    #[must_use]
    pub fn ratio(value: f64) -> String {
        if value.is_nan() {
            "-".to_string()
        } else {
            format!("{value:.2}x")
        }
    }

    /// Formats a fraction as a percentage (`16.37%`).
    #[must_use]
    pub fn percent(value: f64) -> String {
        if value.is_nan() {
            "-".to_string()
        } else {
            format!("{:.2}%", value * 100.0)
        }
    }

    /// Formats seconds with an adaptive unit.
    #[must_use]
    pub fn seconds(value: f64) -> String {
        if value < 1e-3 {
            format!("{:.1}us", value * 1e6)
        } else if value < 1.0 {
            format!("{:.2}ms", value * 1e3)
        } else {
            format!("{value:.2}s")
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for row in &self.rows {
            measure(&mut widths, row);
        }

        writeln!(f, "=== {} ===", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map_or("", String::as_str);
                let pad = width - cell.chars().count();
                if i == 0 {
                    // First column left-aligned (names).
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            writeln!(f, "{}", line.trim_end())
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T", vec!["name".into(), "value".into()]);
        t.add_row(vec!["a".into(), "1.00x".into()]);
        t.add_row(vec!["longer-name".into(), "12.34x".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "=== T ===");
        // Value column is right-aligned: both end at the same offset.
        let a = lines[3];
        let b = lines[4];
        assert_eq!(a.len(), b.len(), "{s}");
        assert!(a.ends_with("1.00x"));
        assert!(b.ends_with("12.34x"));
    }

    #[test]
    fn formatters() {
        assert_eq!(Table::ratio(1.536), "1.54x");
        assert_eq!(Table::ratio(f64::NAN), "-");
        assert_eq!(Table::percent(0.1637), "16.37%");
        assert_eq!(Table::seconds(0.5), "500.00ms");
        assert_eq!(Table::seconds(2.0), "2.00s");
        assert_eq!(Table::seconds(5e-6), "5.0us");
    }

    #[test]
    fn empty_and_len() {
        let t = Table::new("x", vec!["h".into()]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        let s = t.to_string();
        assert!(s.contains("=== x ==="));
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::new("r", vec!["a".into(), "b".into(), "c".into()]);
        t.add_row(vec!["only".into()]);
        let s = t.to_string();
        assert!(s.lines().count() >= 4);
    }
}

impl Table {
    /// Writes the table as CSV (header row + data rows). Cells containing
    /// commas or quotes are quoted per RFC 4180.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn write_csv<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let write_row = |w: &mut W, row: &[String]| -> std::io::Result<()> {
            let line: Vec<String> = row.iter().map(|c| escape(c)).collect();
            writeln!(w, "{}", line.join(","))
        };
        write_row(&mut writer, &self.headers)?;
        for row in &self.rows {
            write_row(&mut writer, row)?;
        }
        Ok(())
    }

    /// Saves the table as CSV into the directory named by the
    /// `COMMORDER_CSV` environment variable (no-op when unset). The file
    /// name is a slug of the table title. Returns the path written, if
    /// any.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (directory creation, file write).
    pub fn save_csv_if_configured(&self) -> std::io::Result<Option<std::path::PathBuf>> {
        let Ok(dir) = std::env::var("COMMORDER_CSV") else {
            return Ok(None);
        };
        let slug: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_");
        let path = std::path::Path::new(&dir).join(format!("{slug}.csv"));
        std::fs::create_dir_all(&dir)?;
        self.write_csv(std::fs::File::create(&path)?)?;
        Ok(Some(path))
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new("CSV demo", vec!["a".into(), "b".into()]);
        t.add_row(vec!["x,y".into(), "plain".into()]);
        t.add_row(vec!["quo\"te".into(), "1.00x".into()]);
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "\"x,y\",plain");
        assert_eq!(lines[2], "\"quo\"\"te\",1.00x");
    }

    #[test]
    fn save_is_noop_without_env() {
        std::env::remove_var("COMMORDER_CSV");
        let t = Table::new("unsaved", vec!["h".into()]);
        assert_eq!(t.save_csv_if_configured().unwrap(), None);
    }

    #[test]
    fn save_writes_when_configured() {
        let dir = std::env::temp_dir().join("commorder_csv_test");
        std::env::set_var("COMMORDER_CSV", &dir);
        let mut t = Table::new("Fig. 2: traffic", vec!["m".into()]);
        t.add_row(vec!["soc".into()]);
        let path = t.save_csv_if_configured().unwrap().expect("path written");
        assert!(path.exists());
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("fig_2"));
        std::env::remove_var("COMMORDER_CSV");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
