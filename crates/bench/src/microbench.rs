//! Tiny wall-clock microbenchmark loop (the workspace builds offline, so
//! no criterion).
//!
//! Each benchmark warms up for a fixed window, then runs timed batches
//! until the measurement window elapses, and prints min / mean / max
//! nanoseconds per iteration (plus element throughput when the caller
//! supplies a count). `COMMORDER_BENCH_FAST=1` shrinks both windows for
//! smoke runs — the tier-1 suite only checks that every bench executes.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Timing configuration shared by a group of benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    /// Untimed warm-up window per benchmark.
    pub warmup: Duration,
    /// Timed measurement window per benchmark.
    pub measure: Duration,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::from_env()
    }
}

/// One benchmark's aggregate timing.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Total timed iterations.
    pub iters: u64,
    /// Fastest single iteration.
    pub min: Duration,
    /// Mean over all timed iterations.
    pub mean: Duration,
    /// Slowest single iteration.
    pub max: Duration,
}

impl Runner {
    /// Default windows (300 ms warm-up, 1 s measurement), shrunk to a few
    /// milliseconds when `COMMORDER_BENCH_FAST` is set.
    #[must_use]
    pub fn from_env() -> Self {
        if std::env::var_os("COMMORDER_BENCH_FAST").is_some() {
            Runner {
                warmup: Duration::from_millis(5),
                measure: Duration::from_millis(20),
            }
        } else {
            Runner {
                warmup: Duration::from_millis(300),
                measure: Duration::from_secs(1),
            }
        }
    }

    /// Times `f` and prints one report line. `elems` adds a Melem/s
    /// throughput column (criterion's `Throughput::Elements`).
    pub fn bench<R, F: FnMut() -> R>(&self, name: &str, elems: Option<u64>, mut f: F) -> Sample {
        let warm_until = Instant::now() + self.warmup;
        while Instant::now() < warm_until {
            black_box(f());
        }
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        while total < self.measure {
            let start = Instant::now();
            black_box(f());
            let dt = start.elapsed();
            iters += 1;
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
        }
        let sample = Sample {
            iters,
            min,
            mean: total / u32::try_from(iters.max(1)).unwrap_or(u32::MAX),
            max,
        };
        match elems {
            Some(n) if sample.mean > Duration::ZERO => {
                let meps = n as f64 / sample.mean.as_secs_f64() / 1e6;
                println!(
                    "{name:<28} {:>10.2?} /iter  (min {:.2?}, max {:.2?}, {iters} iters, {meps:.1} Melem/s)",
                    sample.mean, sample.min, sample.max
                );
            }
            _ => println!(
                "{name:<28} {:>10.2?} /iter  (min {:.2?}, max {:.2?}, {iters} iters)",
                sample.mean, sample.min, sample.max
            ),
        }
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let runner = Runner {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        };
        let s = runner.bench("noop", Some(10), || 1 + 1);
        assert!(s.iters > 0);
        assert!(s.min <= s.mean && s.mean <= s.max);
    }
}
