//! **Figure 9**: matrix reordering (pre-processing) time as the matrix
//! size increases, for GORDER, RABBIT and RABBIT++, plus the §VI-C
//! amortization analysis (SpMV iterations needed to pay for the
//! reordering, starting from RANDOM order).

use std::time::Instant;

use commorder::prelude::*;
use commorder::synth::generators::CommunityHub;
use commorder_bench::Harness;

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let pipeline = Pipeline::new(harness.gpu);

    // Size sweep over a fixed web-like structure (communities + hubs),
    // the regime where all three techniques are exercised.
    let sizes: &[u32] = if harness.entries.len() <= 8 {
        &[4_096, 8_192, 16_384] // mini corpus => quick sweep
    } else {
        &[16_384, 32_768, 65_536, 131_072, 262_144]
    };

    let mut table = Table::new(
        "Fig. 9: reordering time vs matrix size",
        vec![
            "n".into(),
            "nnz".into(),
            "GORDER".into(),
            "RABBIT".into(),
            "RABBIT++".into(),
        ],
    );
    let mut amortization = Table::new(
        "SpMV iterations to amortize pre-processing (from RANDOM order)",
        vec![
            "n".into(),
            "GORDER".into(),
            "RABBIT".into(),
            "RABBIT++".into(),
        ],
    );

    for &n in sizes {
        eprintln!("[fig9] n = {n}");
        let matrix = CommunityHub {
            n,
            communities: (n / 128).max(1),
            intra_degree: 10.0,
            hub_fraction: 0.02,
            hub_degree: 24.0,
            mixing: 0.08,
            scramble_ids: true,
        }
        .generate(u64::from(n))
        .expect("valid generator config");

        let techniques: Vec<Box<dyn Reordering>> = vec![
            Box::new(Gorder::default()),
            Box::new(Rabbit::new()),
            Box::new(RabbitPlusPlus::new()),
        ];
        let random_run = {
            let p = RandomOrder::new(harness.random_seed)
                .reorder(&matrix)
                .expect("square");
            pipeline.simulate(&matrix.permute_symmetric(&p).expect("validated"))
        };

        let mut time_row = vec![n.to_string(), matrix.nnz().to_string()];
        let mut amort_row = vec![n.to_string()];
        for technique in &techniques {
            let start = Instant::now();
            let perm = technique.reorder(&matrix).expect("square");
            let seconds = start.elapsed().as_secs_f64();
            time_row.push(Table::seconds(seconds));
            let run = pipeline.simulate(&matrix.permute_symmetric(&perm).expect("validated"));
            let iters = pipeline.gpu().amortization_iterations(
                pipeline.kernel(),
                u64::from(matrix.n_rows()),
                matrix.nnz() as u64,
                seconds,
                random_run.dram_bytes,
                run.dram_bytes,
            );
            amort_row.push(match iters {
                Some(i) => format!("{i:.0}"),
                None => "never".to_string(),
            });
        }
        table.add_row(time_row);
        amortization.add_row(amort_row);
    }
    println!("{table}");
    println!("{amortization}");
    println!(
        "Paper shape: GORDER's cost scales far faster than RABBIT/RABBIT++ \
         (paper means: GORDER 7467 iterations to amortize, RABBIT 741, RABBIT++ 1047).\n\
         Note: absolute iteration counts are not comparable — the paper amortizes \
         against a real GPU's SpMV; we amortize single-thread reordering time \
         against the modelled GPU kernel time. The ordering and scaling trend are \
         the reproducible shape."
    );
}
