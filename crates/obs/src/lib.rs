//! `commorder-obs`: zero-dependency structured telemetry for the
//! commorder workspace.
//!
//! The crate provides three things:
//!
//! 1. **Span timers** ([`Span`], [`span!`]) — RAII guards measuring a
//!    named phase. Per-thread nesting produces `/`-joined paths such as
//!    `exec.job/grid.job/grid.reorder`.
//! 2. **Metrics** ([`counter!`], [`gauge!`], [`observe!`]) — named
//!    counters, gauges, and histogram observations declared once in
//!    [`names::METRICS`].
//! 3. **Sinks** ([`JsonlSink`], [`MemorySink`], [`Registry`]) — pluggable
//!    event consumers installed process-wide with [`install`].
//!
//! Telemetry is a strict *sidecar*: with no sink installed every
//! instrumentation point is a single relaxed atomic load, and the
//! deterministic outputs of the workspace (e.g.
//! `ExperimentResult::render_json`) are byte-identical whether telemetry
//! is on or off — a golden test in the workspace root enforces this.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use commorder_obs as obs;
//!
//! let registry = Arc::new(obs::Registry::new());
//! let guard = obs::install(registry.clone());
//! {
//!     let _span = obs::span!("demo.work");
//!     obs::counter!("exec.jobs", 1);
//! }
//! drop(guard); // uninstall: telemetry is disabled again
//! assert_eq!(registry.counter("exec.jobs"), 1);
//! assert_eq!(registry.span("demo.work").map(|s| s.count), Some(1));
//! ```

// `unsafe` exists in exactly one place: the `obs-alloc` counting
// global allocator must implement `GlobalAlloc`. With the feature off
// the crate still forbids unsafe code outright.
#![cfg_attr(not(feature = "obs-alloc"), forbid(unsafe_code))]
#![cfg_attr(feature = "obs-alloc", deny(unsafe_code))]
#![warn(missing_docs)]

#[cfg(feature = "obs-alloc")]
pub mod alloc;
pub mod event;
pub mod names;
pub mod registry;
pub mod sink;
pub mod span;

pub use event::Event;
pub use names::{MetricInfo, MetricKind, SpanInfo, METRICS, SPANS};
pub use registry::{AllocStat, Histogram, Registry, SpanStat};
pub use sink::{JsonlSink, MemorySink, Sink};
pub use span::{thread_ordinal, Span};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

fn sinks() -> &'static Mutex<Vec<Arc<dyn Sink>>> {
    static SINKS: OnceLock<Mutex<Vec<Arc<dyn Sink>>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(Vec::new()))
}

/// The process-wide telemetry epoch: span `start_ns` values count from
/// this instant. Fixed at the first [`install`] call.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Whether at least one sink is installed.
///
/// Instrumentation points check this before doing any work; the cost of
/// disabled telemetry is this single relaxed atomic load.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Delivers an event to every installed sink. No-op while disabled.
pub fn emit(event: &Event) {
    if !enabled() {
        return;
    }
    let sinks = sinks().lock().unwrap_or_else(PoisonError::into_inner);
    for sink in sinks.iter() {
        sink.record(event);
    }
}

/// Installs `sink` process-wide and enables telemetry.
///
/// The sink immediately receives an [`Event::Meta`] header. Keep the
/// returned guard alive for the duration of the measured region;
/// dropping it removes the sink (and disables telemetry once no sinks
/// remain). Multiple sinks may be installed at once — every event goes
/// to all of them.
pub fn install(sink: Arc<dyn Sink>) -> SinkGuard {
    epoch(); // pin the epoch no later than the first install
    sink.record(&Event::Meta { version: 1 });
    let mut sinks = sinks().lock().unwrap_or_else(PoisonError::into_inner);
    sinks.push(sink.clone());
    ENABLED.store(true, Ordering::Relaxed);
    SinkGuard { sink }
}

/// Uninstalls its sink on drop; see [`install`].
#[must_use = "dropping the guard uninstalls the sink; bind it to a name"]
pub struct SinkGuard {
    sink: Arc<dyn Sink>,
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        let mut sinks = sinks().lock().unwrap_or_else(PoisonError::into_inner);
        let target = Arc::as_ptr(&self.sink).cast::<()>();
        if let Some(pos) = sinks
            .iter()
            .position(|s| std::ptr::eq(Arc::as_ptr(s).cast::<()>(), target))
        {
            sinks.remove(pos);
        }
        if sinks.is_empty() {
            ENABLED.store(false, Ordering::Relaxed);
        }
    }
}

/// Increments the counter `name` by `delta`. No-op while disabled.
pub fn counter_add(name: &'static str, delta: u64) {
    if enabled() {
        emit(&Event::Counter { name, delta });
    }
}

/// Samples the gauge `name`. No-op while disabled.
pub fn gauge_set(name: &'static str, value: f64) {
    if enabled() {
        emit(&Event::Gauge { name, value });
    }
}

/// Records one histogram observation for `name`. No-op while disabled.
pub fn observe(name: &'static str, value: f64) {
    if enabled() {
        emit(&Event::Observe { name, value });
    }
}

/// Opens a [`Span`] for the current scope.
///
/// `span!("name")` times a plain phase; `span!("name", "{}/{}", a, b)`
/// attaches a formatted instance label (the format arguments are only
/// evaluated while telemetry is enabled). Bind the result:
/// `let _span = obs::span!("reorder.rabbit");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
    ($name:expr, $($fmt:tt)+) => {
        if $crate::enabled() {
            $crate::Span::enter_detailed($name, format!($($fmt)+))
        } else {
            $crate::Span::disabled()
        }
    };
}

/// Increments a declared counter: `counter!("exec.jobs", 1)`.
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr) => {
        $crate::counter_add($name, $delta)
    };
}

/// Samples a declared gauge: `gauge!("exec.utilization", 0.93)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        $crate::gauge_set($name, $value)
    };
}

/// Records a histogram observation:
/// `observe!("exec.queue_wait_seconds", secs)`.
#[macro_export]
macro_rules! observe {
    ($name:expr, $value:expr) => {
        $crate::observe($name, $value)
    };
}

/// Serializes tests that install global telemetry sinks.
///
/// Sinks are process-wide, so two concurrently running `#[test]`
/// functions that both call [`install`] would observe each other's
/// events. Take this lock first in any such test (works across crates —
/// each integration-test binary is its own process, but unit tests in
/// one binary share the statics).
#[doc(hidden)]
pub fn tests_serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_enables_and_uninstall_disables() {
        let _serial = tests_serial();
        assert!(!enabled());
        let sink = Arc::new(MemorySink::new());
        let guard = install(sink.clone());
        assert!(enabled());
        emit(&Event::Counter {
            name: "exec.jobs",
            delta: 1,
        });
        drop(guard);
        assert!(!enabled());
        // Meta header + counter; nothing after uninstall.
        emit(&Event::Counter {
            name: "exec.jobs",
            delta: 1,
        });
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], Event::Meta { version: 1 });
    }

    #[test]
    fn multiple_sinks_both_receive_events() {
        let _serial = tests_serial();
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(Registry::new());
        let _ga = install(a.clone());
        let _gb = install(b.clone());
        counter_add("exec.steals", 4);
        assert_eq!(b.counter("exec.steals"), 4);
        assert!(a.events().iter().any(|e| matches!(
            e,
            Event::Counter {
                name: "exec.steals",
                delta: 4
            }
        )));
    }

    #[test]
    fn dropping_one_of_two_sinks_keeps_telemetry_enabled() {
        let _serial = tests_serial();
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let ga = install(a);
        let _gb = install(b.clone());
        drop(ga);
        assert!(enabled());
        counter_add("grid.cells", 1);
        assert!(b.events().iter().any(|e| matches!(
            e,
            Event::Counter {
                name: "grid.cells",
                ..
            }
        )));
    }

    #[test]
    fn metric_helpers_are_noops_while_disabled() {
        let _serial = tests_serial();
        counter_add("exec.jobs", 1);
        gauge_set("exec.utilization", 1.0);
        observe("exec.queue_wait_seconds", 0.5);
        let sink = Arc::new(MemorySink::new());
        let _g = install(sink.clone());
        assert_eq!(sink.events().len(), 1, "only the meta header");
    }

    #[test]
    fn span_macro_formats_lazily() {
        let _serial = tests_serial();
        // Disabled: the format arguments must not be evaluated.
        let mut evaluated = false;
        {
            let _s = span!("macro.test", "{}", {
                evaluated = true;
                "x"
            });
        }
        assert!(!evaluated);
        let sink = Arc::new(MemorySink::new());
        let _g = install(sink.clone());
        {
            let _s = span!("macro.test", "{}", {
                evaluated = true;
                "x"
            });
        }
        assert!(evaluated);
        assert!(sink.events().iter().any(|e| matches!(
            e,
            Event::Span { name: "macro.test", detail: Some(d), .. } if d == "x"
        )));
    }
}
