//! Self-hosting test: the analyzer runs over its own workspace — all
//! ten crates, including this one — and must report nothing.
//!
//! This is the same invocation `cargo run -p xtask -- lint` and CI
//! perform; keeping it as a test means `cargo test` alone catches a
//! regression that introduces a finding (or an allowlist entry that
//! stopped matching anything).

use std::path::PathBuf;

use commorder_analyze::{analyze_workspace, AnalyzerConfig};

#[test]
fn workspace_analyzes_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report =
        analyze_workspace(&root, &AnalyzerConfig::default()).expect("workspace must be readable");
    assert!(
        report.findings.is_empty(),
        "self-host findings:\n{}",
        report.render_text()
    );
}

#[test]
fn selfhost_callgraph_meets_resolution_bar() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report =
        analyze_workspace(&root, &AnalyzerConfig::default()).expect("workspace must be readable");
    let g = report
        .callgraph
        .as_ref()
        .expect("self-host emits a call graph");

    // Stats invariants the CHK1102 validator also enforces.
    assert_eq!(
        g.resolved + g.external,
        g.call_sites,
        "every call site is either resolved or external"
    );
    assert!(
        g.ambiguous <= g.resolved,
        "ambiguous is a subset of resolved"
    );

    // Acceptance bar: ≥90% of resolved intra-workspace call sites bind
    // unambiguously. Receiver typing (fields, params, lets, traits)
    // carries this; a regression in the resolver shows up here first.
    assert!(g.resolved > 0, "self-host must resolve some call sites");
    let precision = f64::from(g.resolved - g.ambiguous) / f64::from(g.resolved);
    assert!(
        precision >= 0.9,
        "call-graph resolution precision {precision:.3} fell below 0.9 \
         ({} ambiguous of {} resolved)",
        g.ambiguous,
        g.resolved
    );

    // The three seed sets must find their entry points: an empty set
    // means a pass silently checks nothing.
    assert!(!g.seeds_determinism.is_empty(), "determinism seeds missing");
    assert!(!g.seeds_hotpath.is_empty(), "hot-path seeds missing");
    assert!(!g.seeds_worker.is_empty(), "worker seeds missing");
}

#[test]
fn workspace_discovers_all_crates() {
    // The layer table and the tree must agree: every directory under
    // crates/ is declared, so XT0404 can only fire on genuinely new
    // crates.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = AnalyzerConfig::default();
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(crates_dir).expect("crates/ must exist") {
        let entry = entry.expect("readable dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        assert!(
            config.layers.contains_key(&name),
            "crate {name:?} is missing from AnalyzerConfig::default().layers"
        );
    }
}
