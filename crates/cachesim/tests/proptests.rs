//! Property-based tests for the cache simulator: conservation laws,
//! policy dominance, inclusion monotonicity and trace well-formedness.

use commorder_cachesim::belady::simulate_belady;
use commorder_cachesim::trace::{collect_trace, Access, ExecutionModel};
use commorder_cachesim::{CacheConfig, LruCache};
use commorder_sparse::traffic::Kernel;
use commorder_sparse::{CooMatrix, CsrMatrix};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = Vec<Access>> {
    proptest::collection::vec((0u64..4096, proptest::bool::ANY), 0..800).prop_map(|v| {
        v.into_iter()
            .map(|(slot, write)| Access {
                addr: slot * 8, // exercise intra-line sharing
                write,
            })
            .collect()
    })
}

fn arb_matrix() -> impl Strategy<Value = CsrMatrix> {
    (2u32..=30).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..150).prop_map(move |pairs| {
            let entries: Vec<(u32, u32, f32)> =
                pairs.into_iter().map(|(r, c)| (r, c, 1.0)).collect();
            CsrMatrix::try_from(CooMatrix::from_entries(n, n, entries).expect("in range"))
                .expect("valid")
        })
    })
}

fn small_cache() -> CacheConfig {
    CacheConfig {
        capacity_bytes: 2048,
        line_bytes: 32,
        associativity: 4,
    }
}

fn run_lru(config: CacheConfig, trace: &[Access]) -> commorder_cachesim::CacheStats {
    let mut cache = LruCache::new(config);
    for &a in trace {
        cache.access(a);
    }
    cache.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn conservation_laws(trace in arb_trace()) {
        let s = run_lru(small_cache(), &trace);
        prop_assert_eq!(s.accesses, trace.len() as u64);
        prop_assert_eq!(s.hits + s.misses(), s.accesses);
        prop_assert_eq!(s.fills, s.misses());
        prop_assert!(s.compulsory_misses <= s.misses());
        prop_assert!(s.dead_lines <= s.fills);
        prop_assert!(s.evictions <= s.fills);
        prop_assert!(s.hit_rate() >= 0.0 && s.hit_rate() <= 1.0);
    }

    #[test]
    fn belady_dominates_lru(trace in arb_trace()) {
        let lru = run_lru(small_cache(), &trace);
        let opt = simulate_belady(small_cache(), &trace);
        prop_assert!(opt.misses() <= lru.misses());
        prop_assert_eq!(opt.compulsory_misses, lru.compulsory_misses);
        prop_assert!(opt.misses() >= opt.compulsory_misses);
    }

    #[test]
    fn bigger_cache_never_misses_more_with_full_associativity(trace in arb_trace()) {
        // LRU with full associativity is a stack algorithm: inclusion
        // holds, so misses are monotone non-increasing in capacity.
        let small = CacheConfig {
            capacity_bytes: 1024,
            line_bytes: 32,
            associativity: 32, // 1 set of 32 ways: fully associative
        };
        let big = CacheConfig {
            capacity_bytes: 4096,
            line_bytes: 32,
            associativity: 128, // 1 set of 128 ways
        };
        let s = run_lru(small, &trace);
        let b = run_lru(big, &trace);
        prop_assert!(b.misses() <= s.misses(), "{} > {}", b.misses(), s.misses());
    }

    #[test]
    fn compulsory_equals_distinct_lines(trace in arb_trace()) {
        let s = run_lru(small_cache(), &trace);
        let distinct: std::collections::HashSet<u64> =
            trace.iter().map(|a| a.addr / 32).collect();
        prop_assert_eq!(s.compulsory_misses, distinct.len() as u64);
    }

    #[test]
    fn writebacks_bounded_by_written_lines(trace in arb_trace()) {
        let s = run_lru(small_cache(), &trace);
        let written: std::collections::HashSet<u64> = trace
            .iter()
            .filter(|a| a.write)
            .map(|a| a.addr / 32)
            .collect();
        // A line can be written back many times only if re-dirtied after
        // eviction; bound by writes, not written lines. Cheap sanity:
        let writes = trace.iter().filter(|a| a.write).count() as u64;
        prop_assert!(s.writebacks <= writes);
        if written.is_empty() {
            prop_assert_eq!(s.writebacks, 0);
        }
    }

    #[test]
    fn kernel_traces_read_every_csr_element(m in arb_matrix()) {
        // The SpMV-CSR trace must contain exactly nnz coords reads, nnz
        // values reads, nnz X reads and n_rows Y writes.
        let trace = collect_trace(&m, Kernel::SpmvCsr, ExecutionModel::Sequential);
        let writes = trace.iter().filter(|a| a.write).count();
        prop_assert_eq!(writes, m.n_rows() as usize);
        prop_assert_eq!(trace.len(), m.n_rows() as usize * 3 + m.nnz() * 3);
    }

    #[test]
    fn traffic_never_below_compulsory_reads(m in arb_matrix(), streams in 1u32..6) {
        let trace = collect_trace(
            &m,
            Kernel::SpmvCsr,
            ExecutionModel::Interleaved { streams },
        );
        let s = run_lru(small_cache(), &trace);
        // Fill misses cover at least every distinct read-first line.
        prop_assert!(s.fill_misses + s.write_alloc_misses >= s.compulsory_misses);
    }

    #[test]
    fn stats_identical_for_identical_traces(trace in arb_trace()) {
        let a = run_lru(small_cache(), &trace);
        let b = run_lru(small_cache(), &trace);
        prop_assert_eq!(a, b);
    }
}
