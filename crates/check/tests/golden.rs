//! Golden-file test: the checker's JSON report over the mini synthesis
//! corpus (plus deterministic corruptions of its first matrix) must stay
//! byte-identical. Any change to diagnostic codes, ordering, or the JSON
//! shape shows up as a diff against `tests/golden/mini_corpus.json`.

use commorder_cachesim::Access;
use commorder_check::check_analyze_report;
use commorder_check::matrix::{check_csr, check_csr_parts};
use commorder_check::perm::check_permutation_parts;
use commorder_check::trace::check_trace;
use commorder_check::CheckReport;
use commorder_synth::corpus;

const GOLDEN: &str = include_str!("golden/mini_corpus.json");
const BAD_CALLGRAPH: &str = include_str!("golden/bad_callgraph.txt");
const BAD_CALLGRAPH_GOLDEN: &str = include_str!("golden/bad_callgraph.json");
const BAD_EFFECTS: &str = include_str!("golden/bad_effects.txt");
const BAD_EFFECTS_GOLDEN: &str = include_str!("golden/bad_effects.json");

fn build_report() -> CheckReport {
    let mut report = CheckReport::new();

    // Every mini-corpus matrix must validate clean; any diagnostics it
    // produces land in the report (and would therefore break the golden).
    for entry in corpus::mini() {
        let m = entry.generate().expect("mini corpus generates");
        report.extend(check_csr(&m));
    }

    // Deterministic corruptions exercise one representative code per
    // validator family so the golden pins the exact rendering.
    report.extend(check_csr_parts(
        "corrupt.csr",
        2,
        3,
        &[0, 2, 1],
        &[0, 1],
        None,
    ));
    report.extend(check_permutation_parts("corrupt.perm", &[0, 2, 2], None));
    let trace = [Access::read(6), Access::write(100)];
    report.extend(check_trace(&trace, Some(64), 32));
    report
}

#[test]
fn mini_corpus_json_matches_golden() {
    let got = build_report().render_json();
    if std::env::var_os("COMMORDER_UPDATE_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/mini_corpus.json");
        std::fs::write(path, format!("{}\n", got.trim())).expect("golden file writable");
        return;
    }
    assert_eq!(
        got.trim(),
        GOLDEN.trim(),
        "checker JSON drifted; if intentional, regenerate with \
         COMMORDER_UPDATE_GOLDEN=1 cargo test -p commorder-check --test golden"
    );
}

#[test]
fn bad_callgraph_report_matches_golden() {
    let mut report = CheckReport::new();
    report.extend(check_analyze_report(BAD_CALLGRAPH));
    let got = report.render_json();
    if std::env::var_os("COMMORDER_UPDATE_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/bad_callgraph.json"
        );
        std::fs::write(path, format!("{}\n", got.trim())).expect("golden file writable");
        return;
    }
    assert!(
        report.codes().iter().all(|c| *c == "CHK1102"),
        "every seeded violation is a callgraph-contract breach"
    );
    assert_eq!(
        got.trim(),
        BAD_CALLGRAPH_GOLDEN.trim(),
        "CHK1102 diagnostics drifted; if intentional, regenerate with \
         COMMORDER_UPDATE_GOLDEN=1 cargo test -p commorder-check --test golden"
    );
}

#[test]
fn bad_effects_report_matches_golden() {
    let mut report = CheckReport::new();
    report.extend(check_analyze_report(BAD_EFFECTS));
    let got = report.render_json();
    if std::env::var_os("COMMORDER_UPDATE_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/bad_effects.json");
        std::fs::write(path, format!("{}\n", got.trim())).expect("golden file writable");
        return;
    }
    assert!(
        report.codes().iter().all(|c| *c == "CHK1103"),
        "every seeded violation is an effects-contract breach"
    );
    assert_eq!(
        got.trim(),
        BAD_EFFECTS_GOLDEN.trim(),
        "CHK1103 diagnostics drifted; if intentional, regenerate with \
         COMMORDER_UPDATE_GOLDEN=1 cargo test -p commorder-check --test golden"
    );
}

#[test]
fn mini_corpus_matrices_are_clean() {
    for entry in corpus::mini() {
        let m = entry.generate().expect("mini corpus generates");
        assert!(
            check_csr(&m).is_empty(),
            "corpus entry {} failed validation",
            entry.name
        );
    }
}
