use crate::ell::ELL_PAD;
use crate::{CsrMatrix, SparseError};

/// A sparse matrix in SELL-C-σ (Sliced ELLPACK) format.
///
/// Rows are grouped into *slices* of `c` rows; within every window of
/// `sigma` rows, rows are sorted by decreasing length before slicing, so
/// each slice is padded only to its **own** longest row. Storage inside
/// a slice is column-major (like ELL), giving GPU-friendly coalescing
/// with far less padding than plain ELL on irregular matrices.
///
/// The σ-sort is itself a *local row reordering* — SELL-C-σ and the
/// paper's reordering techniques are therefore complementary: global
/// techniques (RABBIT++) fix the X-vector locality, σ-sorting fixes the
/// intra-slice padding. The format study experiment quantifies both.
///
/// Row order is tracked internally; [`SellMatrix::spmv`] returns `y` in
/// the *original* row order.
#[derive(Debug, Clone, PartialEq)]
pub struct SellMatrix {
    n_rows: u32,
    n_cols: u32,
    c: u32,
    sigma: u32,
    /// Per-slice starting offset into `cols`/`values` (length
    /// `n_slices + 1`).
    slice_offsets: Vec<u32>,
    /// Per-slice width (longest row in the slice).
    slice_widths: Vec<u32>,
    /// `sorted_rows[k]` = original row stored at sorted position `k`.
    sorted_rows: Vec<u32>,
    /// Column indices, column-major within each slice; `ELL_PAD` pads.
    cols: Vec<u32>,
    values: Vec<f32>,
}

impl SellMatrix {
    /// Builds SELL-C-σ storage from CSR.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `c == 0` or
    /// `sigma < c`, and [`SparseError::TooLarge`] if the padded storage
    /// exceeds `u32` indexing.
    pub fn from_csr(csr: &CsrMatrix, c: u32, sigma: u32) -> Result<Self, SparseError> {
        if c == 0 || sigma < c {
            return Err(SparseError::DimensionMismatch {
                expected: "c >= 1 and sigma >= c".to_string(),
                found: format!("c = {c}, sigma = {sigma}"),
            });
        }
        let n = csr.n_rows();
        // Sort rows by decreasing length within each sigma window.
        let mut sorted_rows: Vec<u32> = (0..n).collect();
        for window in sorted_rows.chunks_mut(sigma as usize) {
            window.sort_by_key(|&r| std::cmp::Reverse(csr.row_degree(r)));
        }
        // Slice the sorted row list into chunks of c.
        let n_slices = (n as usize).div_ceil(c as usize);
        let mut slice_offsets = Vec::with_capacity(n_slices + 1);
        let mut slice_widths = Vec::with_capacity(n_slices);
        slice_offsets.push(0u32);
        let mut total: u64 = 0;
        for slice in sorted_rows.chunks(c as usize) {
            let width = slice.iter().map(|&r| csr.row_degree(r)).max().unwrap_or(0);
            slice_widths.push(width);
            total += u64::from(width) * c as u64;
            if total > u64::from(u32::MAX) {
                return Err(SparseError::TooLarge(format!(
                    "SELL-{c}-{sigma} padded storage exceeds u32 indexing"
                )));
            }
            slice_offsets.push(total as u32);
        }
        let mut cols = vec![ELL_PAD; total as usize];
        let mut values = vec![0f32; total as usize];
        for (s, slice) in sorted_rows.chunks(c as usize).enumerate() {
            let base = slice_offsets[s] as usize;
            for (lane, &r) in slice.iter().enumerate() {
                let (row_cols, row_vals) = csr.row(r);
                for (k, (&col, &v)) in row_cols.iter().zip(row_vals).enumerate() {
                    // Column-major within the slice: slot k, lane `lane`.
                    let idx = base + k * c as usize + lane;
                    cols[idx] = col;
                    values[idx] = v;
                }
            }
        }
        Ok(SellMatrix {
            n_rows: n,
            n_cols: csr.n_cols(),
            c,
            sigma,
            slice_offsets,
            slice_widths,
            sorted_rows,
            cols,
            values,
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> u32 {
        self.n_rows
    }

    /// Number of columns.
    #[must_use]
    pub fn n_cols(&self) -> u32 {
        self.n_cols
    }

    /// Slice height `C`.
    #[must_use]
    pub fn c(&self) -> u32 {
        self.c
    }

    /// Sorting window `σ`.
    #[must_use]
    pub fn sigma(&self) -> u32 {
        self.sigma
    }

    /// Number of slices.
    #[must_use]
    pub fn n_slices(&self) -> usize {
        self.slice_widths.len()
    }

    /// Width of slice `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= n_slices()`.
    #[must_use]
    pub fn slice_width(&self, s: usize) -> u32 {
        self.slice_widths[s]
    }

    /// The original row stored at sorted position `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k as usize >= n_rows`.
    #[must_use]
    pub fn original_row(&self, k: u32) -> u32 {
        self.sorted_rows[k as usize]
    }

    /// Column stored at `(slice, slot, lane)`; `None` for padding.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the slice geometry.
    #[must_use]
    pub fn col_at(&self, slice: usize, slot: u32, lane: u32) -> Option<u32> {
        assert!(slice < self.n_slices(), "slice out of range");
        assert!(slot < self.slice_widths[slice], "slot out of range");
        assert!(lane < self.c, "lane out of range");
        let base = self.slice_offsets[slice] as usize;
        let idx = base + slot as usize * self.c as usize + lane as usize;
        let col = self.cols[idx];
        (col != ELL_PAD).then_some(col)
    }

    /// Total padded slots (the storage actually moved).
    #[must_use]
    pub fn padded_len(&self) -> usize {
        self.cols.len()
    }

    /// Padding overhead relative to `nnz` (1.0 = none).
    #[must_use]
    pub fn padding_factor(&self, nnz: usize) -> f64 {
        if nnz == 0 {
            1.0
        } else {
            self.padded_len() as f64 / nnz as f64
        }
    }

    /// SpMV on the SELL storage: `y = A * x`, `y` in original row order.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `x.len() != n_cols`.
    pub fn spmv(&self, x: &[f32]) -> Result<Vec<f32>, SparseError> {
        if x.len() != self.n_cols as usize {
            return Err(SparseError::DimensionMismatch {
                expected: format!("x.len() == n_cols == {}", self.n_cols),
                found: format!("x.len() == {}", x.len()),
            });
        }
        let mut y = vec![0f32; self.n_rows as usize];
        let c = self.c as usize;
        for s in 0..self.n_slices() {
            let base = self.slice_offsets[s] as usize;
            let width = self.slice_widths[s] as usize;
            let lanes = (self.n_rows as usize - s * c).min(c);
            for slot in 0..width {
                for lane in 0..lanes {
                    let idx = base + slot * c + lane;
                    let col = self.cols[idx];
                    if col != ELL_PAD {
                        let row = self.sorted_rows[s * c + lane] as usize;
                        y[row] += self.values[idx] * x[col as usize];
                    }
                }
            }
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::spmv_csr;
    use crate::{CooMatrix, EllMatrix};

    fn skewed() -> CsrMatrix {
        // Hub row 0 (degree 15) + a tail of degree-1 rows.
        let mut entries = Vec::new();
        for v in 1..16u32 {
            entries.push((0, v, 1.0));
            entries.push((v, 0, 1.0));
        }
        CsrMatrix::try_from(CooMatrix::from_entries(16, 16, entries).unwrap()).unwrap()
    }

    #[test]
    fn spmv_matches_csr_for_various_geometries() {
        let csr = skewed();
        let x: Vec<f32> = (0..16).map(|i| i as f32 - 8.0).collect();
        let reference = spmv_csr(&csr, &x).unwrap();
        for (c, sigma) in [(1, 1), (2, 4), (4, 8), (4, 16), (8, 16), (32, 32)] {
            let sell = SellMatrix::from_csr(&csr, c, sigma).unwrap();
            assert_eq!(sell.spmv(&x).unwrap(), reference, "C={c} sigma={sigma}");
        }
    }

    #[test]
    fn sigma_sorting_cuts_padding_on_skewed_matrices() {
        let csr = skewed();
        let ell = EllMatrix::from_csr(&csr).unwrap();
        // sigma covering the whole matrix isolates the hub in its own
        // slice; padding collapses versus ELL.
        let sell = SellMatrix::from_csr(&csr, 4, 16).unwrap();
        assert!(
            sell.padded_len() * 3 < ell.padded_len(),
            "SELL {} vs ELL {}",
            sell.padded_len(),
            ell.padded_len()
        );
        // And sigma = c (no sorting beyond the slice) pads worse than
        // the full-window sort.
        let unsorted = SellMatrix::from_csr(&csr, 4, 4).unwrap();
        assert!(sell.padded_len() <= unsorted.padded_len());
    }

    #[test]
    fn slice_geometry_is_consistent() {
        let csr = skewed();
        let sell = SellMatrix::from_csr(&csr, 4, 16).unwrap();
        assert_eq!(sell.n_slices(), 4);
        let total: u32 = (0..sell.n_slices())
            .map(|s| sell.slice_width(s) * sell.c())
            .sum();
        assert_eq!(total as usize, sell.padded_len());
        // sorted_rows is a permutation.
        let mut rows: Vec<u32> = (0..16).map(|k| sell.original_row(k)).collect();
        rows.sort_unstable();
        assert_eq!(rows, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_bad_geometry() {
        let csr = skewed();
        assert!(SellMatrix::from_csr(&csr, 0, 4).is_err());
        assert!(SellMatrix::from_csr(&csr, 8, 4).is_err());
    }

    #[test]
    fn ragged_tail_slice_works() {
        // 10 rows with C = 4: last slice has 2 lanes.
        let entries: Vec<_> = (0..9u32)
            .flat_map(|v| [(v, v + 1, 1.0), (v + 1, v, 1.0)])
            .collect();
        let csr = CsrMatrix::try_from(CooMatrix::from_entries(10, 10, entries).unwrap()).unwrap();
        let sell = SellMatrix::from_csr(&csr, 4, 8).unwrap();
        let x = vec![1.0f32; 10];
        assert_eq!(sell.spmv(&x).unwrap(), spmv_csr(&csr, &x).unwrap());
    }

    #[test]
    fn empty_matrix() {
        let sell = SellMatrix::from_csr(&CsrMatrix::empty(5), 4, 8).unwrap();
        assert_eq!(sell.padded_len(), 0);
        assert_eq!(sell.spmv(&[0.0; 5]).unwrap(), vec![0.0; 5]);
    }
}
